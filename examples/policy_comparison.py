"""The Section 3 handoff study, end to end.

Generates VanLAN broadcast-probe traces (every node beacons 500-byte
packets at 10 Hz), replays all six handoff policies over them, and
prints both aggregate delivery and uninterrupted-session metrics —
the measurement study that motivates ViFi.

Run:
    python examples/policy_comparison.py [--seconds N]

``--seconds`` truncates the generated trips (trace generation and
replay are both linear in the trip length); the test suite smoke-runs
every example with a tiny cap.
"""

import argparse

from repro.experiments.study import policy_factories
from repro.handoff.evaluator import evaluate_policy
from repro.handoff.sessions import (
    session_lengths,
    time_weighted_median_session,
)
from repro.testbeds.vanlan import VanLanTestbed

TRIPS = (0, 1)


def main(seconds=None):
    testbed = VanLanTestbed(seed=3)
    print("Generating probe traces (two evaluation trips plus history "
          "training)...")
    training = [testbed.generate_probe_trace(8000 + i,
                                             max_seconds=seconds)
                for i in range(4)]
    traces = [testbed.generate_probe_trace(t, max_seconds=seconds)
              for t in TRIPS]

    print(f"\n{'policy':<10s} {'packets':>9s} {'median session':>15s} "
          f"{'handoffs':>9s}")
    for name, factory in policy_factories().items():
        packets = 0
        handoffs = 0
        lengths = []
        for trace in traces:
            policy = factory(training if name == "History" else None)
            outcome = evaluate_policy(trace, policy)
            packets += outcome.packets_delivered
            handoffs += outcome.handoff_count
            adequate = outcome.adequate_windows(1.0, 0.5)
            lengths.extend(session_lengths(adequate))
        median = time_weighted_median_session(lengths)
        print(f"{name:<10s} {packets:>9d} {median:>13.0f} s "
              f"{handoffs:>9d}")

    print(
        "\nReading: aggregate delivery differs modestly across"
        "\npolicies (Figure 2), but the *sessions* differ hugely"
        "\n(Figure 3d) — the paper's case for basestation diversity."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=None,
                        help="truncate the generated trips")
    main(seconds=parser.parse_args().seconds)
