"""Trace-driven DieselNet study (the paper's Sections 2.2 and 5.1).

Generates a DieselNet profiling day (a bus logging beacons from the
town's basestations), shows the diversity statistics of Figure 5, then
replays the beacon log as a packet-level environment — per-second
beacon loss ratios become link loss rates, inter-BS pairs never
co-visible from the bus are unreachable — and compares ViFi with BRR
on a VoIP workload.

Run:
    python examples/dieselnet_trace_study.py [--seconds N]

``--seconds`` caps the packet-level replay length; the test suite
smoke-runs every example with a tiny cap.
"""

import argparse
import statistics

import numpy as np

from repro.apps.voip import VoipStream
from repro.apps.workload import FlowRouter
from repro.core.protocol import ViFiConfig
from repro.experiments.common import (
    WARMUP_S,
    dieselnet_protocol,
)
from repro.sim.rng import RngRegistry
from repro.testbeds.dieselnet import DieselNetTestbed


def main(seconds=None):
    testbed = DieselNetTestbed(channel=1, seed=2)
    print("Profiling one DieselNet day on Channel 1 "
          f"({testbed.deployment.n_bs} BSes in the town core)...")
    log = testbed.generate_beacon_log(day=0)

    counts = log.visible_counts()
    strong = log.visible_counts(0.5)
    print(f"\nDiversity over {log.n_secs} seconds of driving:")
    print(f"  BSes heard (>=1 beacon) : median "
          f"{int(np.median(counts))}, max {counts.max()}")
    print(f"  BSes heard (>=50%)      : median "
          f"{int(np.median(strong))}, max {strong.max()}")
    covis = log.covisibility()
    upper = covis[np.triu_indices(log.n_bs, 1)]
    print(f"  co-visible BS pairs     : {upper.mean():.0%}")

    print("\nReplaying the log as a packet-level VoIP environment...")
    base = ViFiConfig()
    for name, config in (("ViFi", base), ("BRR", base.brr_variant())):
        rngs = RngRegistry(1).spawn("example", name)
        sim, duration = dieselnet_protocol(log, rngs, config=config,
                                           seed=4)
        if seconds is not None:
            duration = min(duration, float(seconds))
        router = FlowRouter(sim)
        stream = VoipStream(sim, router)
        stream.start(WARMUP_S)
        stream.stop(duration - 2.0)
        sim.run(until=duration)
        sessions = stream.session_lengths()
        median = statistics.median(sessions) if sessions else 0.0
        print(f"  {name:<5s}: mean MoS {stream.mean_mos():.2f}, "
              f"median uninterrupted session {median:.0f} s")

    print("\nThe same pipeline regenerates Figures 10 and 11 and "
          "Table 2;\nsee benchmarks/.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=None,
                        help="cap the packet-level replay length")
    main(seconds=parser.parse_args().seconds)
