"""Remote sweeps that survive a server crash: the HTTP gateway story.

Boots the experiment gateway (``python -m repro serve --http``) as a
subprocess with a result store, submits a multi-trip VanLAN CBR sweep
over the wire through the retrying client, then ``kill -9``s the
server mid-sweep.  The client absorbs the outage (circuit breaker +
jittered backoff), the restarted server accepts the same spec again —
idempotent by content-addressed key — and every trip that finished
before the crash is served warm from the store, so the sweep ends
with results identical to an uninterrupted run.

Run:
    python examples/remote_sweep.py [--seconds N] [--trips K]

``--seconds`` caps the simulated duration per trip (the test suite
smoke-runs every example with a tiny cap; the crash is skipped
gracefully if the sweep finishes before the kill lands).
"""

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")
if REPO_SRC not in sys.path:
    sys.path.insert(0, REPO_SRC)

from repro.gateway.client import RetryingClient  # noqa: E402


def start_server(port, store_dir):
    """Boot a gateway subprocess; returns the process once it binds."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    # The service memoizes whole jobs via --store; the ambient variable
    # lets run_trips inside the runner memoize each trip as well.
    env["REPRO_RESULT_STORE"] = store_dir
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--http", f"127.0.0.1:{port}", "--store", store_dir,
         "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env=env)
    announce = proc.stdout.readline().strip()
    assert "listening" in announce, f"server failed to boot: {announce!r}"
    return proc


def main(seconds=None, trips=3):
    duration = 30.0 if seconds is None else float(seconds)
    n_trips = max(int(trips), 2)
    spec = {"trips": n_trips, "duration_s": duration,
            "testbed_seed": 0, "seed0": 0}
    import socket
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]

    with tempfile.TemporaryDirectory(prefix="repro-remote-sweep-") as store:
        print(f"Booting gateway on 127.0.0.1:{port} "
              f"({n_trips} trips x {duration:.0f} s)...")
        server = start_server(port, store)
        client = RetryingClient("127.0.0.1", port, overall_timeout_s=60.0)

        submitted = client.submit("vanlan_cbr_sweep", spec)
        job_id = submitted["id"]
        print(f"submitted job {job_id} "
              f"(key {submitted.get('key', '?')[:12]}...)")

        # Watch progress; pull the plug after the first finished trip.
        killed = False
        try:
            for event, payload in client.stream_events(job_id,
                                                       read_timeout_s=60.0):
                if event == "progress":
                    print(f"  progress: trip {payload['task']}"
                          f"/{payload['total']} done")
                    if not killed:
                        print(f"  >>> kill -9 server (pid {server.pid}) "
                              "mid-sweep")
                        server.kill()
                        server.wait()
                        killed = True
                        break
                elif event == "done":
                    print("  sweep finished before the kill landed; "
                          "continuing without a crash")
                    break
        except Exception as exc:  # stream died with the server — fine
            print(f"  event stream broke with the server: "
                  f"{type(exc).__name__}")

        if killed:
            print("restarting the gateway on the same port + store...")
            server = start_server(port, store)

        print("resubmitting the same spec through the retrying client...")
        t0 = time.perf_counter()
        final = client.submit_and_wait("vanlan_cbr_sweep", spec,
                                       timeout_s=300.0)
        wall = time.perf_counter() - t0
        assert final["state"] == "done", final
        result = final["result"]
        hits = result["store"]["hits"]
        print(f"  done in {wall:.2f} s: {result['completed']}"
              f"/{result['total']} trips, {hits} warm per-trip store "
              "hit(s) from before the crash")

        again = client.submit_and_wait("vanlan_cbr_sweep", spec,
                                       timeout_s=120.0)
        assert again["state"] == "done"
        assert again["result"]["trips"] == result["trips"], \
            "post-crash digests must match the warm rerun bit-for-bit"
        print("  rerun digests identical: "
              + ", ".join(t["digest"][:10] for t in again["result"]["trips"]))

        server.send_signal(signal.SIGTERM)
        server.wait(timeout=30)
        print(f"gateway drained cleanly (exit {server.returncode})")
    print(
        "\nThe crash cost only the interrupted trip: completed trips\n"
        "were memoized in the content-addressed store, the client's\n"
        "backoff rode out the dead window, and the resubmitted spec\n"
        "attached idempotently instead of duplicating work."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=None,
                        help="cap the simulated duration per trip")
    parser.add_argument("--trips", type=int, default=3,
                        help="trips in the sweep (default 3)")
    args = parser.parse_args()
    main(seconds=args.seconds, trips=args.trips)
