"""Degraded infrastructure: ViFi vs hard handoff as basestations fail.

Injects deterministic basestation radio outages (repro.sim.faults)
into the synthetic VanLAN trip at rising intensity and compares ViFi
against the BRR hard-handoff comparator on delivery and a summary VoIP
MoS.  ViFi's auxiliary relaying keeps packets flowing through an
anchor outage (the anchor's wired side survives its radio), so its
delivery degrades far more gracefully — the availability story behind
the paper's disruption-masking claim.

Run:
    python examples/faulted_operation.py [--seconds N] [--workers K]

``--seconds`` caps the simulated duration per run (the test suite
smoke-runs every example with a tiny cap).
"""

import argparse

from repro.experiments.faulted import fault_intensity_sweep


def main(seconds=None, workers=None):
    duration = 60.0 if seconds is None else float(seconds)
    intensities = (0.0, 1.0, 2.0)
    print("Sweeping BS-outage intensity over one VanLAN trip "
          f"({duration:.0f} s per run)...\n")
    sweep = fault_intensity_sweep(intensities=intensities,
                                  duration_s=duration, workers=workers)
    print(f"{'intensity':>9s} {'ViFi deliv':>11s} {'BRR deliv':>10s} "
          f"{'gap':>7s} {'ViFi MoS':>9s} {'BRR MoS':>8s}")
    for intensity in intensities:
        cells = sweep[intensity]
        vifi, brr = cells["ViFi"], cells["BRR"]
        gap = vifi["delivery"] - brr["delivery"]
        print(f"{intensity:>9.1f} {vifi['delivery']:>10.1%} "
              f"{brr['delivery']:>9.1%} {gap:>+7.1%} "
              f"{vifi['mos']:>9.2f} {brr['mos']:>8.2f}")
    print(
        "\nEach intensity multiplies the per-BS outage rate; outages\n"
        "kill a basestation's radio but not its wired backplane, so\n"
        "ViFi's auxiliary relays keep masking what hard handoff\n"
        "cannot.  The schedule is deterministic per seed — rerunning\n"
        "reproduces these numbers exactly."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=None,
                        help="cap the simulated duration per run")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: all cores)")
    args = parser.parse_args()
    main(seconds=args.seconds, workers=args.workers)
