"""Quickstart: ViFi vs hard handoff on a synthetic VanLAN trip.

Builds the VanLAN testbed, runs the same shuttle trip twice — once
under ViFi and once under the BRR hard-handoff comparator — with the
paper's probe workload (500-byte packets every 100 ms in both
directions), and reports delivery and uninterrupted-session metrics.

Run:
    python examples/quickstart.py [--seconds N]

``--seconds`` caps the simulated trip length (the full trip is about
3.5 minutes); the test suite smoke-runs every example with a tiny cap.
"""

import argparse

from repro.core.protocol import ViFiConfig
from repro.experiments.common import run_protocol_cbr, vanlan_protocol
from repro.handoff.sessions import (
    session_lengths,
    time_weighted_median_session,
)
from repro.testbeds.vanlan import VanLanTestbed


def main(seconds=None):
    testbed = VanLanTestbed(seed=5)
    base = ViFiConfig()
    print("Running one VanLAN shuttle trip under two protocols...\n")
    print(f"{'protocol':<10s} {'delivery':>9s} {'median session':>15s} "
          f"{'anchor changes':>15s}")
    for name, config in (("ViFi", base), ("BRR", base.brr_variant())):
        sim, duration = vanlan_protocol(
            testbed, trip=0, config=config, seed=11,
            prefill=True if seconds is None else float(seconds),
        )
        if seconds is not None:
            duration = min(duration, float(seconds))
        cbr = run_protocol_cbr(sim, duration, deadline_s=0.1)
        ratios = cbr.window_reception_ratio(1.0, deadline_s=0.1)
        lengths = session_lengths(ratios >= 0.5)
        median = time_weighted_median_session(lengths)
        print(f"{name:<10s} {cbr.delivery_rate():>8.1%} "
              f"{median:>13.0f} s {sim.stats.anchor_changes:>15d}")
    print(
        "\nViFi masks disruptions by letting auxiliary basestations\n"
        "relay packets the anchor missed; see DESIGN.md for the map\n"
        "from the paper's figures to the benchmarks that regenerate\n"
        "them (pytest benchmarks/ --benchmark-only)."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=None,
                        help="cap the simulated trip length")
    main(seconds=parser.parse_args().seconds)
