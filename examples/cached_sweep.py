"""Warm-served sweeps: the result store turns reruns into disk reads.

Runs the same pinned multi-trip VanLAN CBR sweep twice through
``run_trips`` with a content-addressed result store
(:mod:`repro.store`).  The first pass computes and persists every
trip; the second is served entirely from the store — zero simulation,
identical results — which is how long figure campaigns survive
restarts without repeating finished work.  A third pass with one seed
changed shows the cache key discipline: only the changed trip is
recomputed.

Run:
    python examples/cached_sweep.py [--seconds N] [--trips K]

``--seconds`` caps the simulated duration per trip (the test suite
smoke-runs every example with a tiny cap).  Point
``REPRO_RESULT_STORE`` at a directory to get the same behaviour in
every experiment without passing ``store=`` explicitly.
"""

import argparse
import tempfile
import time

from repro.experiments.common import run_trips, vanlan_cbr_trip
from repro.store import ResultStore


def _tasks(n_trips, duration, bump_seed=None):
    return [
        {"trip": trip, "seed": trip + (100 if trip == bump_seed else 0),
         "duration_s": duration, "testbed_seed": 0}
        for trip in range(n_trips)
    ]


def main(seconds=None, trips=3):
    duration = 30.0 if seconds is None else float(seconds)
    n_trips = max(int(trips), 2)
    print(f"Sweeping {n_trips} pinned VanLAN CBR trips "
          f"({duration:.0f} s each) through a result store...\n")
    with tempfile.TemporaryDirectory(prefix="repro-cached-sweep-") as tmp:
        store = ResultStore(tmp)

        def timed(label, tasks):
            t0 = time.perf_counter()
            sweep = run_trips(vanlan_cbr_trip, tasks, workers=1,
                              store=store)
            wall = time.perf_counter() - t0
            counters = sweep.store
            print(f"{label:<18s} {wall:>7.2f} s   "
                  f"hits {counters['hits']}, misses {counters['misses']}, "
                  f"writes {counters['writes']}")
            return sweep

        cold = timed("cold (computes)", _tasks(n_trips, duration))
        warm = timed("warm (disk only)", _tasks(n_trips, duration))
        assert list(warm) == list(cold), "warm sweep must be identical"
        assert warm.store["hits"] == n_trips and not warm.store["misses"]

        bumped = timed("one seed changed", _tasks(n_trips, duration,
                                                  bump_seed=0))
        assert bumped.store["hits"] == n_trips - 1
        assert bumped.store["misses"] == 1
        assert list(bumped)[1:] == list(cold)[1:]

        print(f"\nstore holds {store.entry_count()} entries "
              f"({store.total_bytes()} bytes); every counter above is "
              "also on SweepResult.store for scripted checks.")
    print(
        "\nEntries are keyed by (worker, config, seeds, code version)\n"
        "and verified against an embedded digest on every read — a\n"
        "corrupt or stale entry is quarantined and recomputed, never\n"
        "served.  Identical (config, seed) requests hit the same entry\n"
        "at any worker count."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=None,
                        help="cap the simulated duration per trip")
    parser.add_argument("--trips", type=int, default=3,
                        help="trips in the sweep (default 3)")
    args = parser.parse_args()
    main(seconds=args.seconds, trips=args.trips)
