"""A VoIP call from a moving vehicle (the paper's Section 5.3.2).

Simulates a G.729 call (20-byte packets every 20 ms, both directions)
during a VanLAN shuttle trip under ViFi and under BRR, and prints the
per-3-second MoS timeline plus the uninterrupted-session summary.

Run:
    python examples/voip_drive.py [--seconds N]

``--seconds`` caps the simulated call length (the full trip is about
3.5 minutes); the test suite smoke-runs every example with a tiny cap.
"""

import argparse
import statistics

from repro.apps.voip import VoipStream
from repro.apps.workload import FlowRouter
from repro.core.protocol import ViFiConfig
from repro.experiments.common import WARMUP_S, vanlan_protocol
from repro.testbeds.vanlan import VanLanTestbed


def run_call(config, label, trip=0, seconds=None):
    testbed = VanLanTestbed(seed=5)
    sim, duration = vanlan_protocol(
        testbed, trip, config=config, seed=7,
        prefill=True if seconds is None else float(seconds),
    )
    if seconds is not None:
        duration = min(duration, float(seconds))
    router = FlowRouter(sim)
    stream = VoipStream(sim, router)
    stream.start(WARMUP_S)
    stream.stop(duration - 2.0)
    sim.run(until=duration)

    quality = stream.window_quality()
    sessions = stream.session_lengths()
    print(f"\n--- {label} ---")
    bars = "".join(
        "#" if mos >= 3.5 else "+" if mos >= 2.0 else "." for mos, _, _
        in quality
    )
    print(f"MoS timeline (3 s windows; # good, + fair, . interrupted):")
    print(f"  {bars}")
    print(f"mean MoS             : {stream.mean_mos():.2f}")
    print(f"uninterrupted spells : {len(sessions)}")
    if sessions:
        print(f"median spell length  : "
              f"{statistics.median(sessions):.0f} s")
        print(f"longest spell        : {max(sessions):.0f} s")
    return stream


def main(seconds=None):
    base = ViFiConfig()
    print("Placing a VoIP call from the shuttle (one trip, ~3.5 min)...")
    run_call(base, "ViFi", seconds=seconds)
    run_call(base.brr_variant(), "BRR (hard handoff)", seconds=seconds)
    print(
        "\nThe paper's finding: ViFi roughly doubles the length of\n"
        "disruption-free calling time because auxiliary basestations\n"
        "mask the anchor's gray periods (Figure 11)."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=None,
                        help="cap the simulated call length")
    main(seconds=parser.parse_args().seconds)
