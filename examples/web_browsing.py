"""Web browsing from a moving vehicle (the paper's Section 5.3.1).

Short TCP transfers — the vehicle repeatedly fetches a 10 KB page from
a wired server, and uploads one in the other direction — ride the ViFi
link layer during a VanLAN trip.  Transfers stalling for ten seconds
abort and delimit sessions, as in the paper.

Run:
    python examples/web_browsing.py [--seconds N]

``--seconds`` caps the simulated trip length (the full trip is about
3.5 minutes); the test suite smoke-runs every example with a tiny cap.
"""

import argparse

from repro.apps.tcp import TcpWorkload
from repro.apps.workload import FlowRouter
from repro.core.protocol import ViFiConfig
from repro.experiments.common import WARMUP_S, vanlan_protocol
from repro.testbeds.vanlan import VanLanTestbed


def browse(config, label, trip=0, seconds=None):
    testbed = VanLanTestbed(seed=5)
    sim, duration = vanlan_protocol(
        testbed, trip, config=config, seed=9,
        prefill=True if seconds is None else float(seconds),
    )
    if seconds is not None:
        duration = min(duration, float(seconds))
    router = FlowRouter(sim)
    workload = TcpWorkload(sim, router)
    workload.start(WARMUP_S)
    workload.stop(duration - 2.0)
    sim.run(until=duration)

    print(f"\n--- {label} ---")
    print(f"completed transfers  : {len(workload.completed)}")
    print(f"aborted transfers    : {len(workload.aborted)}")
    if workload.completed:
        print(f"median transfer time : "
              f"{workload.median_transfer_time() * 1000:.0f} ms")
        print(f"transfers per session: "
              f"{workload.transfers_per_session():.1f}")
    return workload


def main(seconds=None):
    base = ViFiConfig()
    print("Fetching 10 KB pages from the shuttle (one trip)...")
    vifi = browse(base, "ViFi", seconds=seconds)
    diversity = browse(base.diversity_only_variant(),
                       "ViFi without salvaging", seconds=seconds)
    brr = browse(base.brr_variant(), "BRR (hard handoff)",
                 seconds=seconds)
    if brr.completed and vifi.completed:
        gain = len(vifi.completed) / max(len(brr.completed), 1)
        print(f"\nViFi completed {gain:.1f}x as many transfers as hard "
              f"handoff on this trip\n(the paper reports roughly 2x; "
              f"Figure 9).")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=None,
                        help="cap the simulated trip length")
    main(seconds=parser.parse_args().seconds)
