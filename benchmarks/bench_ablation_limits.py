"""Section 5.5.2: where the relaying formulation struggles.

Paper finding: with many auxiliary BSes, or with auxiliaries symmetric
(equidistant from source and destination), the *expected* number of
relays stays one but its *variance* grows, inflating both false
positives and false negatives.  Breaking the symmetry calms the spread.
"""

from conftest import print_table

from repro.experiments.coordination import relay_count_spread


def run_experiment():
    out = {}
    # Growing auxiliary population, symmetric links.
    for n_aux in (3, 8, 16):
        out[f"symmetric n={n_aux}"] = relay_count_spread(
            n_aux, p_hear_src=0.7, p_to_dst=0.6, p_src_dst=0.5,
            n_packets=4000, seed=n_aux,
        )
    # Same population, strongly asymmetric links: two well-placed
    # auxiliaries dominate, concentrating the relay responsibility.
    asymmetric = [0.95, 0.9] + [0.08] * 14
    out["asymmetric n=16"] = relay_count_spread(
        16, p_hear_src=0.7, p_to_dst=asymmetric, p_src_dst=0.5,
        n_packets=4000, seed=99,
    )
    return out


def test_ablation_relay_spread(benchmark, save_results):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (name, mean, var)
        for name, (mean, var, _) in results.items()
    ]
    print_table("Section 5.5.2: relays per packet", rows,
                headers=["mean", "variance"])
    save_results("ablation_limits", {
        name: {"mean": mean, "variance": var,
               "histogram": [int(h) for h in hist]}
        for name, (mean, var, hist) in results.items()
    })

    # Variance grows with the auxiliary population under symmetry.
    assert results["symmetric n=16"][1] > results["symmetric n=3"][1]
    # Breaking symmetry reduces the spread at equal population.
    assert results["asymmetric n=16"][1] < results["symmetric n=16"][1]
