"""Section 5.1: validating the trace-driven methodology.

The paper validates its QualNet pipeline by running VanLAN both ways —
live deployment vs trace-driven from the same beacon logs — and finds
VoIP session lengths agree within a few seconds.  We reproduce that
check: per trip, the gap between the deployment-style median VoIP
session and the trace-driven one must be small relative to the session
lengths themselves.
"""

from conftest import print_table

from repro.experiments.validation import validate_trace_methodology
from repro.testbeds.vanlan import VanLanTestbed

TRIPS = (0, 1)


def run_experiment():
    testbed = VanLanTestbed(seed=5)
    return validate_trace_methodology(testbed, TRIPS, seed=7)


def test_validation_trace_vs_deployment(benchmark, save_results):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "Section 5.1 validation: VoIP session medians",
        [(f"trip {r['trip']}", r["deployment_s"], r["trace_s"],
          r["gap_s"]) for r in rows],
        headers=["deployment", "trace-driven", "gap"],
    )
    save_results("validation", rows)

    for r in rows:
        scale = max(r["deployment_s"], r["trace_s"], 6.0)
        assert r["gap_s"] <= max(0.75 * scale, 9.0)
