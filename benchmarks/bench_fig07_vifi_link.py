"""Figure 7: ViFi's link-layer sessions vs the handoff policies.

Paper shape: ViFi's median uninterrupted session beats the ideal hard
handoff (BestBS) and approaches the ideal diversity oracle (AllBSes);
BRR trails far behind.  Link-layer retransmissions are disabled.
"""

from conftest import print_table

from repro.experiments.linklayer import (
    link_layer_sessions,
    policy_session_medians,
)
from repro.testbeds.vanlan import VanLanTestbed

TRIPS = (0, 1)


def run_experiment():
    testbed = VanLanTestbed(seed=3)
    _, live = link_layer_sessions(testbed, TRIPS, seed=11)
    _, oracle = policy_session_medians(testbed, TRIPS)
    return {**live, **oracle}


def test_fig07_link_layer_sessions(benchmark, save_results):
    medians = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    order = ("BRR", "BestBS", "ViFi", "AllBSes")
    print_table(
        "Figure 7: median session length (interval=1s, ratio=50%)",
        [(name, medians[name]) for name in order],
        headers=["median (s)"],
    )
    save_results("fig07_vifi_link", medians)

    # ViFi beats the ideal hard handoff and sits below the oracle.
    assert medians["ViFi"] > medians["BestBS"]
    assert medians["ViFi"] > 2.0 * medians["BRR"]
    assert medians["ViFi"] <= medians["AllBSes"] * 1.05
