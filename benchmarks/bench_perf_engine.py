"""Perf engine benchmark: events/sec on pinned protocol workloads.

Not a paper figure — the engineering benchmark behind the ROADMAP's
"as fast as the hardware allows" goal.  Measures the event-processing
rate of the pinned VanLAN and DieselNet CBR workloads (see
``repro.experiments.perf``), writes the tracked ``BENCH_perf.json`` at
the repository root, and asserts:

* the fast path clears the 4x speedup target on the 120 s VanLAN CBR
  run against the recorded seed baseline, and
* the ``LinkStateCache(quantum_s=0)`` path is bit-for-bit equivalent to
  the uncached link model (identical delivery sequence and event
  count), so the speed comes from caching, not from changed physics.
"""

from conftest import print_table

from repro.experiments.common import run_protocol_cbr, vanlan_protocol
from repro.experiments.perf import (
    TARGET_SPEEDUP,
    run_perf_suite,
    write_bench_file,
)
from repro.testbeds.vanlan import VanLanTestbed


def _delivery_signature(cache_quantum_s, duration_s=60.0):
    """Delivery sequence + event count of a pinned run."""
    testbed = VanLanTestbed(seed=0)
    motion = testbed.vehicle_motion()
    table = testbed.build_link_table(0, motion,
                                    cache_quantum_s=cache_quantum_s)
    from repro.core.protocol import ViFiSimulation
    from repro.testbeds.vanlan import VEHICLE_ID

    sim = ViFiSimulation(testbed.deployment.bs_ids, table, seed=0,
                         vehicle_id=VEHICLE_ID)
    cbr = run_protocol_cbr(sim, duration_s)
    sequence = (sorted(cbr.up_deliveries.items()),
                sorted(cbr.down_deliveries.items()))
    return sequence, sim.sim.events_processed


def test_perf_engine(benchmark, save_results):
    results = benchmark.pedantic(
        lambda: run_perf_suite(repeats=2), rounds=1, iterations=1
    )
    rows = [
        (r["workload"], float(r["wall_s"]), float(r["events"]),
         float(r["events_per_s"]),
         float(r.get("speedup_vs_baseline", 0.0)))
        for r in results
    ]
    print_table("Perf engine: pinned workloads", rows,
                headers=["wall (s)", "events", "ev/s", "speedup"])
    write_bench_file(results)
    save_results("perf_engine", {r["workload"]: r for r in results})

    by_name = {r["workload"]: r for r in results}
    vanlan = by_name["vanlan_cbr_120s"]
    # The tentpole acceptance bar: >= 4x events/sec on the 120 s VanLAN
    # CBR run against the recorded seed baseline.
    assert vanlan["speedup_vs_baseline"] >= TARGET_SPEEDUP, (
        f"fast path too slow: {vanlan['speedup_vs_baseline']}x "
        f"< {TARGET_SPEEDUP}x"
    )
    # The trace-driven workload must never regress below the seed.
    dieselnet = by_name["dieselnet_cbr_60s"]
    assert dieselnet["speedup_vs_baseline"] >= 1.0


def test_quantum_zero_is_bitwise_identical(save_results):
    cached_seq, cached_events = _delivery_signature(cache_quantum_s=0.0)
    raw_seq, raw_events = _delivery_signature(cache_quantum_s=None)
    assert cached_events == raw_events
    assert cached_seq == raw_seq
    deliveries = len(cached_seq[0]) + len(cached_seq[1])
    assert deliveries > 100  # the run actually delivered traffic
    save_results("perf_determinism", {
        "events": cached_events,
        "deliveries": deliveries,
    })
