"""Perf engine benchmark: tracked rates on pinned protocol workloads.

Not a paper figure — the engineering benchmark behind the ROADMAP's
"as fast as the hardware allows" goal.  Measures the pinned VanLAN and
DieselNet CBR workloads plus the multi-trip scaling sweep (see
``repro.experiments.perf``), writes the tracked ``BENCH_perf.json`` at
the repository root, and asserts:

* the fast paths clear the sim-rate speedup targets on both pinned
  workloads against the recorded seed baselines (4.3x VanLAN, 1.4x
  DieselNet — floors with noise headroom below the ~4.9x / ~1.8x
  committed PR 3 measurements);
* a process-pool multi-trip sweep merges to outputs identical to the
  serial sweep on any machine, and clears the 3x parallel-speedup
  target when the host actually has four free cores;
* the ``LinkStateCache(quantum_s=0)`` path is bit-for-bit equivalent to
  the uncached link model (identical delivery sequence and event
  count), so the speed comes from caching, not from changed physics.
"""

import pytest

from conftest import print_table

from repro.experiments.common import run_protocol_cbr, vanlan_protocol
from repro.experiments.perf import (
    TARGET_PARALLEL_SPEEDUP,
    TARGET_SPEEDUP,
    TARGET_SPEEDUP_DIESELNET,
    run_perf_suite,
    run_trip_scaling,
    write_bench_file,
)
from repro.testbeds.vanlan import VanLanTestbed

pytestmark = pytest.mark.bench


def _delivery_signature(cache_quantum_s, duration_s=60.0):
    """Delivery sequence + event count of a pinned run."""
    testbed = VanLanTestbed(seed=0)
    motion = testbed.vehicle_motion()
    table = testbed.build_link_table(0, motion,
                                    cache_quantum_s=cache_quantum_s)
    from repro.core.protocol import ViFiSimulation
    from repro.testbeds.vanlan import VEHICLE_ID

    sim = ViFiSimulation(testbed.deployment.bs_ids, table, seed=0,
                         vehicle_id=VEHICLE_ID)
    cbr = run_protocol_cbr(sim, duration_s)
    sequence = (sorted(cbr.up_deliveries.items()),
                sorted(cbr.down_deliveries.items()))
    return sequence, sim.sim.events_processed


def test_perf_engine(benchmark, save_results):
    results = benchmark.pedantic(
        lambda: run_perf_suite(repeats=2), rounds=1, iterations=1
    )
    scaling = run_trip_scaling()
    rows = [
        (r["workload"], float(r["wall_s"]), float(r["events"]),
         float(r["events_per_s"]), float(r["sim_s_per_wall_s"]),
         float(r.get("speedup_vs_baseline", 0.0)))
        for r in results
    ]
    rows.append((
        scaling["workload"], float(scaling["parallel_wall_s"]),
        float(scaling["n_trips"]), 0.0, 0.0,
        float(scaling["parallel_speedup"]),
    ))
    print_table("Perf engine: pinned workloads", rows,
                headers=["wall (s)", "events", "ev/s", "sim x real",
                         "speedup"])
    write_bench_file(results, scaling=scaling)
    save_results("perf_engine", {
        **{r["workload"]: r for r in results},
        scaling["workload"]: scaling,
    })

    by_name = {r["workload"]: r for r in results}
    vanlan = by_name["vanlan_cbr_120s"]
    host = vanlan.get("host", {})
    print(f"host: {host.get('cpu_count')} cpus, "
          f"load {host.get('loadavg_1m')}, "
          f"python {host.get('python')}, numpy {host.get('numpy')}")
    # The pinned workloads run the stock config, so they exercise the
    # array estimator bank and report its fold cost (PR 5), and every
    # record carries the host-state snapshot (PR 6) so committed
    # numbers are attributable to a machine condition.  They always
    # run the nominal world — no fault plane — and the record pins
    # that (PR 7) so baselines cannot be confused with faulted runs.
    # Likewise the result store never serves a pinned workload (PR 8):
    # the store counters are pinned to zero so a warm-cache read can
    # never masquerade as an engine speedup.
    for record in results:
        assert record["estimator"] == "array"
        assert 0.0 <= record["estimator_fold_s"] < record["wall_s"]
        assert record["host"]["cpu_count"] >= 1
        assert record["host"]["python"]
        assert record["faults"] == "none"
        assert record["store"] == {"hits": 0, "misses": 0,
                                   "verify_failures": 0}
        # Pinned workloads run in-process: no gateway, no service
        # queue (PR 9).  A record that grew wire-transport fields
        # would mean the bench harness started routing through the
        # HTTP layer and its numbers measured the network, not the
        # engine.
        leaked = [k for k in record
                  if "gateway" in k.lower() or "service" in k.lower()]
        assert not leaked, (
            f"pinned bench record leaked transport fields: {leaked}")
    # The tentpole acceptance bar: the sim-rate speedup targets on
    # both pinned single-process workloads against the seed baseline.
    assert vanlan["speedup_vs_baseline"] >= TARGET_SPEEDUP, (
        f"fast path too slow: {vanlan['speedup_vs_baseline']}x "
        f"< {TARGET_SPEEDUP}x"
    )
    dieselnet = by_name["dieselnet_cbr_60s"]
    assert dieselnet["speedup_vs_baseline"] >= TARGET_SPEEDUP_DIESELNET, (
        f"dieselnet too slow: {dieselnet['speedup_vs_baseline']}x "
        f"< {TARGET_SPEEDUP_DIESELNET}x"
    )
    # The parallel runner's determinism contract holds everywhere; the
    # scaling bar only binds when the host really has the cores.
    assert scaling["outputs_identical"], (
        "parallel multi-trip sweep diverged from the serial sweep"
    )
    # The scaling sweep runs with the store disabled (store=False), so
    # every store counter in its record must be zero — the recorded
    # parallel speedup measures the pool, not cache hits.
    scaling_store = scaling["store"]
    for field in ("hits", "misses", "verify_failures", "quarantined"):
        assert scaling_store[field] == 0, (
            f"scaling sweep touched the result store: {scaling_store}"
        )
    assert not any("gateway" in k.lower() or "service" in k.lower()
                   for k in scaling), (
        "scaling record leaked transport fields")
    if scaling["available_workers"] >= 4 and scaling["workers"] >= 4:
        assert scaling["parallel_speedup"] >= TARGET_PARALLEL_SPEEDUP, (
            f"multi-trip scaling too weak: {scaling['parallel_speedup']}x "
            f"< {TARGET_PARALLEL_SPEEDUP}x on "
            f"{scaling['available_workers']} cores"
        )


def test_quantum_zero_is_bitwise_identical(save_results):
    cached_seq, cached_events = _delivery_signature(cache_quantum_s=0.0)
    raw_seq, raw_events = _delivery_signature(cache_quantum_s=None)
    assert cached_events == raw_events
    assert cached_seq == raw_seq
    deliveries = len(cached_seq[0]) + len(cached_seq[1])
    assert deliveries > 100  # the run actually delivered traffic
    save_results("perf_determinism", {
        "events": cached_events,
        "deliveries": deliveries,
    })
