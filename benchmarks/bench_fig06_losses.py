"""Figure 6: the nature of losses.

(a) Burstiness: P(losing packet i+k | packet i lost) starts far above
    the unconditional loss probability at small k and decays toward it.
(b) Path dependence: after a loss from BS A, A's next-packet reception
    collapses while BS B's barely moves — the property that makes
    macrodiversity effective.
"""

from conftest import print_table

from repro.experiments.study import burst_loss_experiment, two_bs_experiment
from repro.testbeds.vanlan import VanLanTestbed

LAGS = (1, 2, 5, 10, 50, 100, 500, 1000, 2000)


def run_experiment():
    testbed = VanLanTestbed(seed=42)
    curve, overall = burst_loss_experiment(
        testbed, bs_id=5, trip=0, lags=LAGS, duration_s=120.0,
    )
    conditionals = two_bs_experiment(testbed, bs_a=5, bs_b=6, trip=0,
                                     duration_s=150.0)
    return curve, overall, conditionals


def test_fig06_loss_structure(benchmark, save_results):
    curve, overall, cond = benchmark.pedantic(run_experiment, rounds=1,
                                              iterations=1)

    print_table(
        "Figure 6(a): P(loss i+k | loss i), 10 ms probes",
        [(f"k={k}", v) for k, v in curve.items()]
        + [("unconditional", overall)],
    )
    print_table(
        "Figure 6(b): two-BS reception probabilities, 20 ms packets",
        [(k, v) for k, v in cond.items()],
    )
    save_results("fig06_losses", {
        "burst_curve": {str(k): v for k, v in curve.items()},
        "overall_loss": overall,
        "two_bs": cond,
    })

    # (a) Losses are bursty and the excess decays with lag.
    assert curve[1] > 1.3 * overall
    assert curve[1] > curve[2000] * 1.1
    assert abs(curve[2000] - overall) < 0.25

    # (b) Self-conditioning collapses; cross-conditioning barely moves.
    self_drop = cond["P(A)"] - cond["P(A+1|!A)"]
    cross_drop = abs(cond["P(B)"] - cond["P(B+1|!A)"])
    assert self_drop > 0.15
    assert cross_drop < 0.15
    assert cond["P(B+1|!B)"] < cond["P(B)"]
