"""Section 5.1 aside: broadcast framework vs standard 802.11 unicast.

"We omit experiments that show that BRR performs worse with unicast
transmissions.  The poor performance is because of backoffs in response
to losses.  In VoIP experiments, for instance, the length of
disruption-free calls were 25% shorter."

We run BRR both ways over the same trips.  Unicast adds MAC retries
(which mostly die inside the same loss burst — the Section 4.3
observation) and exponential backoff (which throttles the sender for
losses that are not collisions).
"""

import statistics

from conftest import print_table

from repro.apps.voip import VoipStream
from repro.apps.workload import FlowRouter
from repro.core.protocol import ViFiConfig
from repro.experiments.common import WARMUP_S, vanlan_protocol
from repro.testbeds.vanlan import VanLanTestbed

TRIPS = (0, 1)


def run_experiment():
    testbed = VanLanTestbed(seed=5)
    base = ViFiConfig()
    variants = {
        "BRR broadcast": base.brr_variant(),
        "BRR unicast": base.brr_unicast_variant(),
    }
    out = {}
    for name, config in variants.items():
        sessions = []
        mos = []
        tx = 0
        for trip in TRIPS:
            sim, duration = vanlan_protocol(testbed, trip, config=config,
                                            seed=13 + trip)
            router = FlowRouter(sim)
            stream = VoipStream(sim, router)
            stream.start(WARMUP_S)
            stream.stop(duration - 2.0)
            sim.run(until=duration)
            sessions.extend(stream.session_lengths())
            mos.extend(m for m, _, _ in stream.window_quality())
            tx += sim.medium.transmissions(kind="data")
        out[name] = {
            "median_session_s": (statistics.median(sessions)
                                 if sessions else 0.0),
            "mean_mos": sum(mos) / len(mos) if mos else 1.0,
            "data_tx": tx,
        }
    return out


def test_ablation_unicast_backoff(benchmark, save_results):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (name, r["median_session_s"], r["mean_mos"], float(r["data_tx"]))
        for name, r in results.items()
    ]
    print_table("Section 5.1 aside: BRR broadcast vs unicast (VoIP)",
                rows, headers=["median (s)", "mean MoS", "data tx"])
    save_results("ablation_unicast", results)

    broadcast = results["BRR broadcast"]
    unicast = results["BRR unicast"]
    # MAC retries burn extra airtime...
    assert unicast["data_tx"] > broadcast["data_tx"]
    # ...without improving the interactive experience: sessions are no
    # longer than broadcast's (the paper: ~25% shorter).
    assert unicast["median_session_s"] <= \
        broadcast["median_session_s"] * 1.10
