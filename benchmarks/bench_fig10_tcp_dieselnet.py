"""Figure 10: TCP transfers per second on DieselNet (trace-driven).

Paper shape: ViFi sustains more completed transfers per second than
BRR on both profiled channels.
"""

from conftest import print_table

from repro.experiments.tcpbench import tcp_dieselnet
from repro.testbeds.dieselnet import DieselNetTestbed


def run_experiment():
    out = {}
    for channel in (1, 6):
        testbed = DieselNetTestbed(channel=channel, seed=2)
        out[channel] = tcp_dieselnet(testbed, days=(0,), seed=channel)
    return out


def test_fig10_tcp_dieselnet(benchmark, save_results):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for channel, by_proto in results.items():
        for proto, r in by_proto.items():
            rows.append((f"Ch{channel} {proto}", r["per_second"],
                         float(r["completed"]), float(r["aborted"])))
    print_table("Figure 10: TCP on DieselNet", rows,
                headers=["xfer/s", "completed", "aborted"])
    save_results("fig10_tcp_dieselnet", {
        str(ch): by_proto for ch, by_proto in results.items()
    })

    for channel in (1, 6):
        assert results[channel]["ViFi"]["per_second"] > \
            results[channel]["BRR"]["per_second"]
