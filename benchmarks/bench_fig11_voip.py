"""Figure 11: median uninterrupted VoIP session lengths.

Paper shape: ViFi's median disruption-free session is much longer than
BRR's — over 100% longer on VanLAN and over 50% / 65% longer on
DieselNet channels 1 / 6 — and the mean 3-second MoS is higher too
(3.4 vs 3.0 on VanLAN).
"""

from conftest import print_table

from repro.experiments.voipbench import voip_dieselnet, voip_vanlan
from repro.testbeds.dieselnet import DieselNetTestbed
from repro.testbeds.vanlan import VanLanTestbed


def run_experiment():
    out = {"VanLAN": voip_vanlan(VanLanTestbed(seed=5), trips=(0, 1, 2),
                                 seed=7)}
    for channel in (1, 6):
        testbed = DieselNetTestbed(channel=channel, seed=2)
        out[f"DieselNet Ch{channel}"] = voip_dieselnet(
            testbed, days=(0,), seed=channel)
    return out


def test_fig11_voip_sessions(benchmark, save_results):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for env, by_proto in results.items():
        for proto, r in by_proto.items():
            rows.append((f"{env} {proto}", r["median_session_s"],
                         r["mean_mos"]))
    print_table("Figure 11: VoIP sessions", rows,
                headers=["median (s)", "mean MoS"])
    save_results("fig11_voip", results)

    for env in results:
        vifi = results[env]["ViFi"]
        brr = results[env]["BRR"]
        # Paper: gains of >100% (VanLAN) and >50% / >65% (DieselNet).
        # At this reduced scale trip-level variance is large, so the
        # bound is a conservative 30% with the call quality required to
        # improve too.
        assert vifi["median_session_s"] >= 1.3 * brr["median_session_s"]
        assert vifi["mean_mos"] > brr["mean_mos"]
