"""Table 2: ViFi's relaying formulation vs the three ablations.

Paper shape (DieselNet Ch. 1, downstream): false negatives are roughly
similar across formulations while false positives separate them — the
expected-delivery formulation (NotG3) over-relays dramatically (157%
in the paper), and ignoring destination connectivity (NotG2) wastes
relays relative to ViFi.  One honest divergence from the paper is
documented in EXPERIMENTS.md: with our sparser synthetic DieselNet
links, NotG1 (ignore other auxiliaries) under-relays — trading a low
false-positive rate for by far the worst false negatives — whereas in
the paper's denser environment it over-relayed.
"""

from conftest import print_table

from repro.experiments.coordination import formulation_comparison
from repro.testbeds.dieselnet import DieselNetTestbed


def run_experiment():
    testbed = DieselNetTestbed(channel=1, seed=2)
    return formulation_comparison(testbed, days=(0,), seed=1)


def test_table2_formulations(benchmark, save_results):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (name, r["false_positives"], r["false_negatives"])
        for name, r in results.items()
    ]
    print_table("Table 2: downstream coordination, DieselNet Ch. 1",
                rows, headers=["false pos", "false neg"])
    save_results("table2_formulations", results)

    vifi = results["vifi"]
    # NotG3 over-relays worst of all (the paper's 157%).
    assert results["not-g3"]["false_positives"] > \
        1.3 * vifi["false_positives"]
    # NotG2 wastes relays relative to ViFi at similar false negatives.
    assert results["not-g2"]["false_positives"] > \
        vifi["false_positives"]
    assert abs(results["not-g2"]["false_negatives"]
               - vifi["false_negatives"]) < 0.25
    # NotG1 pays for its formulation on one side of the trade-off: it
    # must be strictly worse than ViFi on false negatives or false
    # positives (in our environment: false negatives).
    assert (results["not-g1"]["false_negatives"]
            > 1.5 * vifi["false_negatives"]) or \
           (results["not-g1"]["false_positives"]
            > 1.5 * vifi["false_positives"])
    # ViFi keeps both error kinds bounded.
    assert vifi["false_negatives"] < 0.35
