"""Figure 9: TCP performance on VanLAN.

Paper shape: (a) ViFi completes transfers faster than BRR with most of
the gain from diversity and a noticeable extra from salvaging; (b) ViFi
at least doubles the number of completed transfers per session.  At our
simulator's scale the clearest, most robust signature is transfer
*throughput* and per-session counts; the median-time ordering between
BRR and ViFi is noted in EXPERIMENTS.md as environment-sensitive.
"""

from conftest import print_table

from repro.experiments.tcpbench import standard_tcp_variants, tcp_vanlan
from repro.testbeds.vanlan import VanLanTestbed

TRIPS = (0, 1)


def run_experiment():
    testbed = VanLanTestbed(seed=5)
    return tcp_vanlan(testbed, TRIPS, variants=standard_tcp_variants(),
                      seed=7)


def test_fig09_tcp_vanlan(benchmark, save_results):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (name, r["median_s"], r["per_session"], float(r["completed"]),
         float(r["aborted"]))
        for name, r in results.items()
    ]
    print_table("Figure 9: TCP on VanLAN", rows,
                headers=["median (s)", "per-sess", "completed",
                         "aborted"])
    save_results("fig09_tcp_vanlan", results)

    vifi, brr = results["ViFi"], results["BRR"]
    diversity = results["OnlyDiversity"]
    # ViFi completes far more transfers than hard handoff.
    assert vifi["completed"] >= 1.3 * brr["completed"]
    # And at least doubles transfers per session (the paper's headline).
    assert vifi["per_session"] >= 2.0 * brr["per_session"]
    # Diversity alone already beats BRR; salvaging adds on top.
    assert diversity["completed"] > brr["completed"]
    assert vifi["completed"] >= diversity["completed"] * 0.95
