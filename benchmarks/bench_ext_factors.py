"""Extension: ViFi across environmental factors (companion TR).

The paper reports (via its technical report) that ViFi's advantage
holds across BS density and vehicle speed.  Expected shape: ViFi
delivers at least as much as BRR at every operating point, and the
advantage does not collapse at low density or high speed.
"""

from conftest import print_table

from repro.experiments.factors import density_sweep, speed_sweep

SIZES = (3, 6, 11)
SPEEDS = (20.0, 40.0, 60.0)


def run_experiment():
    return (
        density_sweep(seed=5, subset_sizes=SIZES),
        speed_sweep(seed=5, speeds_kmh=SPEEDS),
    )


def test_ext_environmental_factors(benchmark, save_results):
    by_density, by_speed = benchmark.pedantic(run_experiment, rounds=1,
                                              iterations=1)
    print_table(
        "Extension: delivery vs BS density",
        [(f"{size} BSes", r["ViFi"], r["BRR"])
         for size, r in by_density.items()],
        headers=["ViFi", "BRR"],
    )
    print_table(
        "Extension: delivery vs vehicle speed",
        [(f"{speed:.0f} km/h", r["ViFi"], r["BRR"])
         for speed, r in by_speed.items()],
        headers=["ViFi", "BRR"],
    )
    save_results("ext_factors", {
        "density": {str(k): v for k, v in by_density.items()},
        "speed": {str(k): v for k, v in by_speed.items()},
    })

    for rates in list(by_density.values()) + list(by_speed.values()):
        assert rates["ViFi"] >= rates["BRR"] - 0.02
    # More BSes help ViFi (diversity grows).
    assert by_density[11]["ViFi"] >= by_density[3]["ViFi"] - 0.02