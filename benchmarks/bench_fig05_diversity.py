"""Figure 5: CDF of the number of BSes heard per one-second interval.

Paper shape: vehicles are commonly within range of two or more BSes on
the same channel in all three environments; the denser Channel 6 of
DieselNet dominates Channel 1; the >=50%-of-beacons notion (Fig. 5b)
shifts every curve left.
"""

import numpy as np
from conftest import print_table

from repro.experiments.study import diversity_cdfs
from repro.testbeds.dieselnet import DieselNetTestbed
from repro.testbeds.vanlan import VanLanTestbed


def run_experiment():
    vanlan = VanLanTestbed(seed=42)
    logs = {
        "VanLAN": [vanlan.beacon_log_from_trace(
            vanlan.generate_probe_trace(trip)) for trip in (0, 1)],
        "DieselNet Ch1": [DieselNetTestbed(1, seed=9).generate_beacon_log(0)],
        "DieselNet Ch6": [DieselNetTestbed(6, seed=9).generate_beacon_log(0)],
    }
    out = {}
    for name, env_logs in logs.items():
        for notion, min_ratio in (("any", None), ("half", 0.5)):
            xs, ys, hist = diversity_cdfs(env_logs, min_ratio=min_ratio)
            out[(name, notion)] = hist
    return out


def _stats(hist):
    counts = np.repeat(np.arange(len(hist)), hist)
    return (
        float((counts == 0).mean()),
        float(np.median(counts)),
        float((counts >= 2).mean()),
    )


def test_fig05_visible_bs_cdf(benchmark, save_results):
    hists = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    summary = {}
    for (env, notion), hist in hists.items():
        p0, med, p2 = _stats(hist)
        rows.append((f"{env} ({notion} beacon)", p0, med, p2))
        summary[f"{env}/{notion}"] = {
            "p_zero": p0, "median": med, "p_two_plus": p2,
            "histogram": [int(h) for h in hist],
        }
    print_table("Figure 5: visible BSes per second", rows,
                headers=["P(0)", "median", "P(>=2)"])
    save_results("fig05_diversity", summary)

    # Diversity premise: >=2 BSes most of the time under the any-beacon
    # notion, in every environment.
    for env in ("VanLAN", "DieselNet Ch1", "DieselNet Ch6"):
        _, med, p2 = _stats(hists[(env, "any")])
        assert med >= 2
        assert p2 > 0.5
    # Channel 6 is denser than Channel 1.
    _, med1, _ = _stats(hists[("DieselNet Ch1", "any")])
    _, med6, _ = _stats(hists[("DieselNet Ch6", "any")])
    assert med6 >= med1
    # The 50%-beacons notion is strictly harsher.
    for env in ("VanLAN", "DieselNet Ch1", "DieselNet Ch6"):
        p0_any, _, _ = _stats(hists[(env, "any")])
        p0_half, _, _ = _stats(hists[(env, "half")])
        assert p0_half >= p0_any
