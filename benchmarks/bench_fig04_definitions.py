"""Figure 4: median session length vs the definition of adequacy.

Paper shape: with laxer definitions (longer averaging interval, lower
reception-ratio floor) all non-Sticky policies converge; as the
definition tightens, the multi-BS advantage grows; the strictest
settings are degenerate for everyone.
"""

from conftest import print_table

from repro.experiments.study import policy_factories
from repro.handoff.evaluator import evaluate_policy
from repro.handoff.sessions import (
    session_lengths,
    time_weighted_median_session,
)
from repro.testbeds.vanlan import VanLanTestbed

POLICIES = ("BRR", "BestBS", "AllBSes")
INTERVALS = (1.0, 2.0, 4.0, 8.0)
RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9)
TRIPS = (0, 1)


def run_experiment():
    testbed = VanLanTestbed(seed=42)
    factories = policy_factories()
    outcomes = {name: [] for name in POLICIES}
    for trip in TRIPS:
        trace = testbed.generate_probe_trace(trip)
        for name in POLICIES:
            outcomes[name].append(
                evaluate_policy(trace, factories[name](None))
            )

    def median_for(name, interval, ratio):
        lengths = []
        for outcome in outcomes[name]:
            adequate = outcome.adequate_windows(interval, ratio)
            lengths.extend(session_lengths(adequate, window_s=interval))
        return time_weighted_median_session(lengths)

    by_interval = {
        name: [median_for(name, w, 0.5) for w in INTERVALS]
        for name in POLICIES
    }
    by_ratio = {
        name: [median_for(name, 1.0, r) for r in RATIOS]
        for name in POLICIES
    }
    return by_interval, by_ratio


def test_fig04_definition_sweep(benchmark, save_results):
    by_interval, by_ratio = benchmark.pedantic(run_experiment, rounds=1,
                                               iterations=1)
    print_table(
        "Figure 4(a): median session vs interval (ratio=50%)",
        [(n, *by_interval[n]) for n in POLICIES],
        headers=[f"{w:.0f}s" for w in INTERVALS],
    )
    print_table(
        "Figure 4(b): median session vs reception ratio (interval=1s)",
        [(n, *by_ratio[n]) for n in POLICIES],
        headers=[f"{int(r * 100)}%" for r in RATIOS],
    )
    save_results("fig04_definitions", {
        "intervals": list(INTERVALS),
        "ratios": list(RATIOS),
        "by_interval": by_interval,
        "by_ratio": by_ratio,
    })

    # Laxer interval definitions help every policy.
    for name in POLICIES:
        assert by_interval[name][-1] >= by_interval[name][0]
    # The multi-BS advantage grows as the ratio requirement tightens
    # (compare the AllBSes/BRR gap at 10% vs 70%).
    def gap(r_idx):
        brr = max(by_ratio["BRR"][r_idx], 1e-9)
        return by_ratio["AllBSes"][r_idx] / brr
    assert gap(3) > gap(0)
    # Strictest setting is degenerate: everyone's sessions collapse.
    assert by_ratio["AllBSes"][-1] <= 0.5 * by_ratio["AllBSes"][2]
