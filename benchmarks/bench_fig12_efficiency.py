"""Figure 12: efficiency of medium usage.

Paper shape: upstream, ViFi is markedly more efficient than BRR
(upstream relays ride the backplane and burst-avoiding relays save
retransmissions) and close to the PerfectRelay oracle; downstream, the
three protocols are comparable, with BRR allowed a slight edge since
ViFi's relayed copies air on the vehicle-BS channel.
"""

from conftest import print_table

from repro.experiments.efficiency import efficiency_comparison
from repro.testbeds.vanlan import VanLanTestbed

TRIPS = (0, 1)


def run_experiment():
    testbed = VanLanTestbed(seed=5)
    return efficiency_comparison(testbed, TRIPS, seed=7)


def test_fig12_efficiency(benchmark, save_results):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for direction in ("upstream", "downstream"):
        for proto in ("BRR", "ViFi", "PerfectRelay"):
            rows.append((f"{direction} {proto}",
                         results[direction][proto]))
    print_table("Figure 12: packets delivered per data transmission",
                rows, headers=["efficiency"])
    save_results("fig12_efficiency", results)

    up, down = results["upstream"], results["downstream"]
    # Upstream: ViFi > BRR, and PerfectRelay bounds ViFi from above.
    assert up["ViFi"] > up["BRR"]
    assert up["PerfectRelay"] >= up["ViFi"] - 0.02
    # Downstream: BRR and PerfectRelay sit together; ViFi pays a relay
    # tax on the air.  In the paper that tax is small (BRR only
    # "slightly better"); our reproduction's false-positive relays are
    # costlier (see EXPERIMENTS.md), so the bound is looser, but ViFi
    # must stay within 2x of the others and the ordering must hold.
    assert down["BRR"] >= down["ViFi"]
    assert down["PerfectRelay"] >= down["ViFi"]
    assert max(down.values()) <= min(down.values()) * 2.0
