"""Table 1: detailed statistics on the behaviour of ViFi.

Paper regime (VanLAN, TCP workload): several auxiliaries designated
(A1 = 5); more auxiliaries overhear downstream transmissions than
upstream ones (BS-BS rooftop links beat vehicle-BS links); false
positives are bounded (B2 = 25% / 33%) thanks to probabilistic
relaying plus ack suppression; false negatives among overheard failed
transmissions are moderate; relayed upstream packets always arrive
(C4 = 100%, the backplane is wired).
"""

from conftest import print_table

from repro.experiments.coordination import coordination_table
from repro.testbeds.vanlan import VanLanTestbed

TRIPS = (0, 1)


def run_experiment():
    testbed = VanLanTestbed(seed=5)
    return coordination_table(testbed, TRIPS, seed=7)


def test_table1_coordination(benchmark, save_results):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    up = reports["upstream"]
    down = reports["downstream"]
    rows = [
        (label_up, value_up, value_down)
        for (label_up, value_up), (_, value_down)
        in zip(up.rows(), down.rows())
    ]
    print_table("Table 1: ViFi coordination statistics (VanLAN TCP)",
                rows, headers=["upstream", "downstream"])
    save_results("table1_coordination", {
        "upstream": dict(up.rows()),
        "downstream": dict(down.rows()),
    })

    # Designated auxiliaries present in both directions (A1).
    assert up.median_aux >= 2 and down.median_aux >= 2
    # Downstream overhearing beats upstream (A2): BS-BS links are
    # stronger than vehicle-BS links.
    assert down.mean_aux_heard > up.mean_aux_heard
    # Coordination bounds false positives well below the no-
    # coordination baseline (which would equal A2).
    assert up.false_positive_rate < up.mean_aux_heard
    assert down.false_positive_rate < down.mean_aux_heard
    # Failed downstream transmissions are almost always overheard (C2).
    assert down.failed_overheard_rate > 0.8
    # Upstream relays ride the wired backplane: they always arrive.
    assert up.relay_delivery_rate == 1.0
    # Downstream relays traverse the radio: some are lost.
    assert down.relay_delivery_rate < 1.0
