"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at a
reduced-but-faithful scale, prints the same rows/series the paper
reports, and saves a JSON payload under ``results/``.  Shape assertions
are deliberately loose: the goal is who-wins-by-roughly-what-factor,
not absolute numbers (see EXPERIMENTS.md).
"""

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_results(results_dir):
    """Persist a benchmark's payload as results/<name>.json."""

    def _save(name, payload):
        path = results_dir / f"{name}.json"
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, default=float)
        return path

    return _save


def print_table(title, rows, headers=None):
    """Print an aligned table of (label, *values) rows."""
    print(f"\n=== {title} ===")
    if headers:
        print("  " + "  ".join(f"{h:>12s}" for h in headers))
    for row in rows:
        label, *values = row
        cells = "  ".join(
            f"{v:12.3f}" if isinstance(v, float) else f"{v!s:>12s}"
            for v in values
        )
        print(f"  {label:<42s}{cells}")
