"""Figure 8: BRR vs ViFi behaviour along a path segment.

Paper shape: over like-for-like trips, BRR's path shows several
interruptions while ViFi's shows markedly fewer (one, in the paper's
example).  We report interruption counts and connected fractions for
the same trip under both protocols.
"""

import numpy as np
from conftest import print_table

from repro.core.protocol import ViFiConfig
from repro.experiments.common import run_protocol_cbr, vanlan_protocol
from repro.handoff.sessions import adequacy_runs
from repro.testbeds.vanlan import VanLanTestbed

TRIP = 0


def run_experiment():
    testbed = VanLanTestbed(seed=3)
    base = ViFiConfig(max_retx=0)
    out = {}
    for name, config in (("BRR", base.brr_variant()), ("ViFi", base)):
        sim, duration = vanlan_protocol(testbed, TRIP, config=config,
                                        seed=17)
        cbr = run_protocol_cbr(sim, duration, deadline_s=0.1)
        ratios = cbr.window_reception_ratio(1.0, deadline_s=0.1)
        adequate = ratios >= 0.5
        runs = adequacy_runs(adequate)
        out[name] = {
            "interruptions": max(len(runs) - 1, 0),
            "connected_fraction": float(np.mean(adequate)),
            "n_windows": int(len(adequate)),
        }
    return out


def test_fig08_path_behaviour(benchmark, save_results):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (name, float(r["interruptions"]), r["connected_fraction"])
        for name, r in results.items()
    ]
    print_table("Figure 8: one trip, adequate-connectivity runs", rows,
                headers=["interrupts", "connected"])
    save_results("fig08_path", results)

    assert results["ViFi"]["interruptions"] < \
        results["BRR"]["interruptions"]
    assert results["ViFi"]["connected_fraction"] > \
        results["BRR"]["connected_fraction"]
