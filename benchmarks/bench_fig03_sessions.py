"""Figure 3: path behaviour and the session-length distribution.

Paper shape (Fig. 3d): the median uninterrupted session of AllBSes is
more than twice BestBS's and several times BRR's; Sticky is worst or
near-worst.  Figures 3(a-c) are the per-trip interruption counts, which
we report as numbers instead of a map.
"""

from conftest import print_table

from repro.experiments.study import policy_factories
from repro.handoff.evaluator import evaluate_policy
from repro.handoff.sessions import (
    adequacy_runs,
    session_lengths,
    time_in_sessions_cdf,
    time_weighted_median_session,
)
from repro.testbeds.vanlan import VanLanTestbed

TRIPS = (0, 1, 2)


def run_experiment():
    testbed = VanLanTestbed(seed=3)
    training = [testbed.generate_probe_trace(8000 + i) for i in range(4)]
    pooled = {}
    interruptions = {}
    for trip in TRIPS:
        trace = testbed.generate_probe_trace(trip)
        for name, factory in policy_factories().items():
            policy = factory(training if name == "History" else None)
            outcome = evaluate_policy(trace, policy)
            adequate = outcome.adequate_windows(1.0, 0.5)
            pooled.setdefault(name, []).extend(session_lengths(adequate))
            runs = adequacy_runs(adequate)
            gaps = max(len(runs) - 1, 0)
            interruptions[name] = interruptions.get(name, 0) + gaps
    return pooled, interruptions


def test_fig03_session_distribution(benchmark, save_results):
    pooled, interruptions = benchmark.pedantic(run_experiment, rounds=1,
                                               iterations=1)
    medians = {name: time_weighted_median_session(lengths)
               for name, lengths in pooled.items()}
    rows = [
        (name, medians[name], float(interruptions[name]))
        for name in ("Sticky", "BRR", "BestBS", "AllBSes")
    ]
    print_table("Figure 3(d): sessions over three trips", rows,
                headers=["median (s)", "interrupts"])
    save_results("fig03_sessions", {
        "medians": medians,
        "interruptions": interruptions,
        "cdf": {
            name: [list(map(float, axis))
                   for axis in time_in_sessions_cdf(lengths)]
            for name, lengths in pooled.items()
        },
    })

    # The paper's headline ratios (loosened for the reduced scale):
    # AllBSes well above BestBS, and several times BRR, on the
    # time-weighted median.
    assert medians["AllBSes"] >= 1.5 * medians["BestBS"]
    assert medians["AllBSes"] >= 3.0 * medians["BRR"]
    # AllBSes masks interruptions.
    assert interruptions["AllBSes"] < interruptions["BRR"]
