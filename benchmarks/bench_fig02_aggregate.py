"""Figure 2: packets delivered per day vs number of basestations.

Paper shape: AllBSes > BestBS > {History, RSSI, BRR} > Sticky; every
non-Sticky policy within ~25-35% of AllBSes; delivery grows with BS
density and does not flatten.
"""

from conftest import print_table

from repro.experiments.study import aggregate_by_density
from repro.testbeds.vanlan import VanLanTestbed

SUBSET_SIZES = (4, 8, 11)


def run_experiment():
    testbed = VanLanTestbed(seed=42)
    return aggregate_by_density(
        testbed, day=0, n_trips=2, subset_sizes=SUBSET_SIZES,
        trials_per_size=3, seed=7,
    )


def test_fig02_aggregate_performance(benchmark, save_results):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for policy, by_size in results.items():
        rows.append((policy, *(by_size[s][0] for s in SUBSET_SIZES)))
    print_table("Figure 2: packets/day (VanLAN)", rows,
                headers=[f"{s} BSes" for s in SUBSET_SIZES])
    save_results("fig02_aggregate", {
        policy: {str(s): list(ci) for s, ci in by_size.items()}
        for policy, by_size in results.items()
    })

    full = {policy: by_size[11][0] for policy, by_size in results.items()}
    # Ordering at full density.
    assert full["AllBSes"] > full["BestBS"] > full["Sticky"]
    assert full["BestBS"] >= full["BRR"] * 0.99
    assert full["BRR"] > full["Sticky"]
    # Density monotonicity for the oracle.
    series = [results["AllBSes"][s][0] for s in SUBSET_SIZES]
    assert series == sorted(series)
    # Practical single-BS policies stay in AllBSes' ballpark.
    assert full["BRR"] > 0.6 * full["AllBSes"]
