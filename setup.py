"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package, so
PEP 660 editable installs fail; this shim enables
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
