"""Oracle tests for the ring/bitmap relay bookkeeping (_PacketBank).

PR 6 replaced the basestation's four ``(src, pkt_id)``-keyed dicts
(overhear times, ack suppression, pending relay decisions, considered
tx_ids) with fixed rings of integer-indexed rows.  The replacement
must be observationally identical on protocol-shaped schedules: this
module drives the ring bank and a plain-dict reference implementation
through the exact state machine ``BasestationNode`` runs (overhear,
overheard-ack with bitmap, relay-decision firing) and asserts
query-for-query equality of everything the protocol observes.
"""

import random

import pytest

from repro.core.node import (
    _BANK_CAPACITY,
    _HEARD,
    _STORED,
    _SUPPRESSED,
    _PacketBank,
    _SourceRing,
)


# ----------------------------------------------------------------------
# Reference implementation: the pre-PR 6 dict semantics
# ----------------------------------------------------------------------

class _DictAux:
    """Dict-keyed reference for the auxiliary-relay state machine."""

    def __init__(self):
        self._heard = {}        # (src, pkt_id) -> latest overhear time
        self._suppressed = set()
        self._stored = {}       # (src, pkt_id) -> (payload, stored_at)
        self._considered = {}   # (src, pkt_id) -> [tx_id, ...]

    def overhear(self, src, pkt_id, tx_id, now, is_relay):
        key = (src, pkt_id)
        self._heard[key] = now
        if is_relay:
            return "relay-copy"
        if key in self._suppressed:
            return "suppressed"
        if tx_id in self._considered.get(key, ()):
            return "considered"
        if key in self._stored:
            _, stored_at = self._stored[key]
            self._stored[key] = ((src, pkt_id, tx_id), stored_at)
            return "refreshed"
        self._stored[key] = ((src, pkt_id, tx_id), now)
        return "stored"

    def ack(self, src, pkt_id, bitmap, now):
        key = (src, pkt_id)
        gap = now - self._heard[key] if key in self._heard else None
        self._suppressed.add(key)
        self._heard.pop(key, None)
        self._stored.pop(key, None)
        for k in range(8):
            candidate = pkt_id - 1 - k
            if candidate >= 0 and not bitmap & (1 << k):
                ckey = (src, candidate)
                # Bitmap suppression retires the relay candidate but
                # keeps the overhear time (a direct ack may still want
                # a gap sample).
                self._suppressed.add(ckey)
                self._stored.pop(ckey, None)
        return gap

    def fire(self, src, pkt_id):
        key = (src, pkt_id)
        if key not in self._stored:
            return None
        payload, stored_at = self._stored.pop(key)
        self._considered.setdefault(key, []).append(payload[2])
        return payload, stored_at


class _RingAux:
    """The same state machine over ``_PacketBank`` — the literal
    claim/flag sequences ``BasestationNode`` executes."""

    def __init__(self):
        self._bank = _PacketBank()

    def overhear(self, src, pkt_id, tx_id, now, is_relay):
        ring = self._bank.ring(src)
        row = ring.claim(pkt_id)
        flags = 0
        if row >= 0:
            flags = ring.flags[row] | _HEARD
            ring.flags[row] = flags
            ring.heard[row] = now
        if is_relay:
            return "relay-copy"
        if row < 0:
            return "stale"
        if flags & _SUPPRESSED:
            return "suppressed"
        considered = ring.considered[row]
        if considered is not None and tx_id in considered:
            return "considered"
        if flags & _STORED:
            ring.pkt[row] = (src, pkt_id, tx_id)
            return "refreshed"
        ring.flags[row] = flags | _STORED
        ring.pkt[row] = (src, pkt_id, tx_id)
        ring.stored_at[row] = now
        return "stored"

    def ack(self, src, pkt_id, bitmap, now):
        ring = self._bank.ring(src)
        row = ring.claim(pkt_id)
        gap = None
        if row >= 0:
            flags = ring.flags[row]
            if flags & _HEARD:
                gap = now - ring.heard[row]
            ring.flags[row] = (flags | _SUPPRESSED) & ~(_HEARD | _STORED)
            ring.pkt[row] = None
        for k in range(8):
            candidate = pkt_id - 1 - k
            if candidate >= 0 and not bitmap & (1 << k):
                crow = ring.claim(candidate)
                if crow >= 0:
                    ring.flags[crow] = (ring.flags[crow] | _SUPPRESSED) \
                        & ~_STORED
                    ring.pkt[crow] = None
        return gap

    def fire(self, src, pkt_id):
        ring = self._bank.ring(src)
        row = ring.probe(pkt_id)
        if row < 0 or not ring.flags[row] & _STORED:
            return None
        payload = ring.pkt[row]
        stored_at = ring.stored_at[row]
        ring.flags[row] &= ~_STORED
        ring.pkt[row] = None
        considered = ring.considered[row]
        if considered is None:
            considered = ring.considered[row] = []
        considered.append(payload[2])
        return payload, stored_at


# ----------------------------------------------------------------------
# Ring primitives
# ----------------------------------------------------------------------

class TestSourceRing:
    def test_claim_allocates_and_finds(self):
        ring = _SourceRing()
        row = ring.claim(7)
        assert row == 7
        assert ring.claim(7) == row
        assert ring.probe(7) == row
        assert ring.probe(8) == -1

    def test_claim_recycles_older_occupant(self):
        ring = _SourceRing()
        row = ring.claim(3)
        ring.flags[row] = _HEARD | _STORED
        ring.pkt[row] = "old"
        ring.considered[row] = [1]
        newer = 3 + _BANK_CAPACITY
        assert ring.claim(newer) == row
        # The recycled row starts clean.
        assert ring.flags[row] == 0
        assert ring.pkt[row] is None
        assert ring.considered[row] is None
        assert ring.probe(3) == -1

    def test_claim_refuses_stale_ids(self):
        """A slot owned by a newer id rejects the ancient claimant."""
        ring = _SourceRing()
        ring.claim(5 + _BANK_CAPACITY)
        assert ring.claim(5) == -1

    def test_bank_ring_cache(self):
        bank = _PacketBank()
        a = bank.ring(1)
        b = bank.ring(2)
        assert a is not b
        assert bank.ring(1) is a
        assert bank.ring(1) is a  # cached hit


# ----------------------------------------------------------------------
# Oracle: ring == dicts, query for query
# ----------------------------------------------------------------------

def _drive(n_ops, seed):
    """Run a protocol-shaped random schedule through both banks.

    Shape mirrors a trip: per-source monotone pkt_ids with bounded
    reordering (retransmitted copies of recent ids carry fresh
    tx_ids), acks trailing data with random bitmaps, and decision
    timers firing for recently stored packets — the same access
    pattern ``BasestationNode`` generates, ids always well inside the
    ring window.
    """
    rng = random.Random(seed)
    ring_aux, dict_aux = _RingAux(), _DictAux()
    next_id = {0: 0, 1: 0}
    tx_id = 0
    now = 0.0
    mismatches = []
    ops = 0
    for _ in range(n_ops):
        now += rng.random() * 0.01
        src = rng.randrange(2)
        roll = rng.random()
        if roll < 0.5:
            # Overhear a data copy: usually the next fresh id, else a
            # retransmission/relay of a recent one.
            if rng.random() < 0.7 or next_id[src] == 0:
                pkt_id = next_id[src]
                next_id[src] += 1
            else:
                lag = rng.randrange(1, 30)
                pkt_id = max(0, next_id[src] - lag)
            tx_id += 1
            is_relay = rng.random() < 0.1
            got = ring_aux.overhear(src, pkt_id, tx_id, now, is_relay)
            want = dict_aux.overhear(src, pkt_id, tx_id, now, is_relay)
        elif roll < 0.8:
            # Overheard ack for a recent id, with a random bitmap.
            if next_id[src] == 0:
                continue
            pkt_id = max(0, next_id[src] - rng.randrange(1, 20))
            bitmap = rng.randrange(256)
            got = ring_aux.ack(src, pkt_id, bitmap, now)
            want = dict_aux.ack(src, pkt_id, bitmap, now)
        else:
            # A relay-decision timer fires for a recent id.
            if next_id[src] == 0:
                continue
            pkt_id = max(0, next_id[src] - rng.randrange(1, 20))
            got = ring_aux.fire(src, pkt_id)
            want = dict_aux.fire(src, pkt_id)
        ops += 1
        if got != want:
            mismatches.append((ops, src, pkt_id, got, want))
    return ops, mismatches


class TestPacketBankOracle:
    def test_short_schedule_matches_dict_reference(self):
        ops, mismatches = _drive(3000, seed=7)
        assert ops > 2500
        assert mismatches == []

    @pytest.mark.slow
    def test_long_schedules_match_dict_reference(self):
        """Tentpole acceptance: bit-for-bit across seeds and scales."""
        for seed in range(5):
            ops, mismatches = _drive(40000, seed=seed)
            assert ops > 35000
            assert mismatches == [], mismatches[:5]
