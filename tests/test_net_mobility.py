"""Unit tests for routes and vehicle motion."""

import math

import pytest

from repro.net.mobility import (
    Route,
    StationaryPosition,
    VehicleMotion,
    gps_samples,
)


class TestRoute:
    def test_straight_line_kinematics(self):
        route = Route([(0, 0), (100, 0)], speed_mps=10.0)
        assert route.duration == pytest.approx(10.0)
        assert route.position_at(0.0) == (0.0, 0.0)
        assert route.position_at(5.0) == (50.0, 0.0)
        assert route.position_at(10.0) == (100.0, 0.0)

    def test_position_clamps_after_arrival(self):
        route = Route([(0, 0), (100, 0)], speed_mps=10.0)
        assert route.position_at(999.0) == (100.0, 0.0)

    def test_multi_segment_path_length(self):
        route = Route([(0, 0), (30, 40), (30, 140)], speed_mps=10.0)
        assert route.path_length == pytest.approx(50 + 100)
        assert route.duration == pytest.approx(15.0)

    def test_dwell_pauses_motion(self):
        route = Route([(0, 0), (100, 0)], speed_mps=10.0,
                      stop_durations={0: 5.0})
        assert route.position_at(3.0) == (0.0, 0.0)
        assert route.position_at(10.0) == (50.0, 0.0)
        assert route.duration == pytest.approx(15.0)

    def test_loop_wraps_around(self):
        route = Route([(0, 0), (100, 0)], speed_mps=10.0, loop=True)
        # Looping closes the polygon: 0->100->0, 20 s per lap.
        x0, _ = route.position_at(2.0)
        x1, _ = route.position_at(2.0 + route.duration)
        assert x0 == pytest.approx(x1)

    def test_too_few_waypoints_rejected(self):
        with pytest.raises(ValueError):
            Route([(0, 0)])

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(ValueError):
            Route([(0, 0), (1, 1)], speed_mps=0.0)

    def test_negative_time_rejected(self):
        route = Route([(0, 0), (1, 1)])
        with pytest.raises(ValueError):
            route.position_at(-0.1)


class TestVehicleMotion:
    def test_waits_until_departure(self):
        motion = VehicleMotion(Route([(0, 0), (100, 0)], 10.0),
                               depart_at=5.0)
        assert motion(2.0) == (0.0, 0.0)
        assert motion(10.0) == (50.0, 0.0)

    def test_speed_estimate(self):
        motion = VehicleMotion(Route([(0, 0), (1000, 0)], 10.0))
        assert motion.speed_at(50.0) == pytest.approx(10.0, rel=0.05)

    def test_speed_zero_when_parked(self):
        motion = VehicleMotion(Route([(0, 0), (100, 0)], 10.0))
        assert motion.speed_at(500.0) == pytest.approx(0.0, abs=1e-6)


class TestGps:
    def test_one_hertz_samples(self):
        motion = VehicleMotion(Route([(0, 0), (100, 0)], 10.0))
        fixes = list(gps_samples(motion, 0.0, 5.0))
        assert len(fixes) == 6
        times = [t for t, _, _ in fixes]
        assert times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert fixes[3][1] == pytest.approx(30.0)

    def test_stationary_position(self):
        pos = StationaryPosition(3.0, 4.0)
        assert pos(0.0) == (3.0, 4.0)
        assert pos(100.0) == (3.0, 4.0)
        assert math.hypot(*pos(5.0)) == pytest.approx(5.0)
