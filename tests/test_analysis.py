"""Unit tests for the analysis package."""

import numpy as np
import pytest

from repro.analysis.burstiness import (
    conditional_loss_curve,
    overall_loss_probability,
)
from repro.analysis.cdf import (
    empirical_cdf,
    mean_confidence_interval,
    median,
    median_confidence_interval,
    percentile,
)
from repro.analysis.conditional import two_bs_conditionals
from repro.analysis.diversity import visible_bs_cdf, visible_bs_histogram
from repro.testbeds.traces import BeaconLog


class TestCdfHelpers:
    def test_empirical_cdf(self):
        xs, ys = empirical_cdf([3, 1, 2])
        assert list(xs) == [1, 2, 3]
        assert list(ys) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empirical_cdf_empty(self):
        xs, ys = empirical_cdf([])
        assert len(xs) == 0

    def test_median(self):
        assert median([5, 1, 3]) == 3.0
        assert median([]) == 0.0

    def test_percentile(self):
        assert percentile(range(101), 90) == pytest.approx(90.0)

    def test_mean_ci_contains_truth(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 2.0, size=400)
        mean, half = mean_confidence_interval(sample)
        assert abs(mean - 10.0) < half + 0.3
        assert half > 0

    def test_mean_ci_degenerate(self):
        assert mean_confidence_interval([]) == (0.0, 0.0)
        assert mean_confidence_interval([4.0]) == (4.0, 0.0)

    def test_median_ci_orders(self):
        med, (lo, hi) = median_confidence_interval(list(range(100)))
        assert lo <= med <= hi


class TestBurstiness:
    def test_iid_losses_flat_curve(self):
        rng = np.random.default_rng(1)
        losses = rng.random(200000) < 0.3
        curve = conditional_loss_curve(losses, [1, 10, 100])
        for value in curve.values():
            assert value == pytest.approx(0.3, abs=0.02)

    def test_bursty_losses_decay_with_lag(self):
        # Synthetic bursts: loss state persists ~20 samples.
        rng = np.random.default_rng(2)
        state = False
        losses = []
        for _ in range(100000):
            if rng.random() < 0.05:
                state = not state
            losses.append(state)
        curve = conditional_loss_curve(losses, [1, 200])
        base = overall_loss_probability(losses)
        assert curve[1] > 1.5 * base
        assert abs(curve[200] - base) < 0.1

    def test_no_losses_gives_nan(self):
        curve = conditional_loss_curve([False] * 100, [1])
        assert np.isnan(curve[1])

    def test_invalid_lag_rejected(self):
        with pytest.raises(ValueError):
            conditional_loss_curve([True, False], [0])


class TestTwoBsConditionals:
    def test_independent_receivers(self):
        rng = np.random.default_rng(3)
        a = rng.random(100000) < 0.75
        b = rng.random(100000) < 0.67
        stats = two_bs_conditionals(a, b)
        assert stats["P(A)"] == pytest.approx(0.75, abs=0.01)
        assert stats["P(B)"] == pytest.approx(0.67, abs=0.01)
        # Independence: conditioning on A's loss barely moves B.
        assert stats["P(B+1|!A)"] == pytest.approx(0.67, abs=0.02)

    def test_self_conditioning_with_bursts(self):
        # A's losses persist; conditional self-reception drops.
        rng = np.random.default_rng(4)
        state = True
        a = []
        for _ in range(50000):
            if rng.random() < 0.08:
                state = not state
            a.append(state)
        a = np.asarray(a)
        b = rng.random(50000) < 0.6
        stats = two_bs_conditionals(a, b)
        assert stats["P(A+1|!A)"] < stats["P(A)"] * 0.6

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            two_bs_conditionals([True], [True, False])


class TestDiversity:
    def _log(self):
        heard = [[10, 3, 0], [0, 0, 0], [5, 5, 5], [1, 0, 0]]
        return BeaconLog([1, 2, 3], heard, expected=10)

    def test_histogram(self):
        hist = visible_bs_histogram(self._log())
        assert list(hist) == [1, 1, 1, 1]

    def test_histogram_with_ratio(self):
        hist = visible_bs_histogram(self._log(), min_ratio=0.5)
        assert hist[0] == 2  # seconds 1 and 3
        assert hist[3] == 1  # second 2

    def test_cdf(self):
        xs, ys = visible_bs_cdf(self._log())
        assert ys[-1] == pytest.approx(1.0)
        assert xs[0] == 0
