"""Backplane edge cases: unreachable peers, ordering, degradation."""

import pytest

from repro.net.backplane import Backplane
from repro.sim.engine import Simulator


def _plane(bandwidth_bps=1_000_000.0, latency_s=0.01, members=(1, 2, 3)):
    sim = Simulator()
    plane = Backplane(sim, bandwidth_bps=bandwidth_bps,
                      latency_s=latency_s)
    for bs in members:
        plane.connect(bs)
    return sim, plane


class TestReachability:
    def test_send_to_unregistered_bs_drops_gracefully(self):
        sim, plane = _plane()
        delivered = []
        assert plane.send(1, 99, "x", 100, delivered.append) is None
        assert plane.send(99, 1, "x", 100, delivered.append) is None
        sim.run(until=10.0)
        assert delivered == []
        assert plane.dropped == {"relay": 2}
        assert plane.total_bytes() == 0

    def test_send_to_removed_bs_drops_gracefully(self):
        sim, plane = _plane()
        plane.disconnect(2)
        delivered = []
        assert not plane.is_connected(2)
        assert plane.send(1, 2, "x", 100, delivered.append,
                          category="salvage") is None
        sim.run(until=10.0)
        assert delivered == []
        assert plane.dropped == {"salvage": 1}

    def test_partition_and_heal(self):
        sim, plane = _plane()
        plane.partition(2)
        assert plane.is_partitioned(2)
        assert plane.is_connected(2)  # partitioned, not deregistered
        delivered = []
        assert plane.send(1, 2, "a", 100, delivered.append) is None
        assert plane.send(2, 3, "b", 100, delivered.append) is None
        plane.heal(2)
        assert not plane.is_partitioned(2)
        arrival = plane.send(1, 2, "c", 100, delivered.append)
        assert arrival is not None
        sim.run(until=10.0)
        assert delivered == ["c"]
        assert plane.dropped == {"relay": 2}

    def test_negative_size_still_rejected(self):
        _, plane = _plane()
        with pytest.raises(ValueError):
            plane.send(1, 2, "x", -1, lambda p: None)


class TestDeliveryOrdering:
    def test_fifo_per_sender_under_serialization(self):
        """Messages from one sender arrive in send order: the uplink
        serializes them even when submitted at the same instant."""
        sim, plane = _plane(bandwidth_bps=8_000.0, latency_s=0.5)
        order = []
        for tag in ("first", "second", "third"):
            plane.send(1, 2, tag, 1000, order.append)
        # 1000 bytes at 8 kbps = 1 s of uplink each, + 0.5 s latency.
        sim.run(until=10.0)
        assert order == ["first", "second", "third"]

    def test_latency_only_ordering_across_messages(self):
        sim, plane = _plane(bandwidth_bps=1e9, latency_s=0.25)
        arrivals = []
        plane.send(1, 2, "a", 10,
                   lambda p: arrivals.append((p, sim.now)))
        sim.run(until=0.1)
        plane.send(3, 2, "b", 10,
                   lambda p: arrivals.append((p, sim.now)))
        sim.run(until=10.0)
        assert [p for p, _ in arrivals] == ["a", "b"]
        assert arrivals[0][1] == pytest.approx(0.25, abs=1e-6)
        assert arrivals[1][1] == pytest.approx(0.35, abs=1e-6)

    def test_latency_spike_multiplier_delays_delivery(self):
        sim, plane = _plane(bandwidth_bps=1e9, latency_s=0.01)
        arrivals = []
        plane.latency_multiplier = 10.0
        plane.send(1, 2, "slow", 10,
                   lambda p: arrivals.append(sim.now))
        sim.run(until=5.0)
        assert arrivals[0] == pytest.approx(0.1, abs=1e-6)
        plane.latency_multiplier = 1.0
        plane.send(1, 2, "fast", 10,
                   lambda p: arrivals.append(sim.now))
        sim.run(until=10.0)
        assert arrivals[1] - 5.0 == pytest.approx(0.01, abs=1e-6)


class TestAccounting:
    def test_empty_membership_coordination_is_inert(self):
        """A backplane with no members drops everything and counts it —
        the empty-peer-set degenerate case never raises."""
        sim, plane = _plane(members=())
        assert plane.send(1, 2, "x", 100, lambda p: None) is None
        sim.run(until=1.0)
        assert plane.total_bytes() == 0
        assert plane.dropped == {"relay": 1}

    def test_bytes_and_messages_counted_per_category(self):
        sim, plane = _plane()
        plane.send(1, 2, "a", 100, lambda p: None, category="relay")
        plane.send(1, 2, "b", 50, lambda p: None, category="salvage")
        plane.send(2, 3, "c", 25, lambda p: None, category="relay")
        assert plane.total_bytes("relay") == 125
        assert plane.total_bytes("salvage") == 50
        assert plane.total_bytes() == 175
        assert plane.messages_sent == {"relay": 2, "salvage": 1}
        assert plane.dropped == {}
