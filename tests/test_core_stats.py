"""Unit tests for the statistics collector and PerfectRelay estimation."""

import pytest

from repro.core.perfect import perfect_relay_efficiency
from repro.core.stats import ViFiStats
from repro.net.packet import Direction

UP = Direction.UPSTREAM
DOWN = Direction.DOWNSTREAM


def record_tx(stats, tx_id, pkt, direction=UP, aux=(2, 3), t=0.0):
    stats.on_source_tx(tx_id=tx_id, pkt_key=(0, pkt), direction=direction,
                       time=t, src=0, dst=1, aux_designated=aux)


class TestTable1Rows:
    def test_success_and_failure_rates(self):
        stats = ViFiStats()
        for i in range(10):
            record_tx(stats, tx_id=i, pkt=i)
        for i in range(7):
            stats.on_dst_receive(i, (0, i), 0.01, via_relay=False)
        report = stats.coordination_report(UP)
        assert report.src_tx_success_rate == pytest.approx(0.7)
        assert report.src_tx_failure_rate == pytest.approx(0.3)

    def test_false_positive_definition_can_exceed_one(self):
        """B2 is a count ratio: relays on successful tx / successes."""
        stats = ViFiStats()
        record_tx(stats, tx_id=1, pkt=0)
        stats.on_dst_receive(1, (0, 0), 0.01, via_relay=False)
        # Two auxiliaries both relay the already-delivered packet.
        stats.on_relay_decision((0, 0), 2, 0.9, True, trigger_tx_id=1)
        stats.on_relay_decision((0, 0), 3, 0.9, True, trigger_tx_id=1)
        report = stats.coordination_report(UP)
        assert report.false_positive_rate == pytest.approx(2.0)
        assert report.relays_per_false_positive == pytest.approx(2.0)

    def test_false_negative_conditioned_on_overhearing(self):
        stats = ViFiStats()
        # Failed and overheard, no relay -> false negative.
        record_tx(stats, tx_id=1, pkt=0)
        stats.on_aux_overhear(1, 2)
        # Failed but NOT overheard: excluded from C3's population.
        record_tx(stats, tx_id=2, pkt=1)
        report = stats.coordination_report(UP)
        assert report.failed_overheard_rate == pytest.approx(0.5)
        assert report.false_negative_rate == pytest.approx(1.0)

    def test_relay_delivery_rate(self):
        stats = ViFiStats()
        record_tx(stats, tx_id=1, pkt=0)
        stats.on_aux_overhear(1, 2)
        stats.on_relay_decision((0, 0), 2, 1.0, True, trigger_tx_id=1)
        stats.on_dst_receive(1, (0, 0), 0.05, via_relay=True)
        report = stats.coordination_report(UP)
        assert report.relay_delivery_rate == pytest.approx(1.0)

    def test_aux_overhear_requires_designation(self):
        stats = ViFiStats()
        record_tx(stats, tx_id=1, pkt=0, aux=(2,))
        stats.on_aux_overhear(1, 9)  # undesignated BS
        report = stats.coordination_report(UP)
        assert report.mean_aux_heard == 0.0

    def test_directions_isolated(self):
        stats = ViFiStats()
        record_tx(stats, tx_id=1, pkt=0, direction=UP)
        record_tx(stats, tx_id=2, pkt=0, direction=DOWN)
        stats.on_dst_receive(2, (0, 0), 0.01, via_relay=False)
        up = stats.coordination_report(UP)
        down = stats.coordination_report(DOWN)
        assert up.n_source_tx == 1
        assert down.n_source_tx == 1

    def test_empty_report(self):
        report = ViFiStats().coordination_report(UP)
        assert report.n_source_tx == 0
        assert report.rows()


class TestEfficiency:
    def test_efficiency_counts_unique_deliveries(self):
        stats = ViFiStats()
        for i in range(4):
            record_tx(stats, tx_id=i, pkt=i)
        # Packet 0 delivered twice (dup); packets 1, 2 delivered once.
        stats.on_dst_receive(0, (0, 0), 0.01, via_relay=False)
        stats.on_dst_receive(0, (0, 0), 0.02, via_relay=True)
        stats.on_dst_receive(1, (0, 1), 0.01, via_relay=False)
        stats.on_dst_receive(2, (0, 2), 0.01, via_relay=False)
        assert stats.efficiency(UP, wireless_data_tx=6) == \
            pytest.approx(3 / 6)

    def test_zero_transmissions(self):
        assert ViFiStats().efficiency(UP, 0) == 0.0


class TestPerfectRelay:
    def test_upstream_counts_any_bs_hearing(self):
        stats = ViFiStats()
        # pkt 0: direct success; pkt 1: only aux heard; pkt 2: nobody.
        record_tx(stats, tx_id=1, pkt=0)
        stats.on_dst_receive(1, (0, 0), 0.0, via_relay=False)
        record_tx(stats, tx_id=2, pkt=1)
        stats.on_aux_overhear(2, 2)
        record_tx(stats, tx_id=3, pkt=2)
        eff, delivered, tx = perfect_relay_efficiency(stats, UP)
        assert delivered == 2
        assert tx == 3  # relays ride the backplane, not the air
        assert eff == pytest.approx(2 / 3)

    def test_downstream_charges_needed_relays(self):
        stats = ViFiStats()
        # pkt 0: direct success (1 tx).
        record_tx(stats, tx_id=1, pkt=0, direction=DOWN)
        stats.on_dst_receive(1, (0, 0), 0.0, via_relay=False)
        # pkt 1: failed direct, aux heard, ViFi relayed and delivered
        # (1 tx + 1 relay).
        record_tx(stats, tx_id=2, pkt=1, direction=DOWN)
        stats.on_aux_overhear(2, 2)
        stats.on_relay_decision((0, 1), 2, 1.0, True, trigger_tx_id=2)
        stats.on_dst_receive(2, (0, 1), 0.05, via_relay=True)
        # pkt 2: failed direct, aux heard, ViFi did NOT relay: oracle
        # assumes its single relay succeeds (1 tx + 1 relay).
        record_tx(stats, tx_id=3, pkt=2, direction=DOWN)
        stats.on_aux_overhear(3, 2)
        eff, delivered, tx = perfect_relay_efficiency(stats, DOWN)
        assert delivered == 3
        assert tx == 5
        assert eff == pytest.approx(3 / 5)

    def test_downstream_failed_vifi_relay_counts_as_failed(self):
        stats = ViFiStats()
        record_tx(stats, tx_id=1, pkt=0, direction=DOWN)
        stats.on_aux_overhear(1, 2)
        stats.on_relay_decision((0, 0), 2, 1.0, True, trigger_tx_id=1)
        # The relayed copy never reached the vehicle.
        eff, delivered, tx = perfect_relay_efficiency(stats, DOWN)
        assert delivered == 0
        assert tx == 2


class TestCounters:
    def test_salvage_and_anchor_counters(self):
        stats = ViFiStats()
        stats.on_salvage(3)
        stats.on_salvage(0)
        stats.on_anchor_change()
        assert stats.salvage_requests == 2
        assert stats.salvaged_packets == 3
        assert stats.anchor_changes == 1

    def test_give_up_marks_record(self):
        stats = ViFiStats()
        record_tx(stats, tx_id=1, pkt=0)
        stats.on_give_up((0, 0))
        assert stats.packet_records[(0, 0)].given_up
