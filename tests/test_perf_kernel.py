"""Equivalence tests for the PR 3 fast paths.

Covers the guarantees the struct-of-arrays resolve kernel, the
backoff-freezing CSMA model, and the vectorized node bookkeeping lean
on:

* the array kernel consumes the batched outcome stream exactly as the
  scalar loop does, so ``kernel="array"`` runs are **bitwise
  identical** to ``kernel="scalar"`` runs (same deliveries, same event
  count, same counters) — asserted on short tier-1 runs and a full
  trip under the ``slow`` marker;
* ``loss_eps_window`` validity bounds are sound: within a window the
  probability cannot change, so threshold reuse never changes an
  outcome;
* under a deterministic contention order (zero-width backoff window)
  the freeze model reproduces the defer-cascade model's medium-access
  order exactly, and a wide-slot ``BeaconSlotter`` protocol run
  schedules **no defer events** under the freeze model;
* freeze-vs-defer full protocol runs agree distributionally (same
  beacon counts, closely matched delivery rates);
* the ring-buffer receiver state matches the ordered-dict reference,
  the estimator's batched ingest is observationally identical to eager
  ingest, and relay probabilities served through the cached
  :class:`~repro.core.relaying.RelayTable` equal the scalar
  computation bit for bit.
"""

import hashlib
import json
import math
import random

import pytest

from repro.core.node import _ReceiverState
from repro.core.probabilities import ReceptionEstimator
from repro.core.protocol import ViFiConfig, ViFiSimulation
from repro.core.relaying import RelayContext, RelayTable, make_strategy
from repro.experiments.common import run_protocol_cbr, vanlan_protocol
from repro.net.channel import (
    BernoulliLoss,
    GilbertElliottLoss,
    SteeredGilbertElliott,
    TraceDrivenLoss,
)
from repro.net.medium import LinkTable, MediumObserver, WirelessMedium
from repro.net.packet import Beacon, DataPacket, Direction
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.testbeds.vanlan import VanLanTestbed


def _protocol_signature(config, duration_s=30.0, seed=0):
    """Delivery sequences + engine/medium counters of a pinned run."""
    testbed = VanLanTestbed(seed=0)
    sim, _ = vanlan_protocol(testbed, trip=0, seed=seed, config=config)
    cbr = run_protocol_cbr(sim, duration_s)
    return {
        "up": sorted(cbr.up_deliveries.items()),
        "down": sorted(cbr.down_deliveries.items()),
        "events": sim.sim.events_processed,
        "tx": sorted(sim.medium.tx_count.items()),
        "delivered": sorted(sim.medium.delivered_count.items()),
        "defers": sim.medium.defer_count,
    }


# ----------------------------------------------------------------------
# Array kernel vs scalar kernel
# ----------------------------------------------------------------------

class TestArrayKernelBitwise:
    # Kernel equality is scoped to ``medium_interval_predraw=False``:
    # the interval pre-draw plane only exists on the array kernel, so
    # with it on the two kernels consume the outcome stream in
    # different orders (deliberately — PERFORMANCE.md "PR 6").
    def test_short_run_bitwise_identical(self):
        """kernel="array" == kernel="scalar" on a 30 s protocol run."""
        scalar = _protocol_signature(
            ViFiConfig(medium_kernel="scalar",
                       medium_interval_predraw=False))
        array = _protocol_signature(
            ViFiConfig(medium_kernel="array",
                       medium_interval_predraw=False))
        assert array == scalar
        assert len(scalar["up"]) + len(scalar["down"]) > 50

    @pytest.mark.slow
    def test_full_trip_bitwise_identical(self):
        """The same equality over the full 120 s pinned workload."""
        scalar = _protocol_signature(
            ViFiConfig(medium_kernel="scalar",
                       medium_interval_predraw=False),
            duration_s=120.0)
        array = _protocol_signature(
            ViFiConfig(medium_kernel="array",
                       medium_interval_predraw=False),
            duration_s=120.0)
        assert array == scalar
        assert len(scalar["up"]) + len(scalar["down"]) > 400

    @pytest.mark.slow
    def test_full_trip_bitwise_identical_under_defer_csma(self):
        """Kernel equality is independent of the CSMA model."""
        scalar = _protocol_signature(
            ViFiConfig(medium_kernel="scalar", medium_csma="defer",
                       medium_interval_predraw=False),
            duration_s=60.0,
        )
        array = _protocol_signature(
            ViFiConfig(medium_kernel="array", medium_csma="defer",
                       medium_interval_predraw=False),
            duration_s=60.0,
        )
        assert array == scalar

    def test_probability_extremes(self):
        """0/1-loss links behave exactly through the array kernel."""
        sim = Simulator()
        rngs = RngRegistry(11)
        table = LinkTable()
        table.set_link(0, 1, BernoulliLoss(0.0, rngs.stream("ok")))
        table.set_link(0, 2, BernoulliLoss(1.0, rngs.stream("bad")))
        medium = WirelessMedium(sim, table, rngs.stream("m"),
                                kernel="array")

        class _Node:
            def __init__(self, node_id):
                self.node_id = node_id
                self.received = []

            def on_receive(self, frame, transmitter_id):
                self.received.append(frame.pkt_id)

        nodes = [_Node(i) for i in range(3)]
        for node in nodes:
            medium.attach(node)
        for pkt_id in range(20):
            medium.send(0, DataPacket(pkt_id=pkt_id, src=0, dst=1,
                                      direction=Direction.UPSTREAM,
                                      size_bytes=100))
        sim.run(until=5.0)
        assert nodes[1].received == list(range(20))
        assert nodes[2].received == []

    def test_mixed_eps_tables_stay_bitwise_equal(self):
        """A transmitter with an eps-less link keeps kernel equality.

        Regression: the array kernel's fallback rows must draw their
        uniforms from the same (single) outcome buffer as the
        vectorized rows, or the per-(frame, receiver) assignment
        diverges from the scalar kernel once the buffers refill.
        """

        class _CoinOnly:
            """Duck-typed process without loss_eps (private stream)."""

            static_loss_rate = 0.5

            def __init__(self, rng):
                self.rng = rng

            def is_lost(self, t):
                return bool(self.rng.random() < 0.5)

            def loss_rate(self, t):
                return 0.5

        def run(kernel):
            sim = Simulator()
            rngs = RngRegistry(23)
            table = LinkTable()
            # Transmitter 0: mixed rows (eps-capable + eps-less).
            table.set_link(0, 1, BernoulliLoss(0.4, rngs.stream("a")))
            table.set_link(0, 2, _CoinOnly(rngs.stream("c")))
            # Transmitter 1: pure eps rows (vector path).
            table.set_link(1, 0, BernoulliLoss(0.3, rngs.stream("b")))
            table.set_link(1, 2, BernoulliLoss(0.2, rngs.stream("d")))
            medium = WirelessMedium(sim, table, rngs.stream("m"),
                                    kernel=kernel, outcome_batch=8,
                                    interval_predraw=False)

            class _Node:
                def __init__(self, node_id):
                    self.node_id = node_id
                    self.received = []

                def on_receive(self, frame, transmitter_id):
                    self.received.append((frame.pkt_id, transmitter_id))

            nodes = [_Node(i) for i in range(3)]
            for node in nodes:
                medium.attach(node)
            for pkt_id in range(40):
                src = pkt_id % 2
                sim.schedule(0.01 * pkt_id, medium.send, src,
                             DataPacket(pkt_id=pkt_id, src=src,
                                        dst=1 - src,
                                        direction=Direction.UPSTREAM,
                                        size_bytes=200))
            sim.run(until=5.0)
            return {n.node_id: list(n.received) for n in nodes}

        assert run("array") == run("scalar")

    def test_rows_fall_back_for_eps_less_processes(self):
        """A process without loss_eps forces the scalar per-row loop."""

        class _CoinOnly:
            static_loss_rate = 0.0

            def is_lost(self, t):
                return False

            def loss_rate(self, t):
                return 0.0

        sim = Simulator()
        rngs = RngRegistry(3)
        table = LinkTable()
        table.set_link(0, 1, _CoinOnly())
        medium = WirelessMedium(sim, table, rngs.stream("m"),
                                kernel="array")

        class _Node:
            def __init__(self, node_id):
                self.node_id = node_id
                self.received = []

            def on_receive(self, frame, transmitter_id):
                self.received.append(frame.pkt_id)

        for node_id in (0, 1):
            medium.attach(_Node(node_id))
        medium._nodes[1].received = []
        medium.send(0, DataPacket(pkt_id=7, src=0, dst=1,
                                  direction=Direction.UPSTREAM,
                                  size_bytes=100))
        sim.run(until=1.0)
        assert medium._nodes[1].received == [7]


class TestLossEpsWindows:
    """``loss_eps_window`` bounds are sound: eps is constant inside."""

    def _check_windows(self, process, step, n):
        """Walk monotone times; probe strictly inside each window."""
        t = 0.0
        for _ in range(n):
            eps, until = process.loss_eps_window(t)
            assert 0.0 <= eps <= 1.0
            assert until >= t
            # A monotone probe strictly inside the window must see the
            # same probability (that is the reuse guarantee the array
            # kernel leans on).
            if math.isfinite(until):
                inside = min(0.25 * (until - t), 0.5 * step)
            else:
                inside = 0.5 * step
            if inside > 0.0:
                t = t + inside
                assert process.loss_eps(t) == eps
            t = t + step

    def test_bernoulli(self):
        process = BernoulliLoss(0.3, RngRegistry(1).stream("b"))
        self._check_windows(process, 0.1, 50)

    def test_gilbert_elliott(self):
        process = GilbertElliottLoss(0.05, 0.8, 0.9, 0.12,
                                     RngRegistry(2).stream("g"))
        self._check_windows(process, 0.05, 200)

    def test_trace_driven(self):
        process = TraceDrivenLoss([0.1, 0.9, 0.4], RngRegistry(3).stream("t"))
        self._check_windows(process, 0.13, 40)

    def test_steered_static(self):
        process = SteeredGilbertElliott(0.35, RngRegistry(4).stream("s"))
        self._check_windows(process, 0.03, 300)

    def test_trace_second_boundary_instants(self):
        """Exactly on a trace-second boundary the new second governs."""
        rates = [0.1, 0.9, 0.4]
        process = TraceDrivenLoss(rates, RngRegistry(5).stream("t"))
        for second, rate in enumerate(rates):
            eps, until = process.loss_eps_window(float(second))
            assert eps == rate
            assert until == float(second + 1)
            # The window is sound right up to (and excluding) its end.
            assert process.loss_eps(second + 0.999) == rate
        # Past the trace: the out-of-range rate holds forever.
        eps, until = process.loss_eps_window(float(len(rates)))
        assert eps == 1.0
        assert until == math.inf

    def test_steering_bucket_edge_instants(self):
        """Window bounds at exact bucket edges never go stale.

        Querying exactly on a LinkStateCache bucket edge may land the
        float-divided key on either side of the edge; the returned
        bound must still satisfy the soundness contract (eps constant
        strictly inside [t, bound)), even when it degenerates to the
        query time itself.
        """
        testbed = VanLanTestbed(seed=8)
        motion = testbed.vehicle_motion()
        from repro.net.propagation import LinkStateCache
        cache = LinkStateCache(testbed.link_model(0, 3, motion),
                               quantum_s=0.02)
        process = SteeredGilbertElliott(cache.loss_prob,
                                        rng=RngRegistry(8).stream("s"))
        for k in range(1, 400):
            t = k * 0.02  # exact bucket edges, monotone
            eps, until = process.loss_eps_window(t)
            assert until >= t
            assert process.loss_eps(t) == eps
            if until > t:
                probe = t + min(0.25 * (until - t), 1e-4)
                assert process.loss_eps(probe) == eps

    def test_pending_flip_caps_window(self):
        """A pending chain flip bounds the window; at the flip instant
        the flipped state governs and the bound moves past it."""
        process = GilbertElliottLoss(0.05, 0.8, 0.9, 0.12,
                                     RngRegistry(6).stream("g"))
        eps_by_state = {False: 0.05, True: 0.8}
        t = 0.0
        for _ in range(50):
            eps, flip_at = process.loss_eps_window(t)
            assert eps == eps_by_state[process._in_bad]
            assert flip_at == process._next_flip
            # Querying exactly at the flip instant advances the chain:
            # the opposite state's eps, and a strictly later bound.
            before = process._in_bad
            eps_at_flip, next_bound = process.loss_eps_window(flip_at)
            assert process._in_bad != before
            assert eps_at_flip == eps_by_state[process._in_bad]
            assert next_bound > flip_at
            t = flip_at

    def test_steered_matches_loss_eps(self):
        """window() returns the same eps value loss_eps would.

        Twin processes on identically seeded *independent* streams
        advance their chains through the same realization, so the
        windowed and plain accessors must agree at every instant.
        """
        a = SteeredGilbertElliott(0.35, RngRegistry(9).stream("x"))
        b = SteeredGilbertElliott(0.35, RngRegistry(9).fresh("x"))
        assert a.rng is not b.rng
        for k in range(200):
            t = 0.017 * k
            eps_w, _ = a.loss_eps_window(t)
            assert eps_w == b.loss_eps(t)


# ----------------------------------------------------------------------
# Backoff-freezing CSMA
# ----------------------------------------------------------------------

class _TxOrderObserver(MediumObserver):
    def __init__(self):
        self.order = []

    def on_transmit(self, transmitter_id, frame, start_time, end_time):
        self.order.append((transmitter_id, frame.kind_value,
                           getattr(frame, "pkt_id", None)))


class TestBackoffFreeze:
    def _contended_run(self, csma, sends, merge=True):
        """Three nodes, zero backoff window -> deterministic order."""
        sim = Simulator()
        rngs = RngRegistry(7)
        table = LinkTable()
        for a in range(3):
            for b in range(3):
                if a != b:
                    table.set_link(a, b, BernoulliLoss(
                        0.0, rngs.stream("l", a, b)))
        medium = WirelessMedium(sim, table, rngs.stream("m"),
                                backoff_slots=0, csma=csma,
                                kernel="scalar", merge_uncontended=merge)
        observer = _TxOrderObserver()
        medium.add_observer(observer)

        class _Node:
            def __init__(self, node_id):
                self.node_id = node_id
                self.received = []

            def on_receive(self, frame, transmitter_id):
                self.received.append((frame.pkt_id, transmitter_id))

        nodes = [_Node(i) for i in range(3)]
        for node in nodes:
            medium.attach(node)
        for at, src, pkt_id in sends:
            sim.schedule(at, medium.send, src,
                         DataPacket(pkt_id=pkt_id, src=src,
                                    dst=(src + 1) % 3,
                                    direction=Direction.UPSTREAM,
                                    size_bytes=600))
        sim.run(until=2.0)
        received = {n.node_id: list(n.received) for n in nodes}
        return observer.order, received, medium.defer_count

    #: Contention rounds with one outstanding frame per node: bursts
    #: that contend at the same instant, plus arrivals landing inside
    #: ongoing busy periods.  (With multi-frame queues the two models
    #: legitimately differ in one fairness edge — the defer model lets
    #: a finishing sender's next frame re-contend ahead of an
    #: already-waiting contender, while the freeze model serves
    #: waiters FIFO; see PERFORMANCE.md.)
    SENDS = [
        (0.0, 0, 0), (0.0, 1, 10), (0.0, 2, 20),
        (0.1, 2, 21), (0.102, 1, 11),
        (0.2, 0, 1), (0.2031, 1, 12), (0.2032, 2, 22),
        (0.5, 1, 13),
    ]

    @pytest.mark.parametrize("merge", [True, False])
    def test_matches_defer_medium_access_order(self, merge):
        """Zero-window contention: freeze == defer access order."""
        freeze_order, freeze_rx, freeze_defers = self._contended_run(
            "freeze", self.SENDS, merge=merge)
        defer_order, defer_rx, defer_defers = self._contended_run(
            "defer", self.SENDS, merge=merge)
        assert freeze_order == defer_order
        assert freeze_rx == defer_rx
        assert freeze_defers == 0
        # The defer model really did pay deferred attempts for this
        # schedule — the cascade the freeze model removes.
        assert defer_defers > 0

    def test_fifo_per_sender_under_saturation(self):
        sends = [(0.0, src, src * 100 + k)
                 for k in range(10) for src in range(3)]
        order, received, defers = self._contended_run("freeze", sends)
        assert defers == 0
        data_order = [pkt for _, kind, pkt in order if kind == "data"]
        for src in range(3):
            mine = [p for p in data_order if p // 100 == src]
            assert mine == sorted(mine)  # FIFO per sender
        assert len(data_order) == len(sends)

    def test_wide_slot_run_schedules_no_defers(self):
        """Satellite: wide-slot BeaconSlotter + freeze -> zero defers."""
        freeze = _protocol_signature(
            ViFiConfig(medium_csma="freeze", beacon_slot_s=0.05),
            duration_s=20.0,
        )
        assert freeze["defers"] == 0
        defer = _protocol_signature(
            ViFiConfig(medium_csma="defer", beacon_slot_s=0.05),
            duration_s=20.0,
        )
        # Wide slots synchronize senders: the defer model pays a
        # cascade for them, the freeze model pays nothing.
        assert defer["defers"] > 0

    @pytest.mark.slow
    def test_freeze_vs_defer_distributional(self):
        """Full-run freeze vs defer: same workload, equivalent output."""
        freeze = _protocol_signature(ViFiConfig(medium_csma="freeze"),
                                     duration_s=120.0)
        defer = _protocol_signature(ViFiConfig(medium_csma="defer"),
                                    duration_s=120.0)
        # Beacon emission counts ride the nominal due chains, which
        # the CSMA model does not touch.
        freeze_beacons = sum(c for (_, kind), c in freeze["tx"]
                             if kind == "beacon")
        defer_beacons = sum(c for (_, kind), c in defer["tx"]
                            if kind == "beacon")
        assert abs(freeze_beacons - defer_beacons) <= 2
        # Delivered traffic matches closely (different realizations of
        # the same stochastic protocol).
        for key in ("up", "down"):
            n_freeze = len(freeze[key])
            n_defer = len(defer[key])
            assert n_freeze > 100
            assert abs(n_freeze - n_defer) <= 0.1 * max(n_freeze, n_defer)


# ----------------------------------------------------------------------
# Node bookkeeping
# ----------------------------------------------------------------------

class _OrderedDictReceiverReference:
    """The pre-PR 3 ordered-dict receiver state, as a test oracle."""

    def __init__(self, memory=512):
        from collections import OrderedDict
        self.memory = memory
        self._received = OrderedDict()

    def record(self, pkt_id):
        fresh = pkt_id not in self._received
        self._received[pkt_id] = True
        self._received.move_to_end(pkt_id)
        while len(self._received) > self.memory:
            self._received.popitem(last=False)
        return fresh

    def missing_bitmap(self, pkt_id):
        bitmap = 0
        for k in range(8):
            candidate = pkt_id - 1 - k
            if candidate >= 0 and candidate not in self._received:
                bitmap |= 1 << k
        return bitmap


class TestReceiverStateRing:
    def test_matches_reference_on_protocol_like_sequences(self):
        """Ring+set == ordered-dict oracle over realistic id streams.

        Ids mostly increase with local reordering and duplicates —
        the pattern retransmissions and relays produce.  (The two
        structures only diverge when a duplicate arrives more than the
        memory depth late, which cannot happen within the 8-slot
        bitmap / retransmission horizons.)
        """
        rng = random.Random(42)
        state = _ReceiverState()
        reference = _OrderedDictReceiverReference()
        next_id = 0
        window = []
        for _ in range(5000):
            if window and rng.random() < 0.3:
                pkt_id = rng.choice(window)  # duplicate / reordered
            else:
                pkt_id = next_id
                next_id += 1
                window.append(pkt_id)
                if len(window) > 32:
                    window.pop(0)
            assert state.record(pkt_id) == reference.record(pkt_id)
            probe = max(pkt_id, 8)
            assert state.missing_bitmap(probe) == \
                reference.missing_bitmap(probe)

    def test_memory_bounded(self):
        state = _ReceiverState()
        for pkt_id in range(3000):
            state.record(pkt_id)
        assert state.record(0)  # ancient id forgotten
        assert not state.record(2999)


def _beacon(sender, incoming=None, learned=None):
    return Beacon(sender=sender, incoming=incoming or {},
                  learned=learned or {})


class TestEstimatorBatchedIngest:
    def test_lazy_flush_is_observationally_eager(self):
        """Query-per-beacon and query-at-end see identical state."""
        eager = ReceptionEstimator(1)
        lazy = ReceptionEstimator(1)
        rng = random.Random(7)
        beacons = []
        for k in range(200):
            sender = rng.choice([2, 3, 4])
            beacons.append((_beacon(
                sender,
                incoming={1: rng.random(), 5: rng.random()},
                learned={6: rng.random()},
            ), 0.01 * k))
        for beacon, now in beacons:
            eager.on_beacon(beacon, now)
            # Force an immediate fold on the eager instance.
            assert eager.probability(beacon.sender, 1, now) >= 0.0
            lazy.on_beacon(beacon, now)
        final = beacons[-1][1]
        for a in (2, 3, 4, 5, 6):
            for b in (1, 2, 3, 4, 5, 6):
                assert lazy.probability(a, b, final) == \
                    eager.probability(a, b, final)
        assert sorted(lazy.peers_heard_within(final, 10.0)) == \
            sorted(eager.peers_heard_within(final, 10.0))
        lazy.tick_second(2.0)
        eager.tick_second(2.0)
        assert lazy.incoming_estimates() == eager.incoming_estimates()

    def test_beacon_reports_shared_maps_are_frozen(self):
        """A sent beacon's maps never change after the fact (COW)."""
        est = ReceptionEstimator(1)
        est.on_beacon(_beacon(2, incoming={1: 0.5}), now=0.0)
        incoming_1, learned_1 = est.beacon_reports(now=0.1)
        snapshot = dict(learned_1)
        # A later peer report about node 1 must not mutate the maps
        # already embedded in transmitted beacons.
        est.on_beacon(_beacon(3, incoming={1: 0.9}), now=0.2)
        _, learned_2 = est.beacon_reports(now=0.3)
        assert dict(learned_1) == snapshot
        assert learned_2[3] == 0.9

    def test_beacon_reports_match_fresh_build(self):
        """Cached reports equal an uncached rebuild at every instant."""
        est = ReceptionEstimator(1, stale_s=1.0)
        est.on_beacon(_beacon(2, incoming={1: 0.5}), now=0.0)
        est.on_beacon(_beacon(3, incoming={1: 0.7}), now=0.4)
        for now in (0.5, 0.9, 1.05, 1.2, 1.45, 2.0):
            _, learned = est.beacon_reports(now=now)
            expected = {
                peer: prob for peer, (prob, ts) in est._outgoing.items()
                if now - ts <= est.stale_s
            }
            assert dict(learned) == expected


class TestRelayTable:
    def _estimator_with_state(self):
        est = ReceptionEstimator(3, stale_s=5.0)
        est.on_beacon(_beacon(0, incoming={1: 0.8, 3: 0.6, 4: 0.3},
                              learned={3: 0.55}), now=1.0)
        est.on_beacon(_beacon(1, incoming={0: 0.7, 3: 0.45, 4: 0.2},
                              learned={0: 0.75}), now=1.1)
        est.on_beacon(_beacon(4, incoming={0: 0.35, 1: 0.25},
                              learned={1: 0.3}), now=1.2)
        for k in range(9):
            est.on_beacon(_beacon(3, incoming={}), now=1.3 + 0.01 * k)
        return est

    def test_table_matches_scalar_probabilities(self):
        est = self._estimator_with_state()
        now = 2.0
        aux_ids = (3, 4)
        src, dst = 0, 1
        table = est.relay_table(aux_ids, src, dst, now)
        p = est.probability_lookup(now)
        p_src_dst = p(src, dst)
        denominator = 0.0
        for i, aux in enumerate(aux_ids):
            c_i = p(src, aux) * (1.0 - p_src_dst * p(dst, aux))
            assert float(table.contention[i]) == c_i
            assert float(table.p_to_dst[i]) == p(aux, dst)
            denominator += c_i * p(aux, dst)
        assert table.denominator == denominator
        assert table.own_delivery(3) == p(3, dst)

    def test_cached_table_stays_exact_across_unrelated_traffic(self):
        est = self._estimator_with_state()
        now = 2.0
        table_1 = est.relay_table((3, 4), 0, 1, now)
        # A beacon from a non-participant must not invalidate the
        # entry; participants' reports do.
        est.on_beacon(_beacon(9, incoming={}), now=2.05)
        table_2 = est.relay_table((3, 4), 0, 1, 2.1)
        assert table_2 is table_1
        est.on_beacon(_beacon(0, incoming={1: 0.9, 3: 0.7, 4: 0.4}),
                      now=2.2)
        table_3 = est.relay_table((3, 4), 0, 1, 2.3)
        assert table_3 is not table_1
        p = est.probability_lookup(2.3)
        assert table_3.own_delivery(3) == p(3, 1)

    def test_strategies_agree_with_and_without_table(self):
        est = self._estimator_with_state()
        now = 2.0
        aux_ids = (3, 4)
        table = est.relay_table(aux_ids, 0, 1, now)
        p = est.probability_lookup(now)
        for name in ("vifi", "not-g1", "not-g2"):
            strategy = make_strategy(name)
            with_table = strategy.relay_probability(RelayContext(
                self_id=3, aux_ids=aux_ids, src=0, dst=1, p=p,
                table=table,
            ))
            without = strategy.relay_probability(RelayContext(
                self_id=3, aux_ids=aux_ids, src=0, dst=1, p=p,
            ))
            assert with_table == without

    def test_degenerate_denominator_falls_back_to_relay(self):
        table = RelayTable((7,), 0, 1, lambda a, b: 0.0)
        strategy = make_strategy("vifi")
        probability = strategy.relay_probability(RelayContext(
            self_id=7, aux_ids=(7,), src=0, dst=1,
            p=lambda a, b: 0.0, table=table,
        ))
        assert probability == 1.0


# ----------------------------------------------------------------------
# Protocol-level sanity of the new defaults
# ----------------------------------------------------------------------

class TestDefaultConfigSanity:
    def test_default_run_delivers_traffic_without_defers(self):
        sig = _protocol_signature(ViFiConfig(), duration_s=25.0)
        assert sig["defers"] == 0
        assert len(sig["up"]) + len(sig["down"]) > 50

    def test_scalar_defer_config_restores_cascade_model(self):
        sig = _protocol_signature(
            ViFiConfig(medium_kernel="scalar", medium_csma="defer",
                       beacon_slot_s=0.005),
            duration_s=25.0,
        )
        assert sig["defers"] > 0
        assert len(sig["up"]) + len(sig["down"]) > 50


# ----------------------------------------------------------------------
# Interval-level outcome pre-draw (PR 6)
# ----------------------------------------------------------------------

#: Digest of the PR 5 committed realization of the pinned 120 s VanLAN
#: CBR workload (trip 0, every seed 0, stock PR 5 config), captured at
#: commit 96f789b before the PR 6 changes landed.
#: ``medium_interval_predraw=False`` must keep reproducing it bit for
#: bit.
PR5_ANCHOR_EVENTS = 36354
PR5_ANCHOR_DIGEST = \
    "74aae3e14cdcd8f2073a73dc43be4a5b554a8679c203e6c45474def052efcae6"


def _anchor_digest(sig):
    payload = json.dumps(
        {key: sig[key] for key in ("up", "down", "tx", "delivered")},
        sort_keys=True, default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class _PlannedLoss:
    """Duck-typed bucketed loss process with a committable span.

    eps is a pure function of the bucket index (so reuse can never
    change an outcome), and the process "flips" at fixed multiples of
    ``flip_every``: windows and spans commit only up to the next flip,
    mimicking :class:`SteeredGilbertElliott`'s horizon cap.
    """

    def __init__(self, quantum=0.02, flip_every=math.inf, salt=0):
        self.quantum = quantum
        self.flip_every = flip_every
        self.salt = salt

    def _eps(self, key):
        return ((key * 37 + self.salt * 11) % 89) / 100.0

    def _next_flip(self, t):
        if self.flip_every is math.inf:
            return math.inf
        return (math.floor(t / self.flip_every) + 1.0) * self.flip_every

    def loss_rate(self, t):
        return self._eps(int(t / self.quantum))

    def is_lost(self, t):
        return False  # scalar path unused by these tests

    def loss_eps(self, t):
        return self._eps(int(t / self.quantum))

    def loss_eps_window(self, t):
        key = int(t / self.quantum)
        bound = (key + 1.0) * self.quantum
        flip = self._next_flip(t)
        return self._eps(key), (bound if bound < flip else flip)

    def loss_eps_span(self, t0, t1):
        hi = self._next_flip(t0)
        if t1 < hi:
            hi = t1
        if hi <= t0:
            return None
        quantum = self.quantum
        k0 = int(t0 / quantum)
        k1 = int(hi / quantum)
        eps = [self._eps(k) for k in range(k0, k1 + 1)]
        return eps, quantum, k0, hi


class _RxSink:
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def on_receive(self, frame, transmitter_id):
        self.received.append((frame.pkt_id, transmitter_id))


class TestIntervalPredraw:
    """Boundary behaviour of the pre-draw plane (PR 6 tentpole a)."""

    def _medium(self, n_rx=2, quantum=0.02, flip_every=math.inf,
                n_tx=1, **kwargs):
        sim = Simulator()
        rngs = RngRegistry(5)
        table = LinkTable()
        for tx in range(n_tx):
            for rx in range(n_tx, n_tx + n_rx):
                table.set_link(tx, rx, _PlannedLoss(
                    quantum=quantum, flip_every=flip_every,
                    salt=tx * 10 + rx))
        medium = WirelessMedium(sim, table, rngs.stream("m"),
                                outcome_rng=rngs.stream("o"),
                                kernel="array", backoff_slots=0,
                                predraw_interval_s=0.1, **kwargs)
        nodes = [_RxSink(i) for i in range(n_tx + n_rx)]
        for node in nodes:
            medium.attach(node)
        return sim, medium, nodes

    @staticmethod
    def _frame(pkt_id, src=0):
        return DataPacket(pkt_id=pkt_id, src=src, dst=1,
                          direction=Direction.UPSTREAM, size_bytes=50)

    def test_plans_arm_on_the_second_resolve_of_an_interval(self):
        """Frame 1 falls back and arms; frame 2 establishes a plan."""
        sim, medium, _ = self._medium()
        for k in range(4):
            sim.schedule(0.01 + 0.02 * k, medium.send, 0,
                         self._frame(k))
        sim.run(until=0.099)
        assert medium.predraw_plans == 1
        assert medium.predraw_fallback_frames == 1
        assert medium.predraw_planned_frames == 3
        assert medium.predraw_failed_plans == 0

    def test_single_frame_intervals_never_plan(self):
        """One resolve per interval stays on the per-slot fallback —
        pre-drawing 5 frames of uniforms for it would be waste."""
        sim, medium, _ = self._medium()
        for k in range(5):
            sim.schedule(0.01 + 0.1 * k, medium.send, 0, self._frame(k))
        sim.run(until=0.6)
        assert medium.predraw_plans == 0
        assert medium.predraw_planned_frames == 0
        assert medium.predraw_fallback_frames == 5

    def test_flip_inside_interval_splits_the_plan(self):
        """A commitment horizon shorter than the interval forces
        re-establishment mid-interval, never a stale threshold."""
        sim, medium, nodes = self._medium(flip_every=0.03)
        for k in range(5):
            sim.schedule(0.01 + 0.02 * k, medium.send, 0,
                         self._frame(k))
        sim.run(until=0.12)
        # Frame 0 arms; frame 1 plans up to the 0.06 flip; frame 3
        # (t=0.07) re-plans up to 0.09; frame 4 (t=0.09) re-plans to
        # the interval edge.
        assert medium.predraw_plans == 3
        assert medium.predraw_fallback_frames == 1
        assert medium.predraw_planned_frames == 4
        # Flip-capped horizons are commitments, not failures.
        assert medium.predraw_failed_plans == 0

    def test_partial_interval_at_run_end(self):
        """A plan reaching past the end of the run is harmless."""
        sim, medium, nodes = self._medium()
        for k in range(3):
            sim.schedule(0.01 + 0.015 * k, medium.send, 0,
                         self._frame(k))
        sim.run(until=0.05)  # stop mid-interval, plan alive to 0.1
        assert medium.predraw_plans == 1
        assert medium.predraw_planned_frames == 2
        total = sum(len(n.received) for n in nodes)
        assert total == sum(
            count for (_, kind), count in medium.delivered_count.items()
        )

    def test_mid_interval_contention_keeps_accounting_total(self):
        """Contending transmitters resolve through their own plans;
        every resolved frame is either planned or fallback."""
        sim, medium, nodes = self._medium(n_tx=2, n_rx=2)
        for k in range(6):
            at = 0.01 + 0.012 * k
            sim.schedule(at, medium.send, 0, self._frame(100 + k, 0))
            sim.schedule(at, medium.send, 1, self._frame(200 + k, 1))
        sim.run(until=0.3)
        resolved = medium.predraw_planned_frames \
            + medium.predraw_fallback_frames
        sent = sum(medium.tx_count.values())
        assert sent == 12
        assert resolved == sent
        assert medium.predraw_plans >= 1
        # Both contenders delivered traffic through the plane.
        delivered = {src for (_, src) in
                     {(pkt, tx) for n in nodes for (pkt, tx) in
                      n.received}}
        assert delivered == {0, 1}

    def test_knob_off_medium_never_plans(self):
        sim, medium, _ = self._medium(interval_predraw=False)
        for k in range(4):
            sim.schedule(0.01 + 0.02 * k, medium.send, 0,
                         self._frame(k))
        sim.run(until=0.099)
        assert medium.predraw_plans == 0
        assert medium.predraw_planned_frames == 0
        assert medium.predraw_fallback_frames == 0

    def test_refusing_process_parks_the_interval(self):
        """A process that cannot commit past t0 fails the plan once,
        then the whole interval rides the fallback path."""

        class _NoSpan(_PlannedLoss):
            def loss_eps_span(self, t0, t1):
                return None

        sim = Simulator()
        rngs = RngRegistry(5)
        table = LinkTable()
        table.set_link(0, 1, _NoSpan(salt=1))
        table.set_link(0, 2, _PlannedLoss(salt=2))
        medium = WirelessMedium(sim, table, rngs.stream("m"),
                                outcome_rng=rngs.stream("o"),
                                kernel="array", backoff_slots=0,
                                predraw_interval_s=0.1)
        for node in (_RxSink(0), _RxSink(1), _RxSink(2)):
            medium.attach(node)
        for k in range(4):
            sim.schedule(0.01 + 0.02 * k, medium.send, 0,
                         self._frame(k))
        sim.run(until=0.099)
        assert medium.predraw_failed_plans == 1
        assert medium.predraw_plans == 0
        assert medium.predraw_planned_frames == 0
        assert medium.predraw_fallback_frames == 4


class TestPredrawProtocolRuns:
    def test_default_run_exercises_the_plane(self):
        """The stock protocol run plans most slot-batch frames."""
        testbed = VanLanTestbed(seed=0)
        sim, _ = vanlan_protocol(testbed, trip=0, seed=0,
                                 config=ViFiConfig())
        cbr = run_protocol_cbr(sim, 20.0)
        medium = sim.medium
        assert medium.predraw_plans > 50
        assert medium.predraw_planned_frames > 200
        delivered = len(cbr.up_deliveries) + len(cbr.down_deliveries)
        assert delivered > 50

    @pytest.mark.slow
    def test_knob_off_reproduces_pr5_committed_realization(self):
        """``medium_interval_predraw=False`` == the PR 5 run."""
        testbed = VanLanTestbed(seed=0)
        sim, _ = vanlan_protocol(
            testbed, trip=0, seed=0,
            config=ViFiConfig(medium_interval_predraw=False))
        cbr = run_protocol_cbr(sim, 120.0)
        sig = {
            "up": sorted(cbr.up_deliveries.items()),
            "down": sorted(cbr.down_deliveries.items()),
            "tx": sorted(sim.medium.tx_count.items()),
            "delivered": sorted(sim.medium.delivered_count.items()),
        }
        assert sim.sim.events_processed == PR5_ANCHOR_EVENTS
        assert _anchor_digest(sig) == PR5_ANCHOR_DIGEST
        assert sim.medium.predraw_plans == 0

    @pytest.mark.slow
    def test_default_predraw_distributional(self):
        """Acceptance: the pre-drawn realization agrees with the
        per-slot realization distributionally over a full trip."""
        on = _protocol_signature(ViFiConfig(), duration_s=120.0)
        off = _protocol_signature(
            ViFiConfig(medium_interval_predraw=False),
            duration_s=120.0)
        on_beacons = sum(c for (_, kind), c in on["tx"]
                         if kind == "beacon")
        off_beacons = sum(c for (_, kind), c in off["tx"]
                          if kind == "beacon")
        # Beacon emission rides the nominal due chains, which the
        # outcome plane never touches.
        assert abs(on_beacons - off_beacons) <= 2
        for key in ("up", "down"):
            n_on = len(on[key])
            n_off = len(off[key])
            assert n_on > 400
            assert abs(n_on - n_off) <= 0.05 * max(n_on, n_off)
