"""The invariant lint plane: engine, rules, CLI, and repo cleanliness.

Fixture snippets run through :func:`repro.lint.engine.lint_sources`,
which gives rules exactly the on-disk surface (package-relative paths,
import-alias maps, pragmas), so a rule that passes here behaves the
same in ``python -m repro lint``.
"""

import json
import subprocess
import sys

import pytest

from repro.lint import engine
from repro.lint.engine import lint_sources
from repro.lint.rules import (
    ALL_RULES,
    BlockingInAsyncRule,
    LockGuardedRule,
    RngDisciplineRule,
    SilentExceptRule,
    StoreTokenRule,
    WallClockRule,
)

SIM_PATH = "repro/sim/fixture.py"


def run_rule(rule_cls, source, path=SIM_PATH, extra=None):
    sources = {path: source}
    if extra:
        sources.update(extra)
    report = lint_sources(sources, rules=[rule_cls()])
    return report.findings


def rule_ids(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# RNG-DISCIPLINE
# ----------------------------------------------------------------------

class TestRngDiscipline:
    def test_fires_on_default_rng(self):
        findings = run_rule(RngDisciplineRule, (
            "import numpy as np\n"
            "def f(seed):\n"
            "    return np.random.default_rng(seed)\n"
        ))
        assert rule_ids(findings) == ["RNG-DISCIPLINE"]
        assert findings[0].line == 3
        assert "numpy.random.default_rng" in findings[0].message

    def test_fires_on_random_random_instance(self):
        findings = run_rule(RngDisciplineRule, (
            "import random\n"
            "r = random.Random()\n"
        ))
        assert rule_ids(findings) == ["RNG-DISCIPLINE"]

    def test_fires_on_module_level_draw(self):
        findings = run_rule(RngDisciplineRule, (
            "import random\n"
            "def f():\n"
            "    return random.uniform(0, 1)\n"
        ))
        assert rule_ids(findings) == ["RNG-DISCIPLINE"]

    def test_fires_through_from_import_alias(self):
        findings = run_rule(RngDisciplineRule, (
            "from numpy.random import default_rng as mk\n"
            "g = mk(3)\n"
        ))
        assert rule_ids(findings) == ["RNG-DISCIPLINE"]

    def test_quiet_on_named_streams(self):
        findings = run_rule(RngDisciplineRule, (
            "from repro.sim.rng import RngRegistry\n"
            "def f(seed):\n"
            "    rngs = RngRegistry(seed).spawn('fixture')\n"
            "    return rngs.stream('a').random(4)\n"
        ))
        assert findings == []

    def test_quiet_on_generator_method_calls(self):
        # rng.random()/rng.integers() on a passed-in generator is the
        # sanctioned consumption pattern, not construction.
        findings = run_rule(RngDisciplineRule, (
            "def f(rng):\n"
            "    return rng.integers(0, 2**32)\n"
        ))
        assert findings == []

    def test_allowlist_covers_provider_and_gateway_jitter(self):
        source = (
            "import random\n"
            "r = random.Random()\n"
        )
        for allowed in ("repro/sim/rng.py", "repro/gateway/client.py"):
            assert run_rule(RngDisciplineRule, source,
                            path=allowed) == []
        assert run_rule(RngDisciplineRule, source,
                        path="repro/net/fixture.py") != []


# ----------------------------------------------------------------------
# WALL-CLOCK
# ----------------------------------------------------------------------

class TestWallClock:
    def test_fires_on_time_time(self):
        findings = run_rule(WallClockRule, (
            "import time\n"
            "t = time.time()\n"
        ))
        assert rule_ids(findings) == ["WALL-CLOCK"]

    def test_fires_on_datetime_now_through_from_import(self):
        findings = run_rule(WallClockRule, (
            "from datetime import datetime\n"
            "stamp = datetime.now()\n"
        ))
        assert rule_ids(findings) == ["WALL-CLOCK"]

    def test_fires_on_uuid4_and_urandom(self):
        findings = run_rule(WallClockRule, (
            "import os\n"
            "import uuid\n"
            "a = uuid.uuid4()\n"
            "b = os.urandom(8)\n"
        ))
        assert rule_ids(findings) == ["WALL-CLOCK", "WALL-CLOCK"]

    def test_quiet_on_monotonic_and_perf_counter(self):
        findings = run_rule(WallClockRule, (
            "import time\n"
            "a = time.monotonic()\n"
            "b = time.perf_counter()\n"
        ))
        assert findings == []

    def test_service_and_gateway_exempt(self):
        source = "import time\nt = time.time()\n"
        assert run_rule(WallClockRule, source,
                        path="repro/service.py") == []
        assert run_rule(WallClockRule, source,
                        path="repro/gateway/server.py") == []
        assert run_rule(WallClockRule, source,
                        path="repro/core/fixture.py") != []


# ----------------------------------------------------------------------
# LOCK-GUARDED
# ----------------------------------------------------------------------

GUARDED_CLASS = (
    "import threading\n"
    "class Service:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.RLock()\n"
    "        self._jobs = {}  # guarded-by: _lock\n"
    "    def add(self, job):\n"
    "        with self._lock:\n"
    "            self._jobs[job.id] = job\n"
    "    def count(self):\n"
    "        with self._lock:\n"
    "            return len(self._jobs)\n"
)


class TestLockGuarded:
    def test_quiet_when_every_access_is_locked(self):
        assert run_rule(LockGuardedRule, GUARDED_CLASS) == []

    def test_mutation_removing_the_with_block_fires(self):
        # The mutation test from the issue: drop one `with self._lock`
        # and the rule must flag the now-unguarded access.
        mutated = GUARDED_CLASS.replace(
            "    def count(self):\n"
            "        with self._lock:\n"
            "            return len(self._jobs)\n",
            "    def count(self):\n"
            "        return len(self._jobs)\n")
        findings = run_rule(LockGuardedRule, mutated)
        assert rule_ids(findings) == ["LOCK-GUARDED"]
        assert "self._jobs" in findings[0].message
        assert "count" in findings[0].message

    def test_fires_on_unlocked_write(self):
        mutated = GUARDED_CLASS + (
            "    def clear(self):\n"
            "        self._jobs = {}\n"
        )
        findings = run_rule(LockGuardedRule, mutated)
        assert rule_ids(findings) == ["LOCK-GUARDED"]

    def test_init_is_exempt(self):
        # The declaration itself (in __init__) must not be flagged.
        assert run_rule(LockGuardedRule, GUARDED_CLASS) == []

    def test_wrong_lock_does_not_count(self):
        mutated = GUARDED_CLASS.replace(
            "    def count(self):\n"
            "        with self._lock:\n",
            "    def count(self):\n"
            "        with self._other:\n")
        findings = run_rule(LockGuardedRule, mutated)
        assert rule_ids(findings) == ["LOCK-GUARDED"]

    def test_unannotated_attributes_are_free(self):
        findings = run_rule(LockGuardedRule, (
            "class Free:\n"
            "    def __init__(self):\n"
            "        self._cache = {}\n"
            "    def get(self, k):\n"
            "        return self._cache.get(k)\n"
        ))
        assert findings == []


# ----------------------------------------------------------------------
# STORE-TOKEN
# ----------------------------------------------------------------------

class TestStoreToken:
    def test_quiet_on_tokenizable_config(self):
        findings = run_rule(StoreTokenRule, (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class TrialConfig:\n"
            "    rate: float\n"
            "    name: str\n"
            "    sizes: tuple[int, ...]\n"
        ))
        assert findings == []

    def test_fires_on_untokenizable_field(self):
        findings = run_rule(StoreTokenRule, (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class TrialConfig:\n"
            "    rate: float\n"
            "    target: object\n"
        ))
        assert rule_ids(findings) == ["STORE-TOKEN"]
        assert "TrialConfig.target" in findings[0].message

    def test_cache_token_waives_field_checks(self):
        findings = run_rule(StoreTokenRule, (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class TrialConfig:\n"
            "    target: object\n"
            "    def cache_token(self):\n"
            "        return ('trial', id(self.target))\n"
        ))
        assert findings == []

    def test_plain_config_class_needs_cache_token(self):
        findings = run_rule(StoreTokenRule, (
            "class StreamConfig:\n"
            "    def __init__(self):\n"
            "        self.rate = 1.0\n"
        ))
        assert rule_ids(findings) == ["STORE-TOKEN"]
        assert "cache_token" in findings[0].message

    def test_reachability_through_nested_dataclass(self):
        # The bad field hides one hop away from the *Config root.
        findings = run_rule(StoreTokenRule, (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Inner:\n"
            "    handle: object\n"
            "@dataclass\n"
            "class OuterConfig:\n"
            "    inner: Inner\n"
        ))
        assert rule_ids(findings) == ["STORE-TOKEN"]
        assert "Inner.handle" in findings[0].message

    def test_non_config_dataclass_unreachable_is_free(self):
        findings = run_rule(StoreTokenRule, (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Event:\n"
            "    target: object\n"
        ))
        assert findings == []

    def test_result_key_call_site_roots_reachability(self):
        findings = run_rule(StoreTokenRule, (
            "from dataclasses import dataclass\n"
            "from repro.store import result_key\n"
            "@dataclass\n"
            "class Payload:\n"
            "    blob: object\n"
            "key = result_key('kind', Payload)\n"
        ))
        assert rule_ids(findings) == ["STORE-TOKEN"]


# ----------------------------------------------------------------------
# SILENT-EXCEPT
# ----------------------------------------------------------------------

class TestSilentExcept:
    def test_fires_on_bare_except(self):
        findings = run_rule(SilentExceptRule, (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        return None\n"
        ))
        assert rule_ids(findings) == ["SILENT-EXCEPT"]

    def test_fires_on_except_exception(self):
        findings = run_rule(SilentExceptRule, (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        return None\n"
        ))
        assert rule_ids(findings) == ["SILENT-EXCEPT"]

    def test_bare_reraise_passes(self):
        findings = run_rule(SilentExceptRule, (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except BaseException:\n"
            "        cleanup()\n"
            "        raise\n"
        ))
        assert findings == []

    def test_chained_raise_is_not_a_reraise(self):
        # `raise X from exc` replaces the exception type — degradation
        # sites like store.read_record need a pragma, not a free pass.
        findings = run_rule(SilentExceptRule, (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        raise RuntimeError('mapped') from exc\n"
        ))
        assert rule_ids(findings) == ["SILENT-EXCEPT"]

    def test_narrow_handler_is_free(self):
        findings = run_rule(SilentExceptRule, (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except (OSError, ValueError):\n"
            "        return None\n"
        ))
        assert findings == []

    def test_pragma_with_reason_suppresses(self):
        report = lint_sources({SIM_PATH: (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:  # repro-lint: allow[SILENT-EXCEPT] fixture degradation site\n"
            "        return None\n"
        )}, rules=[SilentExceptRule()])
        assert report.findings == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# BLOCKING-IN-ASYNC
# ----------------------------------------------------------------------

class TestBlockingInAsync:
    def test_fires_on_time_sleep_in_async_def(self):
        findings = run_rule(BlockingInAsyncRule, (
            "import time\n"
            "async def handler():\n"
            "    time.sleep(1.0)\n"
        ))
        assert rule_ids(findings) == ["BLOCKING-IN-ASYNC"]
        assert "asyncio.to_thread" in findings[0].message

    def test_fires_on_open_and_socket(self):
        findings = run_rule(BlockingInAsyncRule, (
            "import socket\n"
            "async def handler(path):\n"
            "    fh = open(path)\n"
            "    conn = socket.create_connection(('h', 1))\n"
        ))
        assert rule_ids(findings) == \
            ["BLOCKING-IN-ASYNC", "BLOCKING-IN-ASYNC"]

    def test_quiet_on_asyncio_sleep_and_to_thread(self):
        findings = run_rule(BlockingInAsyncRule, (
            "import asyncio\n"
            "import time\n"
            "async def handler():\n"
            "    await asyncio.sleep(0.1)\n"
            "    await asyncio.to_thread(time.sleep, 1.0)\n"
        ))
        assert findings == []

    def test_sync_def_is_out_of_scope(self):
        findings = run_rule(BlockingInAsyncRule, (
            "import time\n"
            "def handler():\n"
            "    time.sleep(1.0)\n"
        ))
        assert findings == []

    def test_nested_sync_def_inside_async_is_exempt(self):
        # A nested def runs wherever it is called (e.g. shipped to
        # to_thread); only the async body itself blocks the loop.
        findings = run_rule(BlockingInAsyncRule, (
            "import time\n"
            "async def handler():\n"
            "    def blocking():\n"
            "        time.sleep(1.0)\n"
            "    return blocking\n"
        ))
        assert findings == []


# ----------------------------------------------------------------------
# Engine: pragmas, baseline, report
# ----------------------------------------------------------------------

class TestEngine:
    def test_pragma_without_reason_is_a_finding(self):
        report = lint_sources({SIM_PATH: (
            "import time\n"
            "t = time.time()  # repro-lint: allow[WALL-CLOCK]\n"
        )})
        assert "LINT-PRAGMA" in rule_ids(report.findings)
        # and the underlying finding is NOT suppressed
        assert "WALL-CLOCK" in rule_ids(report.findings)

    def test_malformed_pragma_is_a_finding(self):
        report = lint_sources({SIM_PATH: (
            "x = 1  # repro-lint: disable-everything\n"
        )})
        assert rule_ids(report.findings) == ["LINT-PRAGMA"]

    def test_standalone_pragma_covers_next_line(self):
        report = lint_sources({SIM_PATH: (
            "import time\n"
            "# repro-lint: allow[WALL-CLOCK] fixture covering next line\n"
            "t = time.time()\n"
        )})
        assert report.findings == []
        assert report.suppressed == 1

    def test_pragma_only_covers_its_rule(self):
        report = lint_sources({SIM_PATH: (
            "import time\n"
            "t = time.time()  # repro-lint: allow[RNG-DISCIPLINE] wrong rule\n"
        )})
        assert rule_ids(report.findings) == ["WALL-CLOCK"]

    def test_syntax_error_becomes_parse_finding(self):
        report = lint_sources({SIM_PATH: "def broken(:\n"})
        assert rule_ids(report.findings) == ["LINT-PARSE"]

    def test_baseline_grandfathers_by_line_content(self):
        source = (
            "import time\n"
            "t = time.time()\n"
        )
        baseline = {(SIM_PATH, "WALL-CLOCK", "t = time.time()"): 1}
        report = lint_sources({SIM_PATH: source}, baseline=baseline)
        assert report.findings == []
        assert report.baselined == 1
        # A second, new finding is NOT covered by the single entry.
        report2 = lint_sources(
            {SIM_PATH: source + "u = time.time()\n"},
            baseline=baseline)
        assert rule_ids(report2.findings) == ["WALL-CLOCK"]
        assert report2.baselined == 1

    def test_baseline_round_trip(self, tmp_path):
        source = "import time\nt = time.time()\n"
        report = lint_sources({SIM_PATH: source})
        path = tmp_path / "baseline.json"
        engine.write_baseline(str(path), report.findings,
                              report._files_by_display)
        budget = engine.load_baseline(str(path))
        again = lint_sources({SIM_PATH: source}, baseline=budget)
        assert again.findings == []
        assert again.baselined == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert engine.load_baseline(str(tmp_path / "nope.json")) == {}

    def test_findings_sorted_and_json_shape(self):
        report = lint_sources({SIM_PATH: (
            "import time\n"
            "import uuid\n"
            "b = uuid.uuid4()\n"
            "a = time.time()\n"
        )})
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)
        payload = report.as_dict()
        assert payload["clean"] is False
        assert payload["counts"] == {"WALL-CLOCK": 2}
        assert {f["rule"] for f in payload["findings"]} == {"WALL-CLOCK"}

    def test_every_rule_registered_with_unique_id(self):
        ids = [cls.rule_id for cls in ALL_RULES]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 6


# ----------------------------------------------------------------------
# CLI and repo cleanliness
# ----------------------------------------------------------------------

class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *args],
            capture_output=True, text=True)

    def test_repo_is_lint_clean(self):
        # The tier-1 acceptance gate: zero unbaselined findings.
        proc = self._run()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 active finding(s)" in proc.stdout

    def test_json_output_clean(self):
        proc = self._run("--json")
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["clean"] is True
        assert payload["findings"] == []

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("RNG-DISCIPLINE", "WALL-CLOCK", "LOCK-GUARDED",
                        "STORE-TOKEN", "SILENT-EXCEPT",
                        "BLOCKING-IN-ASYNC"):
            assert rule_id in proc.stdout

    def test_unknown_rule_is_usage_error(self):
        proc = self._run("--select", "NO-SUCH-RULE")
        assert proc.returncode == 2

    def test_findings_exit_one_with_location_output(self, tmp_path):
        bad = tmp_path / "repro_fixture.py"
        bad.write_text("import time\nt = time.time()\n")
        # Outside src/repro the sim-core scope does not apply; lint the
        # repo's own source with a single rule instead and check the
        # select path works end to end.
        proc = self._run("--select", "WALL-CLOCK")
        assert proc.returncode == 0

    def test_select_filters_rules(self):
        proc = self._run("--select", "RNG-DISCIPLINE", "--json")
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["clean"] is True


@pytest.mark.parametrize("rule_cls", ALL_RULES)
def test_each_rule_quiet_on_trivial_module(rule_cls):
    assert run_rule(rule_cls, "x = 1\n\n\ndef f():\n    return x\n") == []
