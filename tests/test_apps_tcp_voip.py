"""Integration tests for the TCP and VoIP application models."""

import pytest

from repro.apps.tcp import TcpConfig, TcpWorkload
from repro.apps.voip import VoipConfig, VoipStream
from repro.apps.workload import CbrWorkload, FlowRouter
from repro.core.protocol import ViFiConfig, ViFiSimulation
from repro.net.channel import BernoulliLoss, TraceDrivenLoss
from repro.net.medium import LinkTable
from repro.sim.rng import RngRegistry

VEHICLE = 0


def clean_sim(bs_ids=(1, 2), vehicle_loss=0.0, seed=3, config=None):
    rngs = RngRegistry(seed)
    table = LinkTable()
    for bs in bs_ids:
        table.set_link(VEHICLE, bs, BernoulliLoss(
            vehicle_loss, rngs.stream("u", bs)))
        table.set_link(bs, VEHICLE, BernoulliLoss(
            vehicle_loss, rngs.stream("d", bs)))
    for a in bs_ids:
        for b in bs_ids:
            if a != b:
                table.set_link(a, b, BernoulliLoss(
                    0.0, rngs.stream("b", a, b)))
    sim = ViFiSimulation(list(bs_ids), table,
                         config=config or ViFiConfig(), seed=seed)
    sim.start()
    return sim


class TestTcpCleanLink:
    def test_download_completes_quickly(self):
        sim = clean_sim()
        router = FlowRouter(sim)
        workload = TcpWorkload(sim, router, directions=("download",))
        workload.start(5.0)
        workload.stop(30.0)
        sim.run(until=32.0)
        assert len(workload.completed) > 10
        assert not workload.aborted
        # 10 KB at 1 Mbps with handshake: a few hundred milliseconds.
        assert workload.median_transfer_time() < 1.0

    def test_upload_direction_works(self):
        sim = clean_sim()
        router = FlowRouter(sim)
        workload = TcpWorkload(sim, router, directions=("upload",))
        workload.start(5.0)
        workload.stop(30.0)
        sim.run(until=32.0)
        assert len(workload.completed) > 10

    def test_alternating_directions(self):
        sim = clean_sim()
        router = FlowRouter(sim)
        workload = TcpWorkload(sim, router)
        workload.start(5.0)
        workload.stop(30.0)
        sim.run(until=32.0)
        directions = {r.direction for r in workload.completed}
        assert directions == {"download", "upload"}

    def test_transfer_times_positive(self):
        sim = clean_sim()
        router = FlowRouter(sim)
        workload = TcpWorkload(sim, router)
        workload.start(5.0)
        workload.stop(20.0)
        sim.run(until=22.0)
        assert all(r.duration > 0 for r in workload.completed)


class TestTcpLossyLink:
    def test_lossy_link_slows_but_completes(self):
        sim = clean_sim(vehicle_loss=0.3, seed=7)
        router = FlowRouter(sim)
        workload = TcpWorkload(sim, router, directions=("download",))
        workload.start(5.0)
        workload.stop(60.0)
        sim.run(until=62.0)
        assert len(workload.completed) >= 5

    def test_dead_link_aborts_after_stall_timeout(self):
        rngs = RngRegistry(9)
        table = LinkTable()
        # Good for 10 s, then dead for good: the active transfer must
        # abort within the 10 s stall timeout.
        profile = [0.0] * 10 + [1.0] * 60
        table.set_link(VEHICLE, 1, TraceDrivenLoss(profile,
                                                   rngs.stream("u")))
        table.set_link(1, VEHICLE, TraceDrivenLoss(profile,
                                                   rngs.stream("d")))
        sim = ViFiSimulation([1], table, config=ViFiConfig(), seed=9)
        sim.start()
        router = FlowRouter(sim)
        workload = TcpWorkload(sim, router, directions=("download",))
        workload.start(5.0)
        workload.stop(50.0)
        sim.run(until=55.0)
        assert workload.aborted
        # Sessions end at aborts; per-session counts reflect that.
        assert workload.transfers_per_session() < len(workload.completed)

    def test_session_accounting(self):
        workload = TcpWorkload.__new__(TcpWorkload)
        workload.results = []
        from repro.apps.tcp import TransferResult

        def result(ok):
            return TransferResult("download", 0.0, 1.0, ok)

        workload.results = [result(True), result(True), result(False),
                            result(True), result(False), result(True)]
        # Sessions: [2, 1, 1] -> mean 4/3.
        assert workload.transfers_per_session() == pytest.approx(4 / 3)


class TestVoip:
    def test_clean_stream_high_mos(self):
        sim = clean_sim()
        router = FlowRouter(sim)
        stream = VoipStream(sim, router)
        stream.start(5.0)
        stream.stop(35.0)
        sim.run(until=36.0)
        quality = stream.window_quality()
        assert quality
        assert stream.mean_mos() > 3.5
        sessions = stream.session_lengths()
        assert len(sessions) == 1  # one uninterrupted session

    def test_dead_stream_no_sessions(self):
        sim = clean_sim(vehicle_loss=1.0)
        router = FlowRouter(sim)
        stream = VoipStream(sim, router)
        stream.start(5.0)
        stream.stop(25.0)
        sim.run(until=26.0)
        assert stream.session_lengths() == []
        assert stream.mean_mos() == pytest.approx(1.0)

    def test_loss_degrades_mos(self):
        clean = clean_sim(seed=5)
        lossy = clean_sim(vehicle_loss=0.45, seed=5,
                          config=ViFiConfig(max_retx=0,
                                            relay_enabled=False))
        scores = []
        for sim in (clean, lossy):
            router = FlowRouter(sim)
            stream = VoipStream(sim, router)
            stream.start(5.0)
            stream.stop(25.0)
            sim.run(until=26.0)
            scores.append(stream.mean_mos())
        assert scores[0] > scores[1]

    def test_late_packets_count_as_lost(self):
        stream = VoipStream.__new__(VoipStream)
        stream.config = VoipConfig()
        stream._started_at = 0.0
        stream._seq = 150  # one 3 s window per direction
        stream.sent_times = {i: i * 0.02 for i in range(150)}
        # All packets delivered but 80 ms late: beyond the 52 ms budget.
        stream.up_deliveries = {i: i * 0.02 + 0.08 for i in range(150)}
        stream.down_deliveries = dict(stream.up_deliveries)
        (mos, loss, delay), = stream.window_quality()
        assert loss == pytest.approx(1.0)
        assert mos < 2.0


class TestCbrWorkload:
    def test_counts_and_ratio(self):
        sim = clean_sim()
        router = FlowRouter(sim)
        cbr = CbrWorkload(sim, router)
        cbr.start(5.0)
        cbr.stop(15.0)
        sim.run(until=17.0)
        assert cbr.packets_sent == pytest.approx(100, abs=2)
        assert cbr.delivery_rate() > 0.95
        ratios = cbr.window_reception_ratio(1.0)
        assert ratios.mean() > 0.9

    def test_deadline_filters_late_deliveries(self):
        sim = clean_sim(vehicle_loss=0.5, seed=11)
        router = FlowRouter(sim)
        cbr = CbrWorkload(sim, router)
        cbr.start(5.0)
        cbr.stop(15.0)
        sim.run(until=17.0)
        strict = cbr.window_reception_ratio(1.0, deadline_s=0.1)
        lax = cbr.window_reception_ratio(1.0, deadline_s=None)
        assert strict.sum() <= lax.sum()


class TestFlowRouter:
    def test_dispatch_by_flow(self):
        sim = clean_sim()
        router = FlowRouter(sim)
        got = {"a": [], "b": []}
        router.register(1, FlowRouter.VEHICLE,
                        lambda p, t: got["a"].append(p.seq))
        router.register(2, FlowRouter.VEHICLE,
                        lambda p, t: got["b"].append(p.seq))
        sim.run(until=5.0)
        sim.send_downstream("x", 100, flow_id=1, seq=7)
        sim.send_downstream("y", 100, flow_id=2, seq=9)
        sim.send_downstream("z", 100, flow_id=3, seq=11)  # unrouted
        sim.run(until=8.0)
        assert got == {"a": [7], "b": [9]}

    def test_duplicate_registration_rejected(self):
        sim = clean_sim()
        router = FlowRouter(sim)
        router.register(1, FlowRouter.VEHICLE, lambda p, t: None)
        with pytest.raises(ValueError):
            router.register(1, FlowRouter.VEHICLE, lambda p, t: None)

    def test_unregister(self):
        sim = clean_sim()
        router = FlowRouter(sim)
        seen = []
        router.register(1, FlowRouter.VEHICLE,
                        lambda p, t: seen.append(p.seq))
        router.unregister(1, FlowRouter.VEHICLE)
        sim.run(until=5.0)
        sim.send_downstream("x", 100, flow_id=1, seq=1)
        sim.run(until=7.0)
        assert seen == []
