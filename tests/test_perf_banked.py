"""Correctness tests for the banked/batched/parallel fast paths (PR 2).

Covers the guarantees the second round of perf work leans on:

* ``LinkBank`` fills member caches with values matching per-link scalar
  evaluation to float tolerance, over the same RNG streams;
* slot-aligned beacon batching preserves the nominal due chain (the
  estimator's rate denominators) and delays emissions by at most one
  slot, so per-second beacon counts are preserved up to boundary
  crossers;
* ``loss_eps`` separates state advance from the coin flip without
  changing the steered chain's mean;
* the medium's merged transmissions deliver the same frames with fewer
  heap events, and batched outcomes respect probability-0/1 links;
* ``run_trips`` merges process-pool results identically to a serial
  sweep (the parallel runner's determinism contract).
"""

import math

import pytest

from repro.core.node import BeaconSlotter
from repro.core.protocol import ViFiConfig, ViFiSimulation
from repro.experiments.common import (
    run_protocol_cbr,
    run_trips,
    vanlan_cbr_trip,
    vanlan_protocol,
)
from repro.net.channel import BernoulliLoss, SteeredGilbertElliott
from repro.net.medium import LinkTable, WirelessMedium
from repro.net.packet import DataPacket, Direction
from repro.net.propagation import LinkBank, LinkStateCache
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.testbeds.vanlan import VEHICLE_ID, VanLanTestbed


# ----------------------------------------------------------------------
# LinkBank banked-vs-scalar equivalence
# ----------------------------------------------------------------------

def _banked_and_scalar(seed, quantum_s=0.02):
    """Identically seeded banked and scalar link stacks.

    The bank uses ``sampling="first-query"`` — the convention these
    properties were written for, where bucket sample points coincide
    with the scalar caches' query times.  (The bucket-centre
    convention samples at bucket centres instead; its equivalence
    properties live in ``tests/test_perf_prefill.py``.)
    """
    a = VanLanTestbed(seed=seed)
    b = VanLanTestbed(seed=seed)
    motion_a, motion_b = a.vehicle_motion(), b.vehicle_motion()
    links_a = [a.link_model(0, bs, motion_a) for bs in a.deployment.bs_ids]
    banked = LinkBank(links_a, quantum_s=quantum_s,
                      sampling="first-query").wrap()
    scalar = [LinkStateCache(b.link_model(0, bs, motion_b),
                             quantum_s=quantum_s)
              for bs in b.deployment.bs_ids]
    return banked, scalar


class TestLinkBankEquivalence:
    def test_matches_scalar_at_identical_times(self):
        """Property: banked rssi/prob == scalar to float tolerance.

        Querying both stacks at identical (monotone, irregular) times
        makes the bucket sample points coincide, so any difference is
        pure arithmetic: the banked spatial row-sum versus the scalar
        field's vector sum.
        """
        banked, scalar = _banked_and_scalar(seed=3)
        t = 0.0
        step = 0.0
        for k in range(2500):
            step = (step + 0.0137) % 0.031
            t += step + 1e-4
            for cached, raw in zip(banked, scalar):
                assert cached.rssi(t) == pytest.approx(
                    raw.rssi(t), abs=1e-9)
                assert cached.reception_prob(t) == pytest.approx(
                    raw.reception_prob(t), abs=1e-12)

    @pytest.mark.slow
    def test_matches_scalar_over_full_trip(self):
        """The same property, densely over a whole trip duration."""
        banked, scalar = _banked_and_scalar(seed=9)
        duration = VanLanTestbed(seed=9).vehicle_motion().route.duration
        n = int(duration / 0.02)
        for k in range(n):
            t = k * 0.02 + 0.003
            for cached, raw in zip(banked, scalar):
                assert cached.reception_prob(t) == pytest.approx(
                    raw.reception_prob(t), abs=1e-12)

    def test_bank_requires_shared_profile(self):
        testbed = VanLanTestbed(seed=1)
        motion = testbed.vehicle_motion()
        links = [testbed.link_model(0, bs, motion)
                 for bs in testbed.deployment.bs_ids[:2]]
        links[1].profile = type(links[1].profile)()  # a different object
        with pytest.raises(ValueError):
            LinkBank(links)

    def test_quantum_zero_member_ignores_bank(self):
        """quantum=0 must stay bitwise-scalar even inside a bank."""
        testbed = VanLanTestbed(seed=2)
        motion = testbed.vehicle_motion()
        links = [testbed.link_model(0, bs, motion)
                 for bs in testbed.deployment.bs_ids]
        bank = LinkBank(links, quantum_s=0.0)
        assert all(cache.bank is None for cache in bank.wrap())


# ----------------------------------------------------------------------
# Slot-aligned beacon batching
# ----------------------------------------------------------------------

class _StubBeaconNode:
    """Minimal node for the slotter: records emissions, replays dues."""

    def __init__(self, sim, phase, interval, rng):
        self.sim = sim
        self.interval = interval
        self.rng = rng
        self.due_chain = [phase]
        self.emissions = []

    def _emit_beacon(self, due):
        self.emissions.append(self.sim.now)
        jitter = self.rng.uniform(-0.05, 0.05) * self.interval
        next_due = due + max(self.interval + jitter, 1e-4)
        self.due_chain.append(next_due)
        return next_due


class TestBeaconSlotter:
    SLOT = 0.02
    INTERVAL = 0.1
    HORIZON = 30.0

    def _run_slotted(self, n_nodes=8, seed=5):
        sim = Simulator()
        slotter = BeaconSlotter(sim, self.SLOT)
        rngs = RngRegistry(seed)
        nodes = [
            _StubBeaconNode(sim, 0.01 + 0.011 * i, self.INTERVAL,
                            rngs.stream("jitter", i))
            for i in range(n_nodes)
        ]
        for node in nodes:
            slotter.add(node, node.due_chain[0])
        sim.run(until=self.HORIZON)
        return nodes

    def _legacy_dues(self, n_nodes=8, seed=5):
        """The due chain per-node timers would produce (same draws)."""
        rngs = RngRegistry(seed)
        chains = []
        for i in range(n_nodes):
            rng = rngs.stream("jitter", i)
            due = 0.01 + 0.011 * i
            chain = [due]
            while due <= self.HORIZON:
                jitter = rng.uniform(-0.05, 0.05) * self.INTERVAL
                due = due + max(self.INTERVAL + jitter, 1e-4)
                chain.append(due)
            chains.append(chain)
        return chains

    def test_due_chain_matches_legacy_timers(self):
        """Nominal dues — the estimator's denominators — are unchanged."""
        nodes = self._run_slotted()
        legacy = self._legacy_dues()
        for node, chain in zip(nodes, legacy):
            n = min(len(node.due_chain), len(chain))
            assert node.due_chain[:n] == pytest.approx(chain[:n],
                                                       abs=0.0)

    def test_emissions_at_most_one_slot_late(self):
        nodes = self._run_slotted()
        for node in nodes:
            for due, emitted in zip(node.due_chain, node.emissions):
                assert due - 1e-9 <= emitted <= due + self.SLOT + 1e-9
                # Slot alignment: emissions land on slot boundaries.
                slots = emitted / self.SLOT
                assert abs(slots - round(slots)) < 1e-6

    def test_per_second_counts_preserved(self):
        """Per-slot beacon counts shift by at most the boundary crossers."""
        nodes = self._run_slotted()
        for node in nodes:
            emitted = [t for t in node.emissions if t < self.HORIZON]
            dues = [t for t in node.due_chain if t < self.HORIZON]
            assert len(emitted) in (len(dues), len(dues) - 1)
            for second in range(int(self.HORIZON)):
                due_count = sum(1 for t in dues
                                if second <= t < second + 1)
                emit_count = sum(1 for t in emitted
                                 if second <= t < second + 1)
                assert abs(due_count - emit_count) <= 1

    def test_later_registration_with_earlier_phase_not_delayed(self):
        """A node registered after the slotter armed still emits its
        first beacon within one slot of its due time (regression: the
        first-armed slot used to gate every later registrant)."""
        sim = Simulator()
        slotter = BeaconSlotter(sim, self.SLOT)
        rngs = RngRegistry(3)
        late_phase_first = _StubBeaconNode(sim, 0.09, self.INTERVAL,
                                           rngs.stream("a"))
        early_phase_second = _StubBeaconNode(sim, 0.005, self.INTERVAL,
                                             rngs.stream("b"))
        slotter.add(late_phase_first, 0.09)
        slotter.add(early_phase_second, 0.005)
        sim.run(until=2.0)
        assert early_phase_second.emissions[0] <= 0.005 + self.SLOT + 1e-9
        for node in (late_phase_first, early_phase_second):
            for due, emitted in zip(node.due_chain, node.emissions):
                assert due - 1e-9 <= emitted <= due + self.SLOT + 1e-9

    def test_batches_share_events(self):
        """One heap event serves every beacon due in a slot."""
        sim = Simulator()
        slotter = BeaconSlotter(sim, self.SLOT)
        rngs = RngRegistry(0)
        nodes = [
            _StubBeaconNode(sim, 0.001 * (i + 1), self.INTERVAL,
                            rngs.stream("j", i))
            for i in range(10)
        ]
        for node in nodes:
            slotter.add(node, node.due_chain[0])
        sim.run(until=1.0)
        emitted = sum(len(node.emissions) for node in nodes)
        # All ten first beacons were due inside one slot; every batch
        # of co-slotted beacons costs one event, so far fewer events
        # than beacons were processed.
        assert emitted >= 100
        assert sim.events_processed <= emitted / 2


class TestSlottedProtocolRun:
    def _beacon_counts(self, slot_s, duration_s=45.0):
        testbed = VanLanTestbed(seed=4)
        motion = testbed.vehicle_motion()
        table = testbed.build_link_table(0, motion)
        config = ViFiConfig(beacon_slot_s=slot_s)
        sim = ViFiSimulation(testbed.deployment.bs_ids, table,
                             config=config, seed=0,
                             vehicle_id=VEHICLE_ID)
        cbr = run_protocol_cbr(sim, duration_s)
        counts = {
            node_id: sim.medium.transmissions(kind="beacon",
                                              node_id=node_id)
            for node_id in sim.medium.node_ids
        }
        delivered = len(cbr.up_deliveries) + len(cbr.down_deliveries)
        return counts, delivered, sim.sim.events_processed

    def test_slotting_preserves_beacon_counts_and_traffic(self):
        slotted, delivered_s, events_s = self._beacon_counts(
            ViFiConfig.beacon_slot_s)
        legacy, delivered_l, events_l = self._beacon_counts(0.0)
        # The nominal due chains are identical, so per-node beacon
        # transmissions may differ only by emissions straddling the
        # run's end.
        for node_id, count in legacy.items():
            assert abs(count - slotted[node_id]) <= 1
        # Both runs carried real traffic.  (Events saved by batching
        # are partly offset by the contention the co-slotted senders
        # create; the default slot is chosen so the net is a saving on
        # the pinned workloads — asserted loosely here because short
        # runs are noisy in which effect dominates.)
        assert delivered_s > 50 and delivered_l > 50
        assert events_s < events_l * 1.05


# ----------------------------------------------------------------------
# loss_eps and batched outcomes
# ----------------------------------------------------------------------

class TestLossEps:
    def test_steered_static_mean_preserved(self):
        rngs = RngRegistry(7)
        for target in (0.0, 0.05, 0.4, 0.9, 1.0):
            process = SteeredGilbertElliott(target,
                                            rng=rngs.stream("s", target))
            eps_good, eps_bad = process._static_eps
            pi_b = process._chain.pi_bad
            mean = pi_b * eps_bad + (1 - pi_b) * eps_good
            assert mean == pytest.approx(target, abs=1e-12)
            assert process.loss_eps(0.0) in (eps_good, eps_bad)

    def test_loss_eps_tracks_link_state_cache(self):
        testbed = VanLanTestbed(seed=6)
        motion = testbed.vehicle_motion()
        cache = LinkStateCache(testbed.link_model(0, 1, motion),
                               quantum_s=0.02)
        process = SteeredGilbertElliott(cache.loss_prob,
                                        rng=RngRegistry(1).stream("c"))
        assert process._link_state is cache
        for k in range(200):
            t = k * 0.013
            eps = process.loss_eps(t)
            assert 0.0 <= eps <= 1.0
            # The split preserves the cache's current mean.
            eps_good, eps_bad = process._last_split
            pi_b = process._chain.pi_bad
            mean = pi_b * eps_bad + (1 - pi_b) * eps_good
            assert mean == pytest.approx(cache.loss_prob(t), abs=1e-12)

    def test_bernoulli_extremes_through_batched_medium(self):
        sim = Simulator()
        rngs = RngRegistry(11)
        table = LinkTable()
        table.set_link(0, 1, BernoulliLoss(0.0, rngs.stream("ok")))
        table.set_link(0, 2, BernoulliLoss(1.0, rngs.stream("bad")))
        medium = WirelessMedium(sim, table, rngs.stream("m"),
                                outcome_batch=64)

        class _Node:
            def __init__(self, node_id):
                self.node_id = node_id
                self.received = []

            def on_receive(self, frame, transmitter_id):
                self.received.append(frame.pkt_id)

        nodes = [_Node(i) for i in range(3)]
        for node in nodes:
            medium.attach(node)
        for pkt_id in range(20):
            medium.send(0, DataPacket(pkt_id=pkt_id, src=0, dst=1,
                                      direction=Direction.UPSTREAM,
                                      size_bytes=100))
        sim.run(until=5.0)
        assert nodes[1].received == list(range(20))
        assert nodes[2].received == []


class TestMergedTransmissions:
    def _one_frame_run(self, merge):
        sim = Simulator()
        rngs = RngRegistry(13)
        table = LinkTable()
        table.set_link(0, 1, BernoulliLoss(0.0, rngs.stream("l")))
        medium = WirelessMedium(sim, table, rngs.stream("m"),
                                merge_uncontended=merge)

        class _Node:
            def __init__(self, node_id):
                self.node_id = node_id
                self.received = []

            def on_receive(self, frame, transmitter_id):
                self.received.append((frame.pkt_id, sim.now))

        sender, receiver = _Node(0), _Node(1)
        medium.attach(sender)
        medium.attach(receiver)
        medium.send(0, DataPacket(pkt_id=0, src=0, dst=1,
                                  direction=Direction.UPSTREAM,
                                  size_bytes=400))
        sim.run(until=2.0)
        return receiver.received, medium.transmissions(), \
            sim.events_processed

    def test_merge_delivers_identically_with_fewer_events(self):
        merged_rx, merged_tx, merged_events = self._one_frame_run(True)
        classic_rx, classic_tx, classic_events = self._one_frame_run(False)
        assert merged_tx == classic_tx == 1
        assert merged_rx == classic_rx  # same frame, same instant
        assert merged_events < classic_events

    def test_queue_length_counts_in_flight_frame(self):
        sim = Simulator()
        rngs = RngRegistry(17)
        table = LinkTable()
        table.set_link(0, 1, BernoulliLoss(0.0, rngs.stream("l")))
        medium = WirelessMedium(sim, table, rngs.stream("m"),
                                merge_uncontended=True)

        class _Node:
            def __init__(self, node_id):
                self.node_id = node_id

            def on_receive(self, frame, transmitter_id):
                pass

        medium.attach(_Node(0))
        medium.attach(_Node(1))
        medium.send(0, DataPacket(pkt_id=0, src=0, dst=1,
                                  direction=Direction.UPSTREAM,
                                  size_bytes=400))
        # Claimed off the deque immediately, but still pending at the
        # interface until its resolve event fires.
        assert medium.queue_length(0) == 1
        sim.run(until=2.0)
        assert medium.queue_length(0) == 0


# ----------------------------------------------------------------------
# Parallel trip runner
# ----------------------------------------------------------------------

class TestRunTrips:
    def test_serial_matches_inline(self):
        tasks = [{"trip": t, "duration_s": 8.0} for t in range(2)]
        inline = [vanlan_cbr_trip(task) for task in tasks]
        serial = run_trips(vanlan_cbr_trip, tasks, workers=1)
        assert serial == inline

    @pytest.mark.slow
    def test_pool_matches_serial(self):
        """The determinism contract: worker count never changes results."""
        tasks = [{"trip": t, "duration_s": 12.0} for t in range(3)]
        serial = run_trips(vanlan_cbr_trip, tasks, workers=1)
        pooled = run_trips(vanlan_cbr_trip, tasks, workers=2)
        assert pooled == serial
        assert [r["trip"] for r in pooled] == [0, 1, 2]
        assert all(r["events"] > 1000 for r in pooled)

    def test_worker_results_merge_in_task_order(self):
        tasks = [3, 1, 2]
        assert run_trips(_square, tasks, workers=2) == [9, 1, 4]


def _square(x):
    return x * x
