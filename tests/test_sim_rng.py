"""Unit tests for named RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_same_stream_object():
    rngs = RngRegistry(1)
    assert rngs.stream("a", "b") is rngs.stream("a", "b")


def test_same_seed_reproduces_sequence():
    a = RngRegistry(42).stream("channel", 3)
    b = RngRegistry(42).stream("channel", 3)
    assert list(a.random(10)) == list(b.random(10))


def test_different_names_are_independent():
    rngs = RngRegistry(42)
    a = list(rngs.stream("x").random(5))
    b = list(rngs.stream("y").random(5))
    assert a != b


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x")
    b = RngRegistry(2).stream("x")
    assert list(a.random(5)) != list(b.random(5))


def test_fresh_returns_replayable_stream():
    rngs = RngRegistry(7)
    first = list(rngs.fresh("s").random(5))
    second = list(rngs.fresh("s").random(5))
    assert first == second


def test_spawn_scopes_namespace():
    root = RngRegistry(9)
    child = root.spawn("trial", 3)
    direct = RngRegistry(derive_seed(9, "trial/3")).stream("x")
    assert list(child.stream("x").random(5)) == list(direct.random(5))


def test_derive_seed_stable_and_distinct():
    assert derive_seed(5, "abc") == derive_seed(5, "abc")
    assert derive_seed(5, "abc") != derive_seed(5, "abd")
    assert derive_seed(5, "abc") != derive_seed(6, "abc")
