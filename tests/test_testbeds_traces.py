"""Unit tests for trace formats and the loss mapping."""

import numpy as np
import pytest

from repro.net.channel import BernoulliLoss, TraceDrivenLoss
from repro.sim.rng import RngRegistry
from repro.testbeds.lossmap import (
    build_link_table_from_log,
    interbs_loss_rates,
    loss_rate_series,
)
from repro.testbeds.traces import BeaconLog, ProbeTrace


def make_probe_trace(n_slots=40, n_bs=3):
    rng = np.random.default_rng(0)
    up = rng.random((n_slots, n_bs)) < 0.6
    down = rng.random((n_slots, n_bs)) < 0.5
    rssi = np.where(down, -80.0, np.nan)
    positions = np.zeros((n_slots, 2))
    return ProbeTrace(list(range(1, n_bs + 1)), 0.1, up, down, rssi,
                      positions)


class TestProbeTrace:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ProbeTrace([1], 0.1, np.zeros((5, 2), bool),
                       np.zeros((5, 2), bool), np.zeros((5, 2)),
                       np.zeros((5, 2)))

    def test_per_second_reception(self):
        up = np.zeros((20, 1), dtype=bool)
        up[:5, 0] = True
        trace = ProbeTrace([1], 0.1, up, up.copy(),
                           np.full((20, 1), np.nan), np.zeros((20, 2)))
        up_rr, down_rr = trace.per_second_reception()
        assert up_rr.shape == (2, 1)
        assert up_rr[0, 0] == pytest.approx(0.5)
        assert up_rr[1, 0] == 0.0

    def test_subset_preserves_columns(self):
        trace = make_probe_trace(n_bs=3)
        sub = trace.subset([3, 1])
        assert sub.bs_ids == [3, 1]
        assert np.array_equal(sub.up[:, 0], trace.up[:, 2])
        assert np.array_equal(sub.down[:, 1], trace.down[:, 0])

    def test_save_load_roundtrip(self, tmp_path):
        trace = make_probe_trace()
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = ProbeTrace.load(path)
        assert loaded.bs_ids == trace.bs_ids
        assert np.array_equal(loaded.up, trace.up)
        assert np.array_equal(loaded.down, trace.down)
        assert loaded.slot_dt == trace.slot_dt

    def test_per_second_rssi_nan_when_silent(self):
        trace = make_probe_trace()
        per_sec = trace.per_second_rssi()
        # Wherever at least one beacon decoded, RSSI is finite.
        down_rr, _ = trace.per_second_reception()[1], None
        assert per_sec.shape[0] == trace.n_slots // 10


class TestBeaconLog:
    def test_ratio_and_loss(self):
        log = BeaconLog([1, 2], [[10, 0], [5, 5]], expected=10)
        assert log.reception_ratio()[0, 0] == 1.0
        assert log.loss_ratio()[0, 1] == 1.0
        assert log.loss_ratio()[1, 1] == pytest.approx(0.5)

    def test_visible_counts(self):
        log = BeaconLog([1, 2, 3], [[10, 1, 0], [0, 0, 0]], expected=10)
        assert list(log.visible_counts()) == [2, 0]
        assert list(log.visible_counts(0.5)) == [1, 0]

    def test_covisibility(self):
        log = BeaconLog([1, 2, 3],
                        [[5, 5, 0], [0, 0, 5]], expected=10)
        covis = log.covisibility()
        assert covis[0, 1] and covis[1, 0]
        assert not covis[0, 2] and not covis[1, 2]
        assert covis[2, 2]

    def test_count_validation(self):
        with pytest.raises(ValueError):
            BeaconLog([1], [[11]], expected=10)
        with pytest.raises(ValueError):
            BeaconLog([1], [[-1]], expected=10)

    def test_save_load_roundtrip(self, tmp_path):
        log = BeaconLog([1, 2], [[10, 0], [5, 5]], expected=10)
        path = tmp_path / "log.npz"
        log.save(path)
        loaded = BeaconLog.load(path)
        assert loaded.bs_ids == log.bs_ids
        assert np.array_equal(loaded.heard, log.heard)
        assert loaded.expected == 10


class TestLossMap:
    def _log(self):
        return BeaconLog(
            [1, 2, 3],
            [[10, 5, 0], [8, 0, 0], [0, 4, 0]],
            expected=10,
        )

    def test_loss_rate_series(self):
        series = loss_rate_series(self._log(), 2)
        assert list(series) == pytest.approx([0.5, 1.0, 0.6])

    def test_interbs_rule(self):
        rng = RngRegistry(3).stream("x")
        rates = interbs_loss_rates(self._log(), rng)
        # BS 3 was never heard: unreachable from everyone.
        assert rates[(1, 3)] == 1.0
        assert rates[(2, 3)] == 1.0
        # BSes 1 and 2 are covisible in second 0: uniform loss < 1.
        assert rates[(1, 2)] < 1.0
        assert rates[(1, 2)] == rates[(2, 1)]

    def test_link_table_structure(self):
        rngs = RngRegistry(4)
        table = build_link_table_from_log(self._log(), rngs,
                                          vehicle_id=0)
        assert isinstance(table.get(0, 1), TraceDrivenLoss)
        assert isinstance(table.get(1, 0), TraceDrivenLoss)
        assert isinstance(table.get(1, 2), BernoulliLoss)
        # Symmetric rates, independent draws.
        assert table.get(0, 1) is not table.get(1, 0)
        assert table.get(0, 1).rates == table.get(1, 0).rates

    def test_bursty_mode(self):
        from repro.net.channel import SteeredGilbertElliott
        rngs = RngRegistry(4)
        table = build_link_table_from_log(self._log(), rngs,
                                          vehicle_id=0, bursty=True)
        assert isinstance(table.get(0, 1), SteeredGilbertElliott)
        # The steered process must follow the per-second series.
        assert table.get(0, 1).loss_rate(0.5) == pytest.approx(0.0)
        assert table.get(0, 1).loss_rate(1.5) == pytest.approx(0.2)
