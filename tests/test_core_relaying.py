"""Unit tests for relay-probability strategies (Section 4.4, 5.5.1)."""

import math

import pytest

from repro.core.relaying import (
    ExpectedDeliveryStrategy,
    IgnoreDestConnectivityStrategy,
    IgnoreOthersStrategy,
    RelayContext,
    ViFiRelayStrategy,
    contention_probability,
    make_strategy,
)


def lookup(table):
    def p(a, b):
        if a == b:
            return 1.0
        return table.get((a, b), 0.0)
    return p


def symmetric_context(k, p_hear, p_dst, p_src_dst, self_id=1):
    """K identical auxiliaries; src=100, dst=200."""
    table = {}
    for aux in range(1, k + 1):
        table[(100, aux)] = p_hear
        table[(aux, 200)] = p_dst
        table[(200, aux)] = p_dst
    table[(100, 200)] = p_src_dst
    return RelayContext(
        self_id=self_id,
        aux_ids=tuple(range(1, k + 1)),
        src=100,
        dst=200,
        p=lookup(table),
    )


class TestContention:
    def test_formula(self):
        p = lookup({(100, 1): 0.8, (100, 200): 0.6, (200, 1): 0.5})
        c = contention_probability(p, 100, 200, 1)
        assert c == pytest.approx(0.8 * (1 - 0.6 * 0.5))

    def test_zero_when_aux_cannot_hear(self):
        p = lookup({(100, 200): 0.6, (200, 1): 0.5})
        assert contention_probability(p, 100, 200, 1) == 0.0

    def test_full_when_no_acks_possible(self):
        p = lookup({(100, 1): 1.0, (100, 200): 0.0})
        assert contention_probability(p, 100, 200, 1) == 1.0


class TestViFiStrategy:
    def test_expected_relays_equal_one_symmetric(self):
        """Eq. 1: sum over auxiliaries of c_i * r_i == 1."""
        strategy = ViFiRelayStrategy()
        for k in (2, 3, 5, 8):
            ctx = symmetric_context(k, p_hear=0.9, p_dst=0.8,
                                    p_src_dst=0.3)
            c = contention_probability(ctx.p, ctx.src, ctx.dst, 1)
            r = strategy.relay_probability(ctx)
            if r < 1.0:  # unclipped regime
                assert k * c * r == pytest.approx(1.0, rel=1e-9)

    def test_prefers_better_connected_aux(self):
        """Eq. 2: r_i proportional to p(Bi, d)."""
        table = {
            (100, 1): 0.9, (1, 200): 0.9, (200, 1): 0.9,
            (100, 2): 0.9, (2, 200): 0.3, (200, 2): 0.3,
            (100, 200): 0.2,
        }
        base = dict(aux_ids=(1, 2), src=100, dst=200, p=lookup(table))
        strategy = ViFiRelayStrategy()
        r1 = strategy.relay_probability(RelayContext(self_id=1, **base))
        r2 = strategy.relay_probability(RelayContext(self_id=2, **base))
        assert r1 > r2
        if r1 < 1.0 and r2 < 1.0:
            assert r1 / r2 == pytest.approx(0.9 / 0.3)

    def test_lone_uninformed_aux_relays(self):
        ctx = RelayContext(self_id=1, aux_ids=(1,), src=100, dst=200,
                           p=lookup({}))
        assert ViFiRelayStrategy().relay_probability(ctx) == 1.0

    def test_probability_clipped_to_one(self):
        ctx = symmetric_context(1, p_hear=0.1, p_dst=0.9, p_src_dst=0.9)
        r = ViFiRelayStrategy().relay_probability(ctx)
        assert r <= 1.0


class TestNotG1:
    def test_relays_at_own_delivery_ratio(self):
        ctx = symmetric_context(4, p_hear=0.9, p_dst=0.65, p_src_dst=0.3)
        assert IgnoreOthersStrategy().relay_probability(ctx) == \
            pytest.approx(0.65)

    def test_ignores_peer_count(self):
        a = symmetric_context(2, 0.9, 0.6, 0.3)
        b = symmetric_context(9, 0.9, 0.6, 0.3)
        strategy = IgnoreOthersStrategy()
        assert strategy.relay_probability(a) == \
            strategy.relay_probability(b)


class TestNotG2:
    def test_uniform_across_auxes(self):
        table = {
            (100, 1): 0.9, (1, 200): 0.9, (200, 1): 0.9,
            (100, 2): 0.9, (2, 200): 0.1, (200, 2): 0.1,
            (100, 200): 0.5,
        }
        base = dict(aux_ids=(1, 2), src=100, dst=200, p=lookup(table))
        strategy = IgnoreDestConnectivityStrategy()
        r1 = strategy.relay_probability(RelayContext(self_id=1, **base))
        r2 = strategy.relay_probability(RelayContext(self_id=2, **base))
        assert r1 == pytest.approx(r2)

    def test_inverse_of_total_contention(self):
        ctx = symmetric_context(4, p_hear=0.8, p_dst=0.7, p_src_dst=0.5)
        c = contention_probability(ctx.p, ctx.src, ctx.dst, 1)
        expected = min(1.0, 1.0 / (4 * c))
        assert IgnoreDestConnectivityStrategy().relay_probability(ctx) == \
            pytest.approx(expected)


class TestNotG3:
    def test_best_aux_relays_fully_when_needed(self):
        # One strong aux cannot alone guarantee a delivery; it must
        # relay with probability 1.
        ctx = symmetric_context(1, p_hear=0.9, p_dst=0.6, p_src_dst=0.2)
        assert ExpectedDeliveryStrategy().relay_probability(ctx) == 1.0

    def test_weaker_aux_gets_fractional_remainder(self):
        table = {
            (100, 1): 1.0, (1, 200): 0.8, (200, 1): 0.8,
            (100, 2): 1.0, (2, 200): 0.5, (200, 2): 0.5,
            (100, 200): 0.0,  # all acks impossible: c_i = 1
        }
        base = dict(aux_ids=(1, 2), src=100, dst=200, p=lookup(table))
        strategy = ExpectedDeliveryStrategy()
        r1 = strategy.relay_probability(RelayContext(self_id=1, **base))
        r2 = strategy.relay_probability(RelayContext(self_id=2, **base))
        # Best aux saturates (0.8 < 1 expected delivery), second covers
        # the remainder: 0.8 + r2 * 0.5 = 1.
        assert r1 == 1.0
        assert r2 == pytest.approx((1 - 0.8) / 0.5)

    def test_expected_deliveries_one_when_feasible(self):
        table = {
            (100, 1): 1.0, (1, 200): 0.7, (200, 1): 0.7,
            (100, 2): 1.0, (2, 200): 0.6, (200, 2): 0.6,
            (100, 3): 1.0, (3, 200): 0.5, (200, 3): 0.5,
            (100, 200): 0.0,
        }
        base = dict(aux_ids=(1, 2, 3), src=100, dst=200, p=lookup(table))
        strategy = ExpectedDeliveryStrategy()
        total = 0.0
        for aux, p_dst in ((1, 0.7), (2, 0.6), (3, 0.5)):
            r = strategy.relay_probability(
                RelayContext(self_id=aux, **base))
            total += r * p_dst * 1.0  # c_i = 1 here
        assert total == pytest.approx(1.0)

    def test_overprovisioned_aux_does_not_relay(self):
        # Ten auxes with perfect links: the first saturates the
        # constraint, so a low-ranked aux must not relay.
        table = {(100, 200): 0.0}
        for aux in range(1, 11):
            table[(100, aux)] = 1.0
            table[(aux, 200)] = 1.0
            table[(200, aux)] = 1.0
        ctx = RelayContext(self_id=10, aux_ids=tuple(range(1, 11)),
                           src=100, dst=200, p=lookup(table))
        assert ExpectedDeliveryStrategy().relay_probability(ctx) == \
            pytest.approx(0.0)


class TestFactory:
    def test_known_names(self):
        for name, cls in (
            ("vifi", ViFiRelayStrategy),
            ("not-g1", IgnoreOthersStrategy),
            ("not-g2", IgnoreDestConnectivityStrategy),
            ("not-g3", ExpectedDeliveryStrategy),
        ):
            assert isinstance(make_strategy(name), cls)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("definitely-not-a-strategy")

    def test_probabilities_always_valid(self):
        for name in ("vifi", "not-g1", "not-g2", "not-g3"):
            strategy = make_strategy(name)
            for k in (1, 3, 6):
                for p_sd in (0.0, 0.4, 0.95):
                    ctx = symmetric_context(k, 0.7, 0.55, p_sd)
                    r = strategy.relay_probability(ctx)
                    assert 0.0 <= r <= 1.0
                    assert math.isfinite(r)
