"""run_trips + result store: warm sweeps, self-healing, invariant keys.

Workers live at module level (pool pickling).  These are the
integration properties the store satellites pin down: a warm re-run is
a pure cache read with identical results at any worker count, a
corrupted store heals to results bitwise-equal to a cold run, sweep
identity that cannot be tokenized degrades to uncached execution, and
the PR 7 checkpoint path shares the verified record format (truncated
or legacy checkpoints mean a cold start with a warning, never a
traceback).
"""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.experiments.common import (
    build_shared_banks,
    install_shared_banks,
    memoized_beacon_log,
    run_trips,
    vanlan_cbr_trip,
)
from repro.store import ResultStore, read_record, result_key

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _square(task):
    return task * task


def _affine(task):
    return {"value": task["x"] * task["scale"] + task["offset"]}


def _offset_init(offset, *_ignored):
    """A result-affecting initializer (NOT store-neutral)."""
    global _OFFSET
    _OFFSET = offset


_OFFSET = 0


def _offset_task(task):
    return task + _OFFSET


def _tiny_tasks(n=3, duration_s=6.0):
    return [
        {"trip": trip, "seed": trip, "duration_s": float(duration_s),
         "testbed_seed": 0}
        for trip in range(n)
    ]


class TestWarmSweeps:
    def test_cold_then_warm_identical_serial(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_trips(_square, [1, 2, 3], workers=1, store=store)
        warm = run_trips(_square, [1, 2, 3], workers=1, store=store)
        assert list(cold) == list(warm) == [1, 4, 9]
        assert cold.store["misses"] == 3 and cold.store["writes"] == 3
        assert warm.store["hits"] == 3 and warm.store["misses"] == 0
        assert warm.store["writes"] == 0

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_worker_count_never_enters_the_key(self, tmp_path):
        """A pooled sweep hits the entries a serial sweep wrote."""
        store = ResultStore(tmp_path)
        tasks = _tiny_tasks(n=2)
        cold = run_trips(vanlan_cbr_trip, tasks, workers=1, store=store)
        pooled = run_trips(vanlan_cbr_trip, tasks, workers=2,
                           store=store)
        assert list(pooled) == list(cold)
        assert pooled.store["hits"] == len(tasks)
        assert pooled.store["misses"] == 0
        # And the reverse: entries written by a pooled sweep serve a
        # serial one.
        store2 = ResultStore(tmp_path / "second")
        pooled_cold = run_trips(vanlan_cbr_trip, tasks, workers=2,
                                store=store2)
        warm_serial = run_trips(vanlan_cbr_trip, tasks, workers=1,
                                store=store2)
        assert list(warm_serial) == list(pooled_cold) == list(cold)
        assert warm_serial.store["hits"] == len(tasks)

    def test_store_free_sweep_unchanged(self, tmp_path):
        """No store (the historical default) is bitwise-identical."""
        plain = run_trips(vanlan_cbr_trip, _tiny_tasks(n=1), workers=1)
        stored = run_trips(vanlan_cbr_trip, _tiny_tasks(n=1), workers=1,
                           store=ResultStore(tmp_path))
        assert list(plain) == list(stored)
        assert plain.store["hits"] == plain.store["misses"] == 0

    def test_task_and_seed_changes_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        run_trips(_affine, [{"x": 1, "scale": 2, "offset": 0}],
                  workers=1, store=store)
        changed = run_trips(_affine, [{"x": 1, "scale": 3, "offset": 0}],
                            workers=1, store=store)
        assert changed.store["misses"] == 1
        assert changed[0] == {"value": 3}

    def test_initializer_state_enters_the_key(self, tmp_path):
        """A result-affecting initializer must change the digest."""
        store = ResultStore(tmp_path)
        plus1 = run_trips(_offset_task, [10], workers=1, store=store,
                          initializer=_offset_init, initargs=(1,))
        plus2 = run_trips(_offset_task, [10], workers=1, store=store,
                          initializer=_offset_init, initargs=(2,))
        assert list(plus1) == [11] and list(plus2) == [12]
        assert plus2.store["hits"] == 0  # different initargs, new entry

    def test_store_neutral_initializer_shares_entries(self, tmp_path):
        """Shared banks are result-neutral: same key with or without."""
        store = ResultStore(tmp_path)
        tasks = _tiny_tasks(n=2)
        bare = run_trips(vanlan_cbr_trip, tasks, workers=1, store=store)
        banks = build_shared_banks(0, range(len(tasks)))
        try:
            banked = run_trips(vanlan_cbr_trip, tasks, workers=1,
                               store=store,
                               initializer=install_shared_banks,
                               initargs=(banks,))
        finally:
            install_shared_banks({})
        assert banked.store["hits"] == len(tasks)
        assert list(banked) == list(bare)


class TestSelfHealing:
    def test_corrupt_all_entries_heals_to_cold_results(self, tmp_path):
        store = ResultStore(tmp_path)
        tasks = _tiny_tasks(n=2)
        cold = run_trips(vanlan_cbr_trip, tasks, workers=1, store=store)
        for _key, path in list(store.iter_entries()):
            data = bytearray(open(path, "rb").read())
            data[-5] ^= 0xFF
            open(path, "wb").write(bytes(data))
        healed = run_trips(vanlan_cbr_trip, tasks, workers=1,
                           store=store)
        assert list(healed) == list(cold)
        assert healed.store["verify_failures"] == len(tasks)
        assert healed.store["quarantined"] == len(tasks)
        assert healed.store["writes"] == len(tasks)
        assert store.quarantine_count() == len(tasks)
        again = run_trips(vanlan_cbr_trip, tasks, workers=1, store=store)
        assert again.store["hits"] == len(tasks)
        assert list(again) == list(cold)

    def test_unusable_store_degrades_sweep_survives(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("file, not dir")
        store = ResultStore(blocker / "store")
        sweep = run_trips(_square, [2, 3], workers=1, store=store)
        assert list(sweep) == [4, 9]
        assert sweep.store["degraded"]
        assert sweep.store["hits"] == 0

    def test_uncacheable_sweep_identity_runs_uncached(self, tmp_path,
                                                     caplog):
        class Opaque:
            pass

        store = ResultStore(tmp_path)
        with caplog.at_level("WARNING", logger="repro.experiments"):
            sweep = run_trips(_offset_task, [5], workers=1, store=store,
                              initializer=_offset_init,
                              initargs=(1, Opaque()))
        assert list(sweep) == [6]
        assert sweep.partial is False
        assert sweep.store["hits"] == sweep.store["misses"] == 0
        assert store.entry_count() == 0
        assert any("not cacheable" in r.message for r in caplog.records)


class TestCheckpointDurability:
    def test_checkpoint_uses_verified_record_format(self, tmp_path):
        """The sweep checkpoint is a store record: magic + digest."""
        ckpt = tmp_path / "sweep.ckpt"
        result = run_trips(_square, [1, 2], workers=1,
                           checkpoint=str(ckpt), retries=0)
        assert list(result) == [1, 4]
        assert not ckpt.exists()  # complete sweeps remove it

    def test_truncated_checkpoint_cold_start_no_traceback(self, tmp_path,
                                                          caplog):
        ckpt = tmp_path / "sweep.ckpt"
        # Write a valid record, then truncate it mid-payload.
        from repro.store import write_record
        write_record(ckpt, {"fingerprint": "x", "results": {0: 1}},
                     key="run-trips-checkpoint")
        ckpt.write_bytes(ckpt.read_bytes()[:-7])
        with caplog.at_level("WARNING"):
            result = run_trips(_square, [3, 4], workers=1,
                               checkpoint=str(ckpt))
        assert list(result) == [9, 16]
        assert result.resumed == 0

    def test_legacy_pickle_checkpoint_cold_start(self, tmp_path):
        """A PR 7 plain-pickle checkpoint reads as corrupt, not fatal."""
        ckpt = tmp_path / "sweep.ckpt"
        with open(ckpt, "wb") as fh:
            pickle.dump({"fingerprint": "old", "results": {0: 99}}, fh)
        result = run_trips(_square, [5], workers=1, checkpoint=str(ckpt))
        assert list(result) == [25]
        assert result.resumed == 0

    def test_garbage_checkpoint_cold_start(self, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        ckpt.write_bytes(b"\x00\xffgarbage" * 10)
        result = run_trips(_square, [6], workers=1, checkpoint=str(ckpt))
        assert list(result) == [36]
        assert result.resumed == 0


class TestMemoizedBuilders:
    def test_memoized_beacon_log_equals_fresh(self, tmp_path):
        from repro.testbeds.dieselnet import DieselNetTestbed

        store = ResultStore(tmp_path)
        testbed = DieselNetTestbed(channel=1, seed=4)
        fresh = DieselNetTestbed(channel=1, seed=4) \
            .generate_beacon_log(0)
        cold = memoized_beacon_log(testbed, 0, store=store)
        warm = memoized_beacon_log(DieselNetTestbed(channel=1, seed=4),
                                   0, store=store)
        assert np.array_equal(cold.heard, fresh.heard)
        assert np.array_equal(warm.heard, fresh.heard)
        assert warm.bs_ids == fresh.bs_ids
        assert store.stats.hits == 1 and store.stats.misses == 1
        # Identity hygiene: another day / channel / seed misses.
        memoized_beacon_log(testbed, 1, store=store)
        memoized_beacon_log(DieselNetTestbed(channel=6, seed=4), 0,
                            store=store)
        assert store.stats.misses == 3

    def test_memoized_beacon_log_without_store_is_fresh(self):
        from repro.testbeds.dieselnet import DieselNetTestbed

        testbed = DieselNetTestbed(channel=1, seed=4)
        log = memoized_beacon_log(testbed, 0, store=False)
        fresh = DieselNetTestbed(channel=1, seed=4) \
            .generate_beacon_log(0)
        assert np.array_equal(log.heard, fresh.heard)

    def test_corrupt_memoized_artifacts_regenerate(self, tmp_path):
        """Bank/trace entries share the quarantine-and-recompute path."""
        from repro.testbeds.dieselnet import DieselNetTestbed

        store = ResultStore(tmp_path)
        testbed = DieselNetTestbed(channel=1, seed=4)
        fresh = memoized_beacon_log(testbed, 0, store=store)
        build_shared_banks(0, [0], store=store)
        assert store.entry_count() == 2
        for _key, path in list(store.iter_entries()):
            data = bytearray(open(path, "rb").read())
            data[len(data) // 2] ^= 0xAA
            open(path, "wb").write(bytes(data))
        healed_log = memoized_beacon_log(
            DieselNetTestbed(channel=1, seed=4), 0, store=store)
        healed_banks = build_shared_banks(0, [0], store=store)
        assert np.array_equal(healed_log.heard, fresh.heard)
        assert store.stats.quarantined == 2
        assert store.quarantine_count() == 2
        # And the regenerated bank still drives a correct sweep.
        try:
            install_shared_banks(healed_banks)
            sweep = run_trips(vanlan_cbr_trip, _tiny_tasks(n=1),
                              workers=1)
        finally:
            install_shared_banks({})
        plain = run_trips(vanlan_cbr_trip, _tiny_tasks(n=1), workers=1)

        def sans_flag(results):
            return [{k: v for k, v in r.items() if k != "bank_shared"}
                    for r in results]

        assert sans_flag(sweep) == sans_flag(plain)

    def test_shared_banks_memoized_and_equivalent(self, tmp_path):
        store = ResultStore(tmp_path)
        cold_banks = build_shared_banks(0, [0], store=store)
        warm_banks = build_shared_banks(0, [0], store=store)
        assert store.stats.misses == 1 and store.stats.hits == 1
        # The loaded bank drives a sweep to the same results as the
        # freshly built one.
        task = _tiny_tasks(n=1)
        try:
            install_shared_banks(cold_banks)
            with_cold = run_trips(vanlan_cbr_trip, task, workers=1)
            install_shared_banks(warm_banks)
            with_warm = run_trips(vanlan_cbr_trip, task, workers=1)
        finally:
            install_shared_banks({})
        assert list(with_cold) == list(with_warm)
