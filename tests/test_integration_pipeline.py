"""Cross-module integration tests: full pipelines at reduced scale.

These stitch the layers together the way the benchmarks do — testbed ->
traces -> policies, and testbed -> link table -> protocol -> apps — and
check the paper's qualitative relationships hold end to end.
"""

import numpy as np
import pytest

from repro.apps.voip import VoipStream
from repro.apps.workload import FlowRouter
from repro.core.protocol import ViFiConfig
from repro.experiments.common import (
    dieselnet_protocol,
    run_protocol_cbr,
    vanlan_protocol,
)
from repro.handoff.evaluator import evaluate_policy
from repro.handoff.policies import AllBsesPolicy, BrrPolicy, StickyPolicy
from repro.sim.rng import RngRegistry
from repro.testbeds.dieselnet import DieselNetTestbed
from repro.testbeds.vanlan import VanLanTestbed


@pytest.fixture(scope="module")
def vanlan():
    return VanLanTestbed(seed=31)


@pytest.fixture(scope="module")
def trace(vanlan):
    return vanlan.generate_probe_trace(0)


class TestTraceDrivenStudy:
    def test_allbses_dominates_every_hard_policy(self, trace):
        all_bs = evaluate_policy(trace, AllBsesPolicy())
        for policy in (BrrPolicy(), StickyPolicy()):
            hard = evaluate_policy(trace, policy)
            assert all_bs.packets_delivered >= hard.packets_delivered

    def test_allbses_is_union_upper_bound(self, trace):
        """AllBSes delivery equals the union over BS columns."""
        outcome = evaluate_policy(trace, AllBsesPolicy())
        n = outcome.n_slots
        assert np.array_equal(outcome.up_delivered,
                              trace.up[:n].any(axis=1))
        assert np.array_equal(outcome.down_delivered,
                              trace.down[:n].any(axis=1))

    def test_hard_policy_bounded_by_allbses_everywhere(self, trace):
        brr = evaluate_policy(trace, BrrPolicy())
        oracle = evaluate_policy(trace, AllBsesPolicy())
        assert not (brr.up_delivered & ~oracle.up_delivered).any()
        assert not (brr.down_delivered & ~oracle.down_delivered).any()


class TestProtocolOverTestbed:
    def test_vifi_delivery_beats_brr_on_same_trip(self, vanlan):
        rates = {}
        base = ViFiConfig()
        for name, config in (("ViFi", base), ("BRR", base.brr_variant())):
            sim, duration = vanlan_protocol(vanlan, trip=0, config=config,
                                            seed=13)
            cbr = run_protocol_cbr(sim, min(duration, 120.0))
            rates[name] = cbr.delivery_rate()
        assert rates["ViFi"] > rates["BRR"]

    def test_protocol_statistics_consistent(self, vanlan):
        sim, duration = vanlan_protocol(vanlan, trip=0, seed=13)
        run_protocol_cbr(sim, min(duration, 90.0))
        stats = sim.stats
        # Every relayed delivery implies a relay decision happened.
        relays = sum(1 for d in stats.relay_decisions if d[3])
        relayed_deliveries = sum(
            p.relay_delivered for p in stats.packet_records.values()
        )
        assert relayed_deliveries <= relays
        # Delivered packets have a first-receive timestamp.
        for record in stats.packet_records.values():
            if record.delivered:
                assert record.first_dst_receive is not None

    def test_medium_accounting_matches_stats(self, vanlan):
        from repro.net.packet import Direction
        sim, duration = vanlan_protocol(vanlan, trip=0, seed=13)
        run_protocol_cbr(sim, min(duration, 90.0))
        up_tx_medium = sim.wireless_data_tx(Direction.UPSTREAM)
        up_tx_stats = sum(
            1 for t in sim.stats.tx_records.values()
            if t.direction == Direction.UPSTREAM
        )
        # The medium sees every vehicle source transmission (no relays
        # originate at the vehicle).
        assert up_tx_medium == up_tx_stats


class TestDieselNetPipeline:
    def test_trace_driven_voip_runs_both_modes(self):
        testbed = DieselNetTestbed(channel=1, seed=31)
        log = testbed.generate_beacon_log(0)
        for bursty in (False, True):
            rngs = RngRegistry(3).spawn("mode", bursty)
            sim, duration = dieselnet_protocol(log, rngs, seed=5,
                                               bursty=bursty)
            router = FlowRouter(sim)
            stream = VoipStream(sim, router)
            stream.start(3.0)
            stream.stop(60.0)
            sim.run(until=63.0)
            assert stream.window_quality()

    def test_unreachable_interbs_pairs_respected(self):
        """Pairs never co-visible must never exchange frames."""
        testbed = DieselNetTestbed(channel=1, seed=31)
        log = testbed.generate_beacon_log(0)
        covis = log.covisibility()
        rngs = RngRegistry(3).spawn("covis")
        from repro.testbeds.lossmap import build_link_table_from_log
        table = build_link_table_from_log(log, rngs)
        for i, a in enumerate(log.bs_ids):
            for j, b in enumerate(log.bs_ids):
                if i != j and not covis[i, j]:
                    assert table.loss_rate(a, b, 0.0) == 1.0
