"""Smoke tests for the experiment orchestration package.

Small-scale versions of each experiment entry point: these guard the
wiring (the benchmarks exercise the real scales and the shape
assertions).
"""

import math

import pytest

from repro.core.protocol import ViFiConfig
from repro.experiments.common import (
    dieselnet_protocol,
    run_protocol_cbr,
    vanlan_protocol,
)
from repro.experiments.coordination import relay_count_spread
from repro.experiments.study import (
    diversity_cdfs,
    policy_factories,
    two_bs_experiment,
)
from repro.sim.rng import RngRegistry
from repro.testbeds.dieselnet import DieselNetTestbed
from repro.testbeds.vanlan import VanLanTestbed


@pytest.fixture(scope="module")
def vanlan():
    return VanLanTestbed(seed=77)


@pytest.fixture(scope="module")
def dieselnet_log():
    return DieselNetTestbed(channel=1, seed=77).generate_beacon_log(0)


class TestCommon:
    def test_vanlan_protocol_runs(self, vanlan):
        sim, duration = vanlan_protocol(vanlan, trip=0, seed=1)
        assert duration > 60
        cbr = run_protocol_cbr(sim, 40.0)
        assert cbr.packets_sent > 300
        assert 0.0 < cbr.delivery_rate() <= 1.0

    def test_dieselnet_protocol_runs(self, dieselnet_log):
        rngs = RngRegistry(5).spawn("t")
        sim, duration = dieselnet_protocol(dieselnet_log, rngs, seed=1)
        assert duration == pytest.approx(dieselnet_log.n_secs)
        cbr = run_protocol_cbr(sim, 30.0)
        assert cbr.delivery_rate() > 0.2

    def test_protocol_runs_reproducible(self, vanlan):
        rates = []
        for _ in range(2):
            sim, _ = vanlan_protocol(vanlan, trip=0, seed=1)
            cbr = run_protocol_cbr(sim, 30.0)
            rates.append(cbr.delivery_rate())
        assert rates[0] == rates[1]

    def test_brr_variant_runs(self, vanlan):
        config = ViFiConfig().brr_variant()
        sim, _ = vanlan_protocol(vanlan, trip=0, config=config, seed=1)
        cbr = run_protocol_cbr(sim, 30.0)
        assert cbr.delivery_rate() > 0.0


class TestStudyPieces:
    def test_policy_factories_complete(self):
        factories = policy_factories()
        assert set(factories) == {
            "RSSI", "BRR", "Sticky", "History", "BestBS", "AllBSes",
        }
        for name, factory in factories.items():
            policy = factory(None)
            assert policy.name == name

    def test_diversity_cdfs(self, dieselnet_log):
        xs, ys, hist = diversity_cdfs([dieselnet_log])
        assert hist.sum() == dieselnet_log.n_secs
        assert ys[-1] == pytest.approx(1.0)

    def test_two_bs_experiment_keys(self, vanlan):
        cond = two_bs_experiment(vanlan, bs_a=5, bs_b=6, trip=0,
                                 duration_s=60.0)
        assert set(cond) == {
            "P(A)", "P(A+1|!A)", "P(B+1|!A)",
            "P(B)", "P(B+1|!B)", "P(A+1|!B)",
        }
        for value in cond.values():
            assert math.isnan(value) or 0.0 <= value <= 1.0


class TestRelaySpread:
    def test_mean_relays_near_one(self):
        mean, var, hist = relay_count_spread(
            5, p_hear_src=0.7, p_to_dst=0.6, p_src_dst=0.5,
            n_packets=3000, seed=1,
        )
        assert mean == pytest.approx(1.0, abs=0.15)
        assert var > 0
        assert hist.sum() == 3000

    def test_asymmetric_inputs_accepted(self):
        mean, _, _ = relay_count_spread(
            3, p_hear_src=[0.9, 0.5, 0.2], p_to_dst=[0.9, 0.5, 0.2],
            p_src_dst=0.4, n_packets=1000, seed=2,
        )
        assert 0.0 <= mean <= 3.0

    def test_strategy_selectable(self):
        mean_g3, _, _ = relay_count_spread(
            6, p_hear_src=0.8, p_to_dst=0.3, p_src_dst=0.3,
            n_packets=2000, seed=3, strategy="not-g3",
        )
        mean_vifi, _, _ = relay_count_spread(
            6, p_hear_src=0.8, p_to_dst=0.3, p_src_dst=0.3,
            n_packets=2000, seed=3, strategy="vifi",
        )
        # NotG3 targets one expected *delivery* over weak links, so it
        # must relay more than ViFi's one expected *relay*.
        assert mean_g3 > mean_vifi
