"""The resilient sweep runner: crashes, hangs, retry, resume, spawn.

Workers live at module level (pool pickling), and first-attempt-only
failures are coordinated across processes through marker files in a
directory handed to each worker inside its task tuple.
"""

import multiprocessing
import os
import pickle
import time

import pytest

from repro.experiments.common import (
    SweepResult,
    install_shared_banks,
    run_trips,
    shared_bank,
    shared_bank_spec,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _square(task):
    return task * task


def _marker(markdir, name):
    return os.path.join(markdir, name)


def _flaky_raise(task):
    """Raises on the first attempt at task value 2, then succeeds."""
    value, markdir = task
    if value == 2:
        marker = _marker(markdir, "raised")
        if not os.path.exists(marker):
            open(marker, "w").close()
            raise RuntimeError("injected first-attempt failure")
    return value * value


def _crash_once(task):
    """Kills its worker process on the first attempt at value 3."""
    value, markdir = task
    if value == 3:
        marker = _marker(markdir, "crashed")
        if not os.path.exists(marker):
            open(marker, "w").close()
            os._exit(23)
    return value * value


def _hang_once(task):
    """Hangs (far beyond any test timeout) on the first attempt."""
    value, markdir = task
    if value == 1:
        marker = _marker(markdir, "hung")
        if not os.path.exists(marker):
            open(marker, "w").close()
            time.sleep(600.0)
    return value * value


def _always_fail(task):
    raise ValueError("permanent")


def _interrupt_on(task):
    value, trigger = task
    if value == trigger:
        raise KeyboardInterrupt
    return value * value


def _bank_probe(task):
    """Reports whether the shared-bank registry served this task."""
    testbed_seed, trip = task
    return shared_bank(testbed_seed, trip) is not None


class TestBaseline:
    def test_matches_serial_for_any_worker_count(self):
        tasks = list(range(7))
        serial = run_trips(_square, tasks, workers=1)
        assert list(serial) == [t * t for t in tasks]
        for k in (2, 4):
            pooled = run_trips(_square, tasks, workers=k)
            assert list(pooled) == list(serial)
            assert isinstance(pooled, SweepResult)
            assert not pooled.partial and pooled.failures == ()

    def test_empty_task_list(self):
        result = run_trips(_square, [], workers=4)
        assert list(result) == [] and not result.partial


class TestRetry:
    def test_exception_retried_to_success(self, tmp_path):
        tasks = [(v, str(tmp_path)) for v in (1, 2, 3)]
        result = run_trips(_flaky_raise, tasks, workers=2, retries=1,
                           retry_backoff_s=0.05)
        assert list(result) == [1, 4, 9]
        assert result.retries == 1 and not result.partial

    def test_exception_retried_serial_path(self, tmp_path):
        tasks = [(v, str(tmp_path)) for v in (1, 2, 3)]
        result = run_trips(_flaky_raise, tasks, workers=1, retries=1,
                           retry_backoff_s=0.01)
        assert list(result) == [1, 4, 9]
        assert result.retries == 1 and not result.partial

    def test_retry_budget_exhausted_marks_partial(self):
        result = run_trips(_always_fail, [1, 2], workers=2, retries=1,
                           retry_backoff_s=0.01)
        assert list(result) == [None, None]
        assert result.partial
        assert {i for i, _ in result.failures} == {0, 1}

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method only")
    def test_worker_crash_recovered_by_retry(self, tmp_path):
        """A worker that dies mid-task is detected via the task
        deadline; the resubmitted task completes and the merged result
        equals the serial no-fault run."""
        tasks = [(v, str(tmp_path)) for v in (1, 2, 3, 4)]
        result = run_trips(_crash_once, tasks, workers=2, retries=2,
                           task_timeout_s=3.0, retry_backoff_s=0.05)
        assert list(result) == [1, 4, 9, 16]
        assert not result.partial and result.retries >= 1

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method only")
    def test_hung_task_recovered_by_timeout(self, tmp_path):
        """A hung worker wedges its slot; the sweep must still finish
        via resubmission, well before the hang would release."""
        tasks = [(v, str(tmp_path)) for v in (1, 2, 3)]
        t0 = time.monotonic()
        result = run_trips(_hang_once, tasks, workers=3, retries=1,
                           task_timeout_s=1.0, retry_backoff_s=0.05)
        wall = time.monotonic() - t0
        assert list(result) == [1, 4, 9]
        assert not result.partial and result.retries >= 1
        assert wall < 60.0  # nowhere near the 600 s hang


class TestKeyboardInterrupt:
    def test_serial_interrupt_returns_partial_prefix(self):
        result = run_trips(_interrupt_on,
                           [(1, 3), (2, 3), (3, 3), (4, 3)], workers=1)
        assert isinstance(result, SweepResult)
        assert result.partial
        assert list(result) == [1, 4, None, None]

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method only")
    def test_pool_interrupt_terminates_and_returns_partial(self,
                                                           tmp_path):
        """KeyboardInterrupt in a pool worker escapes the pool's
        exception handling and kills the worker; the dispatcher treats
        the lost task like a crash and, with no retries, reports a
        partial sweep — crucially without hanging or leaking the
        pool."""
        tasks = [(v, 2) for v in (1, 2, 3)]
        result = run_trips(_interrupt_on, tasks, workers=2, retries=0,
                           task_timeout_s=1.5, retry_backoff_s=0.05)
        assert result.partial
        assert result[0] == 1 and result[2] == 9
        assert result[1] is None


class TestCheckpoint:
    def test_resume_skips_completed_tasks(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.ckpt")
        tasks = [(v, str(tmp_path)) for v in (1, 2, 3)]
        # First pass: task at value 2 fails permanently -> partial,
        # checkpoint keeps the two completed results.
        first = run_trips(_flaky_raise, tasks, workers=1, retries=0,
                          checkpoint=checkpoint)
        assert first.partial and os.path.exists(checkpoint)
        assert list(first) == [1, None, 9]
        # Second pass resumes: the marker file now exists, so the
        # previously failing task succeeds; completed tasks are not
        # recomputed.
        second = run_trips(_flaky_raise, tasks, workers=1, retries=0,
                           checkpoint=checkpoint)
        assert list(second) == [1, 4, 9]
        assert second.resumed == 2 and not second.partial
        assert not os.path.exists(checkpoint)  # removed on success

    def test_checkpoint_ignored_for_different_sweep(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.ckpt")
        with open(checkpoint, "wb") as fh:
            pickle.dump({"fingerprint": "bogus",
                         "results": {0: 999}}, fh)
        result = run_trips(_square, [5], workers=1,
                           checkpoint=checkpoint)
        assert list(result) == [25]

    def test_corrupt_checkpoint_ignored(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.ckpt")
        with open(checkpoint, "wb") as fh:
            fh.write(b"not a pickle")
        result = run_trips(_square, [3, 4], workers=1,
                           checkpoint=checkpoint)
        assert list(result) == [9, 16]

    def test_pooled_checkpoint_roundtrip(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.ckpt")
        result = run_trips(_square, [1, 2, 3, 4], workers=2,
                           checkpoint=checkpoint)
        assert list(result) == [1, 4, 9, 16]
        assert not os.path.exists(checkpoint)


class TestSpawnCompatibility:
    def test_spawn_with_rebuild_spec_matches_serial(self):
        """The shared-bank registry survives a spawn pool via the
        rebuild spec (regression: it used to ride fork-inherited
        globals only)."""
        spec = shared_bank_spec(0, trips=(0,), prefill=False)
        tasks = [(0, 0), (0, 0)]
        serial = run_trips(_bank_probe, tasks, workers=1,
                           initializer=install_shared_banks,
                           initargs=(spec,))
        spawned = run_trips(_bank_probe, tasks, workers=2,
                            initializer=install_shared_banks,
                            initargs=(spec,), start_method="spawn")
        assert list(serial) == list(spawned) == [True, True]

    def test_unpicklable_initargs_fall_back_gracefully(self):
        """Real bank objects that cannot pickle degrade to the
        initializer's spawn_fallback (empty registry) instead of
        crashing the pool."""
        unpicklable = {(0, 0): lambda: None}
        result = run_trips(_bank_probe, [(0, 0), (0, 0)], workers=2,
                           initializer=install_shared_banks,
                           initargs=(unpicklable,),
                           start_method="spawn")
        assert list(result) == [False, False]

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ValueError):
            run_trips(_square, [1, 2], workers=2,
                      start_method="teleport")

    def test_spawn_safe_initializer_requires_fallback(self):
        from repro.experiments.common import _spawn_safe_initializer

        def no_fallback(arg):
            pass

        with pytest.raises(TypeError):
            _spawn_safe_initializer(no_fallback, (lambda: None,))
