"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_insertion_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_clock_advances_to_event_times():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.schedule(4.25, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5, 4.25]


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0
    sim.run(until=20.0)
    assert fired == ["early", "late"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(0.5, handle.cancel)
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.run() == 0


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_zero_delay_fires_after_queued_same_time_events():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(0.0, fired.append, "zero")

    sim.schedule(1.0, first)
    sim.schedule(1.0, fired.append, "second")
    sim.run()
    assert fired == ["first", "second", "zero"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_into_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_step_processes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_max_events_caps_processing():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    assert sim.run(max_events=2) == 2
    assert fired == [0, 1]


def test_pending_counts_live_events():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    handle.cancel()
    assert sim.pending == 1


def test_peek_time_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek_time() == 2.0


def test_run_returns_processed_count():
    sim = Simulator()
    for i in range(7):
        sim.schedule(float(i), lambda: None)
    assert sim.run() == 7
    assert sim.events_processed == 7
