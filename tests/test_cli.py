"""Tests for the ``python -m repro`` command-line entry point."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_enumerates_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["definitely-not-an-experiment"])


def test_fig05_runs_and_emits_json(capsys):
    assert main(["fig05", "--seed", "3"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"VanLAN", "DieselNet Ch1", "DieselNet Ch6"}
    for env in payload.values():
        histogram = env["histogram(>=1 beacon)"]
        assert sum(histogram) > 0
