"""Tests for the ``python -m repro`` command-line entry point."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_enumerates_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["definitely-not-an-experiment"])


def test_fig05_runs_and_emits_json(capsys):
    assert main(["fig05", "--seed", "3"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"VanLAN", "DieselNet Ch1", "DieselNet Ch6"}
    for env in payload.values():
        histogram = env["histogram(>=1 beacon)"]
        assert sum(histogram) > 0


def test_list_mentions_store_and_serve(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "store" in out and "serve" in out


def test_store_stats_subcommand(capsys, tmp_path):
    from repro.store import ResultStore, result_key

    store = ResultStore(tmp_path)
    store.put(result_key("cli-test", 1), {"v": 1})
    assert main(["store", "stats", "--dir", str(tmp_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["entries"] == 1
    assert payload["quarantined"] == 0

    assert main(["store", "verify", "--dir", str(tmp_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["verified_ok"] == 1


def test_serve_list_subcommand(capsys):
    assert main(["serve", "--list"]) == 0
    out = capsys.readouterr().out
    assert "density_sweep" in out
    assert "tcp_vanlan" in out
