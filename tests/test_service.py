"""The hardened experiment service: queueing, deadlines, degradation.

Uses tiny registered runners (no simulation) so every lifecycle edge —
backpressure, deadline expiry, cancellation, failure capture, store
memoization — is exercised in well under a second.
"""

import threading
import time

import pytest

from repro.service import (
    ExperimentService,
    ServiceClosed,
    ServiceSaturated,
    register_runner,
    runner_names,
)
from repro.store import ResultStore


def _register_toys():
    events = {"computes": 0}

    def quick(x=1):
        events["computes"] += 1
        return {"doubled": x * 2}

    def failing():
        raise ValueError("injected failure")

    gate = threading.Event()

    def gated():
        gate.wait(10.0)
        return "released"

    def cooperative(context=None, budget=200):
        for _ in range(budget):
            if context is not None and context.should_stop():
                return "stopped early"
            time.sleep(0.005)
        return "ran to completion"

    cooperative.accepts_context = True

    register_runner("_test_quick", quick)
    register_runner("_test_failing", failing)
    register_runner("_test_gated", gated)
    register_runner("_test_cooperative", cooperative)
    return events, gate


class TestLifecycle:
    def test_submit_and_result(self, tmp_path):
        _register_toys()
        with ExperimentService(store=False, workers=2) as svc:
            job = svc.wait(svc.submit("_test_quick", {"x": 21}))
            assert job.state == "done"
            assert job.result == {"doubled": 42}
            snap = job.snapshot()
            assert snap["state"] == "done" and "elapsed_s" in snap

    def test_unknown_runner_rejected(self):
        _register_toys()
        with ExperimentService(store=False) as svc:
            with pytest.raises(KeyError, match="unknown runner"):
                svc.submit("no-such-runner")

    def test_failure_captured_service_survives(self):
        _register_toys()
        with ExperimentService(store=False, workers=1) as svc:
            failed = svc.wait(svc.submit("_test_failing"))
            assert failed.state == "failed"
            assert "injected failure" in failed.error
            # The worker thread survived the exception.
            ok = svc.wait(svc.submit("_test_quick", {"x": 1}))
            assert ok.state == "done"
            assert svc.stats()["failed"] == 1

    def test_backpressure_saturates_not_grows(self):
        events, gate = _register_toys()
        svc = ExperimentService(store=False, workers=1, queue_limit=2)
        try:
            blocker = svc.submit("_test_gated")
            accepted = []
            with pytest.raises(ServiceSaturated):
                for i in range(20):
                    accepted.append(svc.submit("_test_quick", {"x": i}))
            assert len(accepted) <= 3  # queue_limit + pickup slack
            gate.set()
            assert svc.wait(blocker, timeout=10).state == "done"
            for job_id in accepted:
                assert svc.wait(job_id, timeout=10).state == "done"
        finally:
            gate.set()
            svc.close()

    def test_rejected_submit_leaves_no_record(self):
        events, gate = _register_toys()
        svc = ExperimentService(store=False, workers=1, queue_limit=1)
        try:
            svc.submit("_test_gated")
            ids = []
            try:
                while True:
                    ids.append(svc.submit("_test_quick"))
            except ServiceSaturated:
                pass
            counts = svc.stats()
            tracked = sum(counts[s] for s in
                          ("queued", "running", "done", "failed",
                           "cancelled", "expired"))
            assert tracked == 1 + len(ids)
        finally:
            gate.set()
            svc.close()

    def test_deadline_expires_queued_job(self):
        events, gate = _register_toys()
        svc = ExperimentService(store=False, workers=1)
        try:
            blocker = svc.submit("_test_gated")
            doomed = svc.submit("_test_quick", deadline_s=0.01)
            time.sleep(0.05)
            gate.set()
            job = svc.wait(doomed, timeout=10)
            assert job.state == "expired"
            assert events["computes"] == 0  # never ran
            svc.wait(blocker, timeout=10)
        finally:
            gate.set()
            svc.close()

    def test_deadline_cooperative_for_running_job(self):
        _register_toys()
        with ExperimentService(store=False, workers=1) as svc:
            job = svc.wait(svc.submit("_test_cooperative",
                                      deadline_s=0.05), timeout=15)
            assert job.state == "expired"
            assert job.result is None  # past-deadline result withheld

    def test_cancel_queued_and_running(self):
        events, gate = _register_toys()
        svc = ExperimentService(store=False, workers=1)
        try:
            running = svc.submit("_test_cooperative")
            queued = svc.submit("_test_quick")
            assert svc.cancel(queued)
            assert svc.wait(queued, timeout=10).state == "cancelled"
            assert events["computes"] == 0
            time.sleep(0.05)  # let the cooperative job start
            svc.cancel(running)
            job = svc.wait(running, timeout=15)
            assert job.state == "cancelled"
        finally:
            gate.set()
            svc.close()

    def test_closed_service_rejects(self):
        _register_toys()
        svc = ExperimentService(store=False)
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit("_test_quick")


class TestStoreIntegration:
    def test_repeat_request_served_from_store(self, tmp_path):
        events, _ = _register_toys()
        with ExperimentService(store=tmp_path, workers=1) as svc:
            first = svc.wait(svc.submit("_test_quick", {"x": 5}))
            second = svc.wait(svc.submit("_test_quick", {"x": 5}))
            other = svc.wait(svc.submit("_test_quick", {"x": 6}))
            assert first.result == second.result == {"doubled": 10}
            assert other.result == {"doubled": 12}
            assert events["computes"] == 2  # x=5 computed once
            assert not first.cached and second.cached and not other.cached
            assert svc.stats()["store"]["hits"] == 1

    def test_warm_store_survives_service_restart(self, tmp_path):
        events, _ = _register_toys()
        with ExperimentService(store=tmp_path, workers=1) as svc:
            svc.wait(svc.submit("_test_quick", {"x": 9}))
        computes = events["computes"]
        with ExperimentService(store=tmp_path, workers=1) as svc:
            job = svc.wait(svc.submit("_test_quick", {"x": 9}))
            assert job.result == {"doubled": 18}
            assert job.cached
        assert events["computes"] == computes

    def test_degraded_store_still_serves(self, tmp_path):
        _register_toys()
        blocker = tmp_path / "blocker"
        blocker.write_text("file, not dir")
        store = ResultStore(blocker / "store")
        with ExperimentService(store=store, workers=1) as svc:
            job = svc.wait(svc.submit("_test_quick", {"x": 2}))
            assert job.state == "done"
            assert job.result == {"doubled": 4}
            assert svc.stats()["store"]["degraded"]

    def test_uncacheable_params_compute_uncached(self, tmp_path):
        class Opaque:
            pass

        def opaque_runner(blob=None):
            return "computed"

        register_runner("_test_opaque", opaque_runner)
        with ExperimentService(store=tmp_path, workers=1) as svc:
            job = svc.wait(svc.submit("_test_opaque",
                                      {"blob": Opaque()}))
            assert job.state == "done" and job.result == "computed"
            assert svc.stats()["store"]["misses"] == 0

    def test_builtin_runners_registered(self):
        names = runner_names()
        for expected in ("density_sweep", "speed_sweep",
                         "fault_matrix_smoke", "tcp_vanlan",
                         "voip_vanlan"):
            assert expected in names
