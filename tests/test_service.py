"""The hardened experiment service: queueing, deadlines, degradation.

Uses tiny registered runners (no simulation) so every lifecycle edge —
backpressure, deadline expiry, cancellation, failure capture, store
memoization — is exercised in well under a second.
"""

import json
import threading
import time

import pytest

from repro.service import (
    ExperimentService,
    ServiceClosed,
    ServiceSaturated,
    register_runner,
    runner_names,
)
from repro.store import ResultStore


def _register_toys():
    events = {"computes": 0}

    def quick(x=1):
        events["computes"] += 1
        return {"doubled": x * 2}

    def failing():
        raise ValueError("injected failure")

    gate = threading.Event()

    def gated():
        gate.wait(10.0)
        return "released"

    def cooperative(context=None, budget=200):
        for _ in range(budget):
            if context is not None and context.should_stop():
                return "stopped early"
            time.sleep(0.005)
        return "ran to completion"

    cooperative.accepts_context = True

    register_runner("_test_quick", quick)
    register_runner("_test_failing", failing)
    register_runner("_test_gated", gated)
    register_runner("_test_cooperative", cooperative)
    return events, gate


class TestLifecycle:
    def test_submit_and_result(self, tmp_path):
        _register_toys()
        with ExperimentService(store=False, workers=2) as svc:
            job = svc.wait(svc.submit("_test_quick", {"x": 21}))
            assert job.state == "done"
            assert job.result == {"doubled": 42}
            snap = job.snapshot()
            assert snap["state"] == "done" and "elapsed_s" in snap

    def test_unknown_runner_rejected(self):
        _register_toys()
        with ExperimentService(store=False) as svc:
            with pytest.raises(KeyError, match="unknown runner"):
                svc.submit("no-such-runner")

    def test_failure_captured_service_survives(self):
        _register_toys()
        with ExperimentService(store=False, workers=1) as svc:
            failed = svc.wait(svc.submit("_test_failing"))
            assert failed.state == "failed"
            assert "injected failure" in failed.error
            # The worker thread survived the exception.
            ok = svc.wait(svc.submit("_test_quick", {"x": 1}))
            assert ok.state == "done"
            assert svc.stats()["failed"] == 1

    def test_backpressure_saturates_not_grows(self):
        events, gate = _register_toys()
        svc = ExperimentService(store=False, workers=1, queue_limit=2)
        try:
            blocker = svc.submit("_test_gated")
            accepted = []
            with pytest.raises(ServiceSaturated):
                for i in range(20):
                    accepted.append(svc.submit("_test_quick", {"x": i}))
            assert len(accepted) <= 3  # queue_limit + pickup slack
            gate.set()
            assert svc.wait(blocker, timeout=10).state == "done"
            for job_id in accepted:
                assert svc.wait(job_id, timeout=10).state == "done"
        finally:
            gate.set()
            svc.close()

    def test_rejected_submit_leaves_no_record(self):
        events, gate = _register_toys()
        svc = ExperimentService(store=False, workers=1, queue_limit=1)
        try:
            svc.submit("_test_gated")
            ids = []
            try:
                while True:
                    ids.append(svc.submit("_test_quick"))
            except ServiceSaturated:
                pass
            counts = svc.stats()
            tracked = sum(counts[s] for s in
                          ("queued", "running", "done", "failed",
                           "cancelled", "expired"))
            assert tracked == 1 + len(ids)
        finally:
            gate.set()
            svc.close()

    def test_deadline_expires_queued_job(self):
        events, gate = _register_toys()
        svc = ExperimentService(store=False, workers=1)
        try:
            blocker = svc.submit("_test_gated")
            doomed = svc.submit("_test_quick", deadline_s=0.01)
            time.sleep(0.05)
            gate.set()
            job = svc.wait(doomed, timeout=10)
            assert job.state == "expired"
            assert events["computes"] == 0  # never ran
            svc.wait(blocker, timeout=10)
        finally:
            gate.set()
            svc.close()

    def test_deadline_cooperative_for_running_job(self):
        _register_toys()
        with ExperimentService(store=False, workers=1) as svc:
            job = svc.wait(svc.submit("_test_cooperative",
                                      deadline_s=0.05), timeout=15)
            assert job.state == "expired"
            assert job.result is None  # past-deadline result withheld

    def test_cancel_queued_and_running(self):
        events, gate = _register_toys()
        svc = ExperimentService(store=False, workers=1)
        try:
            running = svc.submit("_test_cooperative")
            queued = svc.submit("_test_quick")
            assert svc.cancel(queued)
            assert svc.wait(queued, timeout=10).state == "cancelled"
            assert events["computes"] == 0
            time.sleep(0.05)  # let the cooperative job start
            svc.cancel(running)
            job = svc.wait(running, timeout=15)
            assert job.state == "cancelled"
        finally:
            gate.set()
            svc.close()

    def test_closed_service_rejects(self):
        _register_toys()
        svc = ExperimentService(store=False)
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit("_test_quick")


class TestStoreIntegration:
    def test_repeat_request_served_from_store(self, tmp_path):
        events, _ = _register_toys()
        with ExperimentService(store=tmp_path, workers=1) as svc:
            first = svc.wait(svc.submit("_test_quick", {"x": 5}))
            second = svc.wait(svc.submit("_test_quick", {"x": 5}))
            other = svc.wait(svc.submit("_test_quick", {"x": 6}))
            assert first.result == second.result == {"doubled": 10}
            assert other.result == {"doubled": 12}
            assert events["computes"] == 2  # x=5 computed once
            assert not first.cached and second.cached and not other.cached
            assert svc.stats()["store"]["hits"] == 1

    def test_warm_store_survives_service_restart(self, tmp_path):
        events, _ = _register_toys()
        with ExperimentService(store=tmp_path, workers=1) as svc:
            svc.wait(svc.submit("_test_quick", {"x": 9}))
        computes = events["computes"]
        with ExperimentService(store=tmp_path, workers=1) as svc:
            job = svc.wait(svc.submit("_test_quick", {"x": 9}))
            assert job.result == {"doubled": 18}
            assert job.cached
        assert events["computes"] == computes

    def test_degraded_store_still_serves(self, tmp_path):
        _register_toys()
        blocker = tmp_path / "blocker"
        blocker.write_text("file, not dir")
        store = ResultStore(blocker / "store")
        with ExperimentService(store=store, workers=1) as svc:
            job = svc.wait(svc.submit("_test_quick", {"x": 2}))
            assert job.state == "done"
            assert job.result == {"doubled": 4}
            assert svc.stats()["store"]["degraded"]

    def test_uncacheable_params_compute_uncached(self, tmp_path):
        class Opaque:
            pass

        def opaque_runner(blob=None):
            return "computed"

        register_runner("_test_opaque", opaque_runner)
        with ExperimentService(store=tmp_path, workers=1) as svc:
            job = svc.wait(svc.submit("_test_opaque",
                                      {"blob": Opaque()}))
            assert job.state == "done" and job.result == "computed"
            assert svc.stats()["store"]["misses"] == 0

    def test_builtin_runners_registered(self):
        names = runner_names()
        for expected in ("density_sweep", "speed_sweep",
                         "fault_matrix_smoke", "tcp_vanlan",
                         "voip_vanlan"):
            assert expected in names


class TestCloseCancelRace:
    """PR 9: a cancel racing the worker must still end terminal."""

    def _register_stubborn(self):
        """A runner that ignores should_stop entirely."""
        release = threading.Event()

        def stubborn():
            release.wait(10.0)
            return "finished anyway"

        register_runner("_test_stubborn", stubborn)
        return release

    def test_cancelled_running_job_terminal_after_close(self):
        release = self._register_stubborn()
        svc = ExperimentService(store=False, workers=1)
        try:
            job_id = svc.submit("_test_stubborn")
            deadline = time.monotonic() + 5.0
            while svc.job(job_id).state != "running":
                assert time.monotonic() < deadline
                time.sleep(0.005)
            # The worker is between should_stop checks (it never
            # checks); cancel lands mid-flight.
            svc.cancel(job_id)
            svc.close(wait=True, finalize_timeout_s=0.3)
            job = svc.job(job_id)
            assert job.state == "cancelled", (
                f"job stuck {job.state!r} after close")
            assert job.done_event.is_set()
        finally:
            release.set()
        # The abandoned worker limping home must not resurrect the
        # terminal record (first-writer-wins _finish).
        time.sleep(0.2)
        job = svc.job(job_id)
        assert job.state == "cancelled"
        assert job.result is None

    def test_queued_jobs_terminal_after_close(self):
        release = self._register_stubborn()
        svc = ExperimentService(store=False, workers=1, queue_limit=4)
        try:
            blocker = svc.submit("_test_stubborn")
            queued = svc.submit("_test_quick", {"x": 1})
            svc.cancel(blocker)
            svc.close(wait=True, finalize_timeout_s=0.3)
            for job_id in (blocker, queued):
                state = svc.job(job_id).state
                assert state in ("cancelled", "done"), (
                    f"job {job_id} stuck {state!r} after close")
            assert svc.job(blocker).state == "cancelled"
        finally:
            release.set()

    def test_cancel_racing_completion_first_writer_wins(self):
        _register_toys()
        with ExperimentService(store=False, workers=1) as svc:
            job = svc.wait(svc.submit("_test_quick", {"x": 3}),
                           timeout=10)
            assert job.state == "done"
            # The late cancel loses the race and changes nothing.
            assert svc.cancel(job.id) is False
            assert job.state == "done"
            assert job.result == {"doubled": 6}


class TestDeadlineEdges:
    """PR 9: the deadline corners the HTTP path leans on."""

    def test_queued_expiry_reports_the_queued_edge(self):
        events, gate = _register_toys()
        svc = ExperimentService(store=False, workers=1)
        try:
            blocker = svc.submit("_test_gated")
            doomed = svc.submit("_test_quick", deadline_s=0.01)
            time.sleep(0.05)
            gate.set()
            job = svc.wait(doomed, timeout=10)
            assert job.state == "expired"
            assert job.error == "deadline passed while queued"
            assert job.started is None  # never ran
            svc.wait(blocker, timeout=10)
        finally:
            gate.set()
            svc.close()

    def test_running_expiry_reports_the_running_edge(self):
        _register_toys()
        with ExperimentService(store=False, workers=1) as svc:
            job = svc.wait(svc.submit("_test_cooperative",
                                      deadline_s=0.05), timeout=15)
            assert job.state == "expired"
            assert job.error == "deadline exceeded"
            assert job.started is not None  # it did run

    def test_wait_on_terminal_job_returns_immediately(self):
        _register_toys()
        with ExperimentService(store=False, workers=1) as svc:
            job_id = svc.submit("_test_quick", {"x": 1})
            svc.wait(job_id, timeout=10)
            t0 = time.monotonic()
            job = svc.wait(job_id, timeout=30.0)
            assert time.monotonic() - t0 < 1.0
            assert job.state == "done"

    def test_wait_timeout_returns_nonterminal_snapshot(self):
        _, gate = _register_toys()
        svc = ExperimentService(store=False, workers=1)
        try:
            job_id = svc.submit("_test_gated")
            job = svc.wait(job_id, timeout=0.05)
            assert job.state in ("queued", "running")
            gate.set()
            assert svc.wait(job_id, timeout=10).state == "done"
        finally:
            gate.set()
            svc.close()


class TestIdempotentSubmit:
    """PR 9: content-addressed dedupe behind the gateway."""

    def test_live_job_absorbs_retry(self):
        _, gate = _register_toys()
        svc = ExperimentService(store=False, workers=1)
        try:
            first, attached_a = svc.submit_idempotent("_test_gated")
            second, attached_b = svc.submit_idempotent("_test_gated")
            assert not attached_a and attached_b
            assert first == second
            assert svc.stats()["queued"] + svc.stats()["running"] == 1
        finally:
            gate.set()
            svc.close()

    def test_failed_job_never_absorbs_retry(self):
        _register_toys()
        with ExperimentService(store=False, workers=1) as svc:
            failed_id, _ = svc.submit_idempotent("_test_failing")
            svc.wait(failed_id, timeout=10)
            retry_id, attached = svc.submit_idempotent("_test_failing")
            assert retry_id != failed_id and not attached
            svc.wait(retry_id, timeout=10)

    def test_submit_never_dedupes(self):
        _, gate = _register_toys()
        svc = ExperimentService(store=False, workers=1)
        try:
            a = svc.submit("_test_gated")
            b = svc.submit("_test_gated")
            assert a != b
        finally:
            gate.set()
            svc.close()

    def test_uncacheable_params_fork_jobs(self):
        class Opaque:
            pass

        def opaque_runner(blob=None):
            return "ran"

        register_runner("_test_opaque_fork", opaque_runner)
        with ExperimentService(store=False, workers=2) as svc:
            a, att_a = svc.submit_idempotent("_test_opaque_fork",
                                             {"blob": Opaque()})
            b, att_b = svc.submit_idempotent("_test_opaque_fork",
                                             {"blob": Opaque()})
            assert a != b and not att_a and not att_b
            svc.wait(a, timeout=10)
            svc.wait(b, timeout=10)

    def test_job_key_is_param_order_invariant(self):
        key_a = ExperimentService.job_key("r", {"a": 1, "b": 2})
        key_b = ExperimentService.job_key("r", {"b": 2, "a": 1})
        assert key_a == key_b is not None
        assert ExperimentService.job_key("r", {"a": 2}) != key_a
        assert ExperimentService.job_key("other", {"a": 1}) != key_a

        class Opaque:
            pass

        assert ExperimentService.job_key("r", {"x": Opaque()}) is None


class TestProgress:
    """PR 9: the JobContext.progress hook behind the event stream."""

    def test_progress_events_are_sequenced(self):
        def reporter(context=None, steps=3):
            for i in range(steps):
                context.progress(step=i + 1)
            return "done"

        reporter.accepts_context = True
        register_runner("_test_reporter", reporter)
        with ExperimentService(store=False, workers=1) as svc:
            job = svc.wait(svc.submit("_test_reporter", {"steps": 3}),
                           timeout=10)
            events, terminal = job.progress_since(0, timeout=0)
            assert [e["seq"] for e in events] == [1, 2, 3]
            assert [e["step"] for e in events] == [1, 2, 3]
            assert terminal
            # Tail reads see only the new events.
            tail, _ = job.progress_since(2, timeout=0)
            assert [e["seq"] for e in tail] == [3]
            assert job.snapshot()["progress"]["step"] == 3

    def test_progress_since_wakes_on_terminal(self):
        _, gate = _register_toys()
        svc = ExperimentService(store=False, workers=1)
        try:
            job = svc.job(svc.submit("_test_gated"))
            results = {}

            def waiter():
                results["out"] = job.progress_since(0, timeout=10.0)

            t = threading.Thread(target=waiter)
            t.start()
            time.sleep(0.05)
            gate.set()
            t.join(timeout=10.0)
            assert not t.is_alive(), "watcher never woke on completion"
            events, terminal = results["out"]
            assert terminal and events == []
        finally:
            gate.set()
            svc.close()

    def test_builtin_runners_accept_context(self):
        from repro import service as service_mod

        for name in ("density_sweep", "speed_sweep", "tcp_vanlan",
                     "voip_vanlan", "fault_matrix_smoke",
                     "vanlan_cbr_sweep"):
            runner = service_mod._RUNNERS[name]
            assert getattr(runner, "accepts_context", False), name


class TestServeStdinResilience:
    """PR 9: nothing on stdin may kill the serving loop."""

    def _run_serve(self, monkeypatch, capsys, lines):
        import io

        from repro.service import main_serve

        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines)
                                                     + "\n"))
        code = main_serve([])
        out = capsys.readouterr().out.strip().splitlines()
        return code, [json.loads(line) for line in out if line]

    def test_malformed_lines_reject_and_loop_survives(self, monkeypatch,
                                                      capsys):
        _register_toys()
        code, out = self._run_serve(monkeypatch, capsys, [
            "this is not json",
            "[1, 2, 3]",
            '{"runner": 42}',
            '{"runner": "no-such-runner"}',
            '{"runner": "_test_quick", "params": [1]}',
            '{"runner": "_test_quick", "deadline_s": "soon"}',
            '{"runner": "_test_quick", "params": {"x": 4}}',
        ])
        assert code == 1  # rejects happened and are reported
        rejected = [o for o in out if o.get("state") == "rejected"]
        done = [o for o in out if o.get("state") == "done"]
        assert len(rejected) == 6
        assert all("error" in r and "error_type" in r for r in rejected)
        # The good line after all the garbage still ran to completion.
        assert len(done) == 1
        assert done[0]["result"] == {"doubled": 8}

    def test_clean_batch_exits_zero(self, monkeypatch, capsys):
        _register_toys()
        code, out = self._run_serve(monkeypatch, capsys, [
            "# a comment line",
            "",
            '{"runner": "_test_quick", "params": {"x": 1}}',
        ])
        assert code == 0
        assert [o["state"] for o in out] == ["done"]
