"""Unit tests for the unicast MAC mode (Section 5.1 ablation)."""

import pytest

from repro.net.channel import BernoulliLoss, TraceDrivenLoss
from repro.net.medium import LinkTable, WirelessMedium
from repro.net.packet import DataPacket, Direction
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


class Node:
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []
        self.completed = []

    def on_receive(self, frame, transmitter_id):
        self.received.append(frame)

    def on_transmit_complete(self, frame):
        self.completed.append(frame)


def setup(loss_ab, mac_retry_limit=4):
    sim = Simulator()
    rngs = RngRegistry(11)
    table = LinkTable()
    table.set_link(0, 1, loss_ab)
    table.set_link(1, 0, BernoulliLoss(0.0, rngs.stream("r")))
    table.set_link(0, 2, BernoulliLoss(0.0, rngs.stream("o")))
    medium = WirelessMedium(sim, table, rngs.stream("m"),
                            mac_retry_limit=mac_retry_limit)
    nodes = [Node(0), Node(1), Node(2)]
    for node in nodes:
        medium.attach(node)
    return sim, medium, nodes


def packet(pkt_id=0):
    return DataPacket(pkt_id=pkt_id, src=0, dst=1,
                      direction=Direction.UPSTREAM, size_bytes=200)


def test_unicast_retries_until_delivered():
    # First two attempts lost, third succeeds.
    rngs = RngRegistry(1)
    loss = TraceDrivenLoss([1.0], rngs.stream("x"),
                           out_of_range_rate=0.0)
    # TraceDrivenLoss keys on time; all attempts happen within the
    # first second, so use a process that fails a fixed count instead.

    class FailNTimes:
        def __init__(self, n):
            self.remaining = n

        def is_lost(self, t):
            if self.remaining > 0:
                self.remaining -= 1
                return True
            return False

        def loss_rate(self, t):
            return 0.0

    sim, medium, nodes = setup(FailNTimes(2))
    medium.send(0, packet(), unicast_to=1)
    sim.run(until=2.0)
    assert len(nodes[1].received) == 1
    assert medium.transmissions(kind="data") == 3
    # Completion fires exactly once, at final resolution.
    assert len(nodes[0].completed) == 1


def test_unicast_gives_up_after_retry_limit():
    sim, medium, nodes = setup(
        BernoulliLoss(1.0, RngRegistry(2).stream("l")),
        mac_retry_limit=3,
    )
    medium.send(0, packet(), unicast_to=1)
    sim.run(until=5.0)
    assert nodes[1].received == []
    assert medium.transmissions(kind="data") == 4  # 1 + 3 retries
    assert len(nodes[0].completed) == 1


def test_unicast_backoff_window_grows_and_resets():
    sim, medium, nodes = setup(
        BernoulliLoss(1.0, RngRegistry(3).stream("l")),
        mac_retry_limit=2,
    )
    base_cw = medium.backoff_slots
    medium.send(0, packet(), unicast_to=1)
    sim.run(until=5.0)
    # After the final give-up the window resets.
    assert medium._cw[0] == base_cw


def test_bystanders_overhear_unicast_attempts():
    sim, medium, nodes = setup(
        BernoulliLoss(1.0, RngRegistry(4).stream("l")),
        mac_retry_limit=2,
    )
    medium.send(0, packet(), unicast_to=1)
    sim.run(until=5.0)
    # Node 2 has a clean link and hears every attempt.
    assert len(nodes[2].received) == 3


def test_broadcast_never_retries():
    sim, medium, nodes = setup(
        BernoulliLoss(1.0, RngRegistry(5).stream("l")))
    medium.send(0, packet())
    sim.run(until=2.0)
    assert medium.transmissions(kind="data") == 1


def test_unicast_success_does_not_retry():
    sim, medium, nodes = setup(
        BernoulliLoss(0.0, RngRegistry(6).stream("l")))
    medium.send(0, packet(), unicast_to=1)
    sim.run(until=2.0)
    assert medium.transmissions(kind="data") == 1
    assert len(nodes[1].received) == 1
