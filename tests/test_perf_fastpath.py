"""Correctness tests for the link-evaluation fast path.

Covers the guarantees the perf work leans on:

* ``LinkStateCache(quantum_s=0)`` is bit-for-bit identical to the
  uncached link model over a full fixed-seed protocol run;
* cached reception probabilities never leave the range the uncached
  model spans inside the same time quantum (the quantum-induced bound);
* the gray-period bisection/pruning matches dense scanning;
* the reachability index culls only truly unreachable links and
  notices topology and trace changes;
* the simulator's live-event counter and tombstone compaction;
* the medium's Counter-backed accounting.
"""

import pytest

from repro.core.protocol import ViFiSimulation
from repro.experiments.common import run_protocol_cbr
from repro.net.channel import BernoulliLoss, TraceDrivenLoss
from repro.net.medium import LinkTable, MediumObserver, WirelessMedium
from repro.net.packet import DataPacket, Direction
from repro.net.propagation import (
    GrayPeriodProcess,
    LinkStateCache,
)
from repro.sim.engine import Simulator
from repro.sim.rng import BufferedUniforms, RngRegistry
from repro.testbeds.vanlan import VEHICLE_ID, VanLanTestbed


def _vanlan_run(cache_quantum_s, duration_s=45.0, trip=0, seed=0):
    testbed = VanLanTestbed(seed=3)
    motion = testbed.vehicle_motion()
    table = testbed.build_link_table(trip, motion,
                                    cache_quantum_s=cache_quantum_s)
    sim = ViFiSimulation(testbed.deployment.bs_ids, table, seed=seed,
                        vehicle_id=VEHICLE_ID)
    cbr = run_protocol_cbr(sim, duration_s)
    return sim, cbr


class TestLinkStateCacheDeterminism:
    def test_quantum_zero_identical_protocol_run(self):
        """The tentpole guarantee: quantum=0 changes nothing at all."""
        sim_cached, cbr_cached = _vanlan_run(cache_quantum_s=0.0)
        sim_raw, cbr_raw = _vanlan_run(cache_quantum_s=None)
        assert sim_cached.sim.events_processed == sim_raw.sim.events_processed
        assert cbr_cached.up_deliveries == cbr_raw.up_deliveries
        assert cbr_cached.down_deliveries == cbr_raw.down_deliveries
        assert dict(sim_cached.medium.tx_count) == dict(sim_raw.medium.tx_count)
        # The run exercised real traffic (not vacuously identical).
        assert len(cbr_cached.up_deliveries) > 50

    def test_quantum_zero_values_identical(self):
        a = VanLanTestbed(seed=11)
        b = VanLanTestbed(seed=11)
        link = a.link_model(0, 1, a.vehicle_motion())
        cached = LinkStateCache(b.link_model(0, 1, b.vehicle_motion()),
                                quantum_s=0.0)
        for k in range(400):
            t = k * 0.037
            assert cached.reception_prob(t) == link.reception_prob(t)
            assert cached.rssi(t) == link.rssi(t)

    def test_cached_prob_within_quantum_bound(self):
        """Cached values must lie in the uncached range of their bucket."""
        quantum = 0.02
        a = VanLanTestbed(seed=7)
        b = VanLanTestbed(seed=7)
        raw = a.link_model(0, 4, a.vehicle_motion())
        cached = LinkStateCache(b.link_model(0, 4, b.vehicle_motion()),
                                quantum_s=quantum)
        steps_per_bucket = 8
        dt = quantum / steps_per_bucket
        n_buckets = 600
        for bucket in range(n_buckets):
            t0 = bucket * quantum
            raw_values = [raw.reception_prob(t0 + i * dt)
                          for i in range(steps_per_bucket)]
            cached_values = {cached.reception_prob(t0 + i * dt)
                             for i in range(steps_per_bucket)}
            # One evaluation per bucket, taken from inside the bucket.
            assert len(cached_values) == 1
            value = cached_values.pop()
            lo, hi = min(raw_values), max(raw_values)
            assert lo - 1e-12 <= value <= hi + 1e-12


class TestGrayPeriodFastPath:
    def test_bisect_matches_dense_scan(self):
        rngs = RngRegistry(5)
        coarse = GrayPeriodProcess(1.0 / 15.0, 3.0, rngs.fresh("g"))
        dense = GrayPeriodProcess(1.0 / 15.0, 3.0, rngs.fresh("g"))
        dense_flags = {}
        for k in range(40000):
            t = k * 0.05
            dense_flags[t] = dense.in_gray(t)
        for k in range(0, 40000, 7):
            t = k * 0.05
            assert coarse.in_gray(t) == dense_flags[t]

    def test_pruning_bounds_interval_storage(self):
        gray = GrayPeriodProcess(2.0, 0.5, RngRegistry(9).fresh("p"),
                                 horizon_hint_s=100.0)
        for k in range(200000):
            gray.in_gray(k * 0.05)
        # ~20k expected onsets over 10 ks; pruning must keep only the
        # recent tail rather than the whole history.
        assert len(gray._starts) < 2000

    def test_zero_rate_never_gray(self):
        gray = GrayPeriodProcess(0.0, 2.0, RngRegistry(1).fresh("z"))
        assert not any(gray.in_gray(t * 5.0) for t in range(200))


class TestReachabilityIndex:
    def _table(self, refresh=0.25):
        rngs = RngRegistry(2)
        table = LinkTable(reach_refresh_s=refresh)
        table.set_link(0, 1, BernoulliLoss(0.3, rngs.stream("a")))
        table.set_link(0, 2, BernoulliLoss(1.0, rngs.stream("b")))
        return table, rngs

    def test_culls_total_loss_links(self):
        table, _ = self._table()
        assert table.reachable_from(0, 0.0) == {1}

    def test_disabled_index_returns_none(self):
        table, _ = self._table(refresh=0.0)
        assert table.reachable_from(0, 0.0) is None
        assert table.reachable_links(0, 0.0) is None

    def test_registration_invalidates_cache(self):
        table, rngs = self._table()
        assert table.reachable_from(0, 0.0) == {1}
        table.set_link(0, 3, BernoulliLoss(0.0, rngs.stream("c")))
        assert table.reachable_from(0, 0.0) == {1, 3}

    def test_dynamic_link_reacquired_after_refresh(self):
        rngs = RngRegistry(4)
        table = LinkTable(reach_refresh_s=0.25)
        # Loss 1.0 during the first second, perfect afterwards.
        process = TraceDrivenLoss([1.0, 0.0, 0.0], rngs.stream("t"),
                                  out_of_range_rate=0.0)
        table.set_link(0, 1, process)
        assert table.reachable_from(0, 0.0) == frozenset()
        # Within the refresh window the verdict is cached ...
        assert table.reachable_from(0, 0.2) == frozenset()
        # ... and re-evaluated once it expires.
        assert table.reachable_from(0, 1.1) == {1}

    def test_reachable_links_sorted_pairs(self):
        table, rngs = self._table()
        table.set_link(0, 5, BernoulliLoss(0.1, rngs.stream("e")))
        pairs = table.reachable_links(0, 0.0)
        assert [dst for dst, _ in pairs] == [1, 5]

    def test_pairs_is_live_iterator(self):
        table, _ = self._table()
        assert sorted(table.pairs()) == [(0, 1), (0, 2)]


class _CountingObserver(MediumObserver):
    def __init__(self):
        self.losses = []
        self.deliveries = []

    def on_loss(self, transmitter_id, receiver_id, frame, time, collided):
        self.losses.append((transmitter_id, receiver_id))

    def on_deliver(self, transmitter_id, receiver_id, frame, time):
        self.deliveries.append((transmitter_id, receiver_id))


class _Node:
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def on_receive(self, frame, transmitter_id):
        self.received.append((frame, transmitter_id))


def _medium(observer=None):
    sim = Simulator()
    rngs = RngRegistry(6)
    table = LinkTable()
    table.set_link(0, 1, BernoulliLoss(0.0, rngs.stream("ok")))
    table.set_link(0, 2, BernoulliLoss(1.0, rngs.stream("cull")))
    medium = WirelessMedium(sim, table, rngs.stream("m"))
    nodes = [_Node(i) for i in range(3)]
    for node in nodes:
        medium.attach(node)
    if observer is not None:
        medium.add_observer(observer)
    return sim, medium, nodes


def _packet(pkt_id=0):
    return DataPacket(pkt_id=pkt_id, src=0, dst=1,
                      direction=Direction.UPSTREAM, size_bytes=200)


class TestMediumFastPath:
    def test_culled_receiver_never_delivers(self):
        sim, medium, nodes = _medium()
        medium.send(0, _packet())
        sim.run(until=1.0)
        assert len(nodes[1].received) == 1
        assert nodes[2].received == []

    def test_observer_still_sees_culled_losses(self):
        observer = _CountingObserver()
        sim, medium, nodes = _medium(observer)
        medium.send(0, _packet())
        sim.run(until=1.0)
        # The culled (always-lost) link still reports a loss event.
        assert (0, 2) in observer.losses
        assert (0, 1) in observer.deliveries

    def test_counter_accounting(self):
        sim, medium, nodes = _medium()
        for i in range(3):
            medium.send(0, _packet(pkt_id=i))
        medium.send(1, _packet(pkt_id=9))
        sim.run(until=1.0)
        assert medium.transmissions() == 4
        assert medium.transmissions(node_id=0) == 3
        assert medium.transmissions(kind="data") == 4
        assert medium.transmissions(kind="ack") == 0
        assert medium.transmissions(kind="data", node_id=1) == 1
        assert medium.delivered_count[(1, "data")] == 3


class TestEngineFastPath:
    def test_pending_is_live_count(self):
        sim = Simulator()
        handles = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
        assert sim.pending == 10
        for handle in handles[:4]:
            handle.cancel()
        assert sim.pending == 6
        sim.run()
        assert sim.pending == 0
        assert sim.events_processed == 6

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending == 1

    def test_tombstone_compaction_shrinks_queue(self):
        sim = Simulator()
        keep = [sim.schedule(10.0 + i, lambda: None) for i in range(50)]
        doomed = [sim.schedule(1.0 + i * 1e-3, lambda: None)
                  for i in range(400)]
        assert len(sim._queue) == 450
        for handle in doomed:
            handle.cancel()
        # Tombstones exceeded half the queue: it must have compacted.
        assert len(sim._queue) < 120
        assert sim.pending == 50
        fired = sim.run()
        assert fired == 50
        assert all(not h.active for h in keep)

    def test_cancel_heavy_run_stays_correct(self):
        sim = Simulator()
        fired = []
        for i in range(500):
            handle = sim.schedule(1.0 + i * 0.01, fired.append, i)
            if i % 2:
                handle.cancel()
        sim.run()
        assert fired == [i for i in range(500) if not i % 2]

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.pending == 0
        handle.cancel()  # must not drive the live count negative
        assert sim.pending == 0


class TestBufferedUniforms:
    def test_matches_scalar_draw_sequence(self):
        scalar = RngRegistry(8).fresh("u")
        buffered = BufferedUniforms(RngRegistry(8).fresh("u"), block=32)
        expected = [scalar.random() for _ in range(100)]
        got = [buffered.next() for _ in range(100)]
        assert got == pytest.approx(expected, abs=0.0)

    def test_bernoulli_extremes_unchanged(self):
        rngs = RngRegistry(12)
        always = BernoulliLoss(1.0, rngs.stream("x"))
        never = BernoulliLoss(0.0, rngs.stream("y"))
        assert all(always.is_lost(t * 0.1) for t in range(50))
        assert not any(never.is_lost(t * 0.1) for t in range(50))
