"""Unit tests for the Figure 2 aggregation helper."""

import numpy as np
import pytest

from repro.analysis.aggregate import packets_per_day_by_density
from repro.handoff.policies import AllBsesPolicy, BrrPolicy
from repro.testbeds.traces import ProbeTrace


def make_trace(n_slots=100, n_bs=4, seed=0):
    rng = np.random.default_rng(seed)
    up = rng.random((n_slots, n_bs)) < 0.6
    down = rng.random((n_slots, n_bs)) < 0.6
    rssi = np.where(down, -80.0, np.nan)
    return ProbeTrace(list(range(1, n_bs + 1)), 0.1, up, down, rssi,
                      np.zeros((n_slots, 2)))


def test_density_monotone_for_oracle():
    traces = [make_trace(seed=s) for s in range(2)]
    rng = np.random.default_rng(1)
    results = packets_per_day_by_density(
        traces, lambda training: AllBsesPolicy(),
        subset_sizes=(1, 2, 4), trials_per_size=3, rng=rng,
    )
    means = [results[size][0] for size in (1, 2, 4)]
    assert means == sorted(means)


def test_full_population_has_no_subset_variance():
    traces = [make_trace()]
    rng = np.random.default_rng(2)
    results = packets_per_day_by_density(
        traces, lambda training: AllBsesPolicy(),
        subset_sizes=(4,), trials_per_size=5, rng=rng,
    )
    mean, half_width = results[4]
    assert half_width == 0.0  # all trials use the same full subset
    assert mean > 0


def test_training_restricted_to_subset():
    captured = []

    def factory(training):
        captured.append(training)
        return BrrPolicy()

    traces = [make_trace()]
    rng = np.random.default_rng(3)
    packets_per_day_by_density(
        traces, factory, subset_sizes=(2,), trials_per_size=1, rng=rng,
        training_traces=[make_trace(seed=9)],
    )
    (training,) = captured
    assert training is not None
    assert training[0].n_bs == 2


def test_invalid_subset_size_rejected():
    traces = [make_trace()]
    rng = np.random.default_rng(4)
    with pytest.raises(ValueError):
        packets_per_day_by_density(
            traces, lambda t: AllBsesPolicy(), subset_sizes=(9,),
            trials_per_size=1, rng=rng,
        )


def test_empty_traces_rejected():
    with pytest.raises(ValueError):
        packets_per_day_by_density(
            [], lambda t: AllBsesPolicy(), subset_sizes=(1,),
            trials_per_size=1, rng=np.random.default_rng(0),
        )
