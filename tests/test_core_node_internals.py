"""Focused tests for node-internal mechanisms.

Bitmap acknowledgments, receiver de-duplication state, the adaptive
ack-wait window, gateway routing, and beacon decoration — behaviours
that the protocol integration tests exercise only incidentally.
"""

import pytest

from repro.core.node import _ReceiverState
from repro.core.protocol import ViFiConfig, ViFiSimulation
from repro.net.channel import BernoulliLoss
from repro.net.medium import LinkTable
from repro.net.packet import Ack, Beacon, FrameKind
from repro.sim.rng import RngRegistry

VEHICLE = 0


def two_bs_sim(config=None, seed=3, loss=0.0):
    rngs = RngRegistry(seed)
    table = LinkTable()
    for bs in (1, 2):
        table.set_link(VEHICLE, bs,
                       BernoulliLoss(loss, rngs.stream("u", bs)))
        table.set_link(bs, VEHICLE,
                       BernoulliLoss(loss, rngs.stream("d", bs)))
    table.set_link(1, 2, BernoulliLoss(0.0, rngs.stream("b1")))
    table.set_link(2, 1, BernoulliLoss(0.0, rngs.stream("b2")))
    sim = ViFiSimulation([1, 2], table, config=config or ViFiConfig(),
                         seed=seed)
    sim.start()
    return sim


class TestReceiverState:
    def test_dedup(self):
        state = _ReceiverState()
        assert state.record(5)
        assert not state.record(5)
        assert state.record(6)

    def test_bitmap_flags_missing(self):
        state = _ReceiverState()
        for pkt_id in (0, 1, 3, 5, 6, 7):
            state.record(pkt_id)
        state.record(8)
        bitmap = state.missing_bitmap(8)
        # Missing among [0..7]: 2 and 4 -> bits for 8-1-k in {2, 4}.
        missing = {8 - 1 - k for k in range(8) if bitmap & (1 << k)}
        assert missing == {2, 4}

    def test_bitmap_ignores_negative_ids(self):
        state = _ReceiverState()
        state.record(1)
        bitmap = state.missing_bitmap(1)
        missing = {1 - 1 - k for k in range(8) if bitmap & (1 << k)}
        assert missing == {0}  # ids below zero never flagged

    def test_memory_bounded(self):
        state = _ReceiverState()
        for pkt_id in range(2000):
            state.record(pkt_id)
        # Old ids forgotten; re-recording an ancient id looks fresh.
        assert state.record(0)


class TestAckFrames:
    def test_missing_ids_roundtrip(self):
        ack = Ack(pkt_id=10, acker=1, for_src=0, missing_bitmap=0b101)
        assert set(ack.missing_ids()) == {9, 7}

    def test_beacon_size_grows_with_reports(self):
        empty = Beacon(sender=1)
        full = Beacon(sender=1, incoming={2: 0.5, 3: 0.4},
                      learned={4: 0.3})
        assert full.size_bytes > empty.size_bytes


class TestBitmapRecovery:
    def test_bitmap_retires_earlier_packets(self):
        """An ack whose bitmap shows earlier ids as received must
        retire them at the sender without retransmission."""
        sim = two_bs_sim()
        sim.run(until=8.0)
        sender = sim.vehicle.upstream
        for seq in range(5):
            sim.send_upstream(("u", seq), 200, flow_id=1, seq=seq)
        sim.run(until=12.0)
        # Clean link: everything acked and forgotten.
        assert sender.queued_count == 0
        assert sender.delivered_acks == 5


class TestSenderBacklog:
    def test_1k_backlog_drains_without_quadratic_rescans(self):
        """PR 6 satellite: a 1000-packet burst drains cleanly.

        The sender's transmit FIFO drops completed entries lazily
        (tombstones) instead of ``deque.remove``-ing per ack, and the
        dead column prefix is compacted periodically — so a deep
        backlog costs O(1) amortized per packet, and the columns do
        not grow with lifetime throughput.
        """
        sim = two_bs_sim()
        sim.run(until=8.0)
        sender = sim.vehicle.upstream
        for seq in range(1000):
            sim.send_upstream(("u", seq), 200, flow_id=1, seq=seq)
        assert sender.queued_count == 1000
        sim.run(until=40.0)
        # Clean link: the whole backlog delivered and forgotten.
        assert sender.delivered_acks == 1000
        assert sender.queued_count == 0
        # The transmit FIFO drained by lazy head-drops, and every
        # completion was counted towards the next periodic compaction
        # (which fires every 4096 — exercised directly below).
        assert len(sender.queue) == 0
        assert sender._done_since_compact == 1000
        # Force the periodic compaction and check it slices the dead
        # prefix off every column in one pass.
        sender._compact()
        assert sender._base == 1000
        assert len(sender._st) == 0


class TestAdaptiveWindow:
    def test_window_clamped(self):
        config = ViFiConfig(relay_min_age=0.01, relay_max_window=0.05)
        sim = two_bs_sim(config=config)
        node = sim.bs_nodes[1]
        # No samples yet: initial value times multiplier, clamped.
        assert config.relay_min_age <= node._ack_window() <= \
            config.relay_max_window
        for _ in range(50):
            node._ack_gap.add_sample(1.0)  # absurd gaps
        assert node._ack_window() == config.relay_max_window
        node2 = sim.bs_nodes[2]
        for _ in range(50):
            node2._ack_gap.add_sample(0.0)
        # The timer floors samples at relay_min_age before the safety
        # multiplier, so the effective minimum is multiplier x floor.
        expected = config.relay_min_age * config.relay_window_multiplier
        assert node2._ack_window() == pytest.approx(expected)


class TestGateway:
    def test_downstream_buffered_until_anchor_known(self):
        sim = two_bs_sim()
        # Before any beacons, the gateway has no anchor belief.
        sim.send_downstream("early", 200, flow_id=9, seq=0)
        assert sim.gateway.anchor_belief is None
        got = []
        sim.set_downstream_sink(lambda p, t: got.append(p.flow_id))
        sim.run(until=10.0)
        assert sim.gateway.anchor_belief is not None
        assert 9 in got  # the buffered packet flushed on first update

    def test_belief_lags_anchor_change(self):
        config = ViFiConfig(gateway_update_delay_s=0.5)
        sim = two_bs_sim(config=config)
        sim.run(until=8.0)
        assert sim.gateway.anchor_belief == sim.vehicle.anchor_id


class TestBeaconDecoration:
    def test_vehicle_beacons_carry_designations(self):
        sim = two_bs_sim()
        sim.run(until=8.0)
        beacon = Beacon(sender=VEHICLE)
        sim.vehicle.decorate_beacon(beacon)
        assert beacon.anchor_id == sim.vehicle.anchor_id
        assert beacon.anchor_id not in beacon.aux_ids

    def test_bs_beacons_carry_no_designations(self):
        sim = two_bs_sim()
        sim.run(until=8.0)
        beacon = Beacon(sender=1)
        sim.bs_nodes[1].decorate_beacon(beacon)
        assert beacon.anchor_id is None
        assert beacon.aux_ids == ()

    def test_bs_tracks_vehicle_designations(self):
        sim = two_bs_sim()
        sim.run(until=8.0)
        anchor = sim.vehicle.anchor_id
        other = 2 if anchor == 1 else 1
        assert sim.bs_nodes[anchor].known_anchor == anchor
        assert sim.bs_nodes[other].known_anchor == anchor
        assert sim.bs_nodes[other].is_designated_aux()


class TestRetiredSalvagePool:
    def test_given_up_packets_salvageable(self):
        config = ViFiConfig(max_retx=0, relay_enabled=False,
                            salvage_enabled=False,
                            anchor_belief_timeout=60.0)
        sim = two_bs_sim(config=config, loss=1.0, seed=5)
        # Force BS 1 to act as anchor manually (no beacons get through).
        node = sim.bs_nodes[1]
        node.is_anchor = True
        node.vehicle_id = VEHICLE
        node.last_vehicle_beacon = 0.0
        sim.run(until=1.0)
        node.on_internet_packet("p", 300, flow_id=1, seq=0)
        sim.run(until=2.5)
        harvest = node.downstream.unacked_within(60.0)
        assert len(harvest) == 1
        # A second harvest finds nothing (transfer of ownership).
        assert node.downstream.unacked_within(60.0) == []
