"""Unit tests for the propagation model."""

import math

import pytest

from repro.net.mobility import StationaryPosition
from repro.net.propagation import (
    GrayPeriodProcess,
    LinkModel,
    RadioProfile,
    Shadowing,
    SpatialField,
)
from repro.sim.rng import RngRegistry


def _rng(name="p"):
    return RngRegistry(7).fresh(name)


class TestRadioProfile:
    def test_rssi_decreases_with_distance(self):
        profile = RadioProfile()
        assert profile.mean_rssi(10) > profile.mean_rssi(100)
        assert profile.mean_rssi(100) > profile.mean_rssi(500)

    def test_rssi_clamps_below_one_metre(self):
        profile = RadioProfile()
        assert profile.mean_rssi(0.1) == profile.mean_rssi(1.0)

    def test_reception_monotone_in_rssi(self):
        profile = RadioProfile()
        probs = [profile.reception_prob(r) for r in (-95, -88, -80)]
        assert probs[0] < probs[1] < probs[2]

    def test_reception_midpoint(self):
        profile = RadioProfile(decode_mid_dbm=-88.0, max_reception=1.0)
        assert profile.reception_prob(-88.0) == pytest.approx(0.5)

    def test_noise_floor_blocks_reception(self):
        profile = RadioProfile(noise_floor_dbm=-100.0)
        assert profile.reception_prob(-101.0) == 0.0

    def test_max_reception_caps_curve(self):
        profile = RadioProfile(max_reception=0.8)
        assert profile.reception_prob(0.0) == pytest.approx(0.8)

    def test_extreme_arguments_do_not_overflow(self):
        profile = RadioProfile()
        assert profile.reception_prob(200.0) == profile.max_reception
        assert profile.reception_prob(-99.9) >= 0.0


class TestShadowing:
    def test_stationary_variance(self):
        shadowing = Shadowing(sigma_db=6.0, tau_s=10.0, rng=_rng("sh"))
        samples = [shadowing.value_db(float(t)) for t in range(5000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert abs(mean) < 1.0
        assert 0.5 * 36 < var < 1.5 * 36

    def test_temporal_correlation_decays(self):
        shadowing = Shadowing(sigma_db=6.0, tau_s=10.0, rng=_rng("sc"))
        a = shadowing.value_db(100.0)
        near = shadowing.value_db(100.5)
        assert abs(a - near) < 6.0  # strongly correlated nearby

    def test_interpolation_continuous(self):
        shadowing = Shadowing(sigma_db=6.0, tau_s=5.0, rng=_rng("si"))
        v1 = shadowing.value_db(3.49)
        v2 = shadowing.value_db(3.51)
        assert abs(v1 - v2) < 1.0

    def test_negative_time_rejected(self):
        shadowing = Shadowing(6.0, 5.0, _rng())
        with pytest.raises(ValueError):
            shadowing.value_db(-1.0)


class TestSpatialField:
    def test_deterministic_for_same_stream(self):
        a = SpatialField(4.0, 50.0, _rng("f"))
        b = SpatialField(4.0, 50.0, _rng("f"))
        assert a.value_db(10, 20) == b.value_db(10, 20)

    def test_spatial_correlation(self):
        field = SpatialField(4.0, 80.0, _rng("fc"))
        near = abs(field.value_db(100, 100) - field.value_db(103, 100))
        assert near < 2.0  # 3 m apart, well inside correlation length

    def test_variance_scale(self):
        field = SpatialField(4.0, 30.0, _rng("fv"), n_terms=96)
        values = [field.value_db(x * 17.3, x * 9.1) for x in range(2000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert 0.4 * 16 < var < 1.8 * 16


class TestGrayPeriods:
    def test_no_events_at_zero_rate(self):
        gray = GrayPeriodProcess(0.0, 2.0, _rng())
        assert not any(gray.in_gray(t * 10.0) for t in range(100))

    def test_fraction_of_time_matches_rate(self):
        gray = GrayPeriodProcess(1.0 / 20.0, 2.0, _rng("g"))
        in_gray = sum(gray.in_gray(t * 0.5) for t in range(20000))
        fraction = in_gray / 20000
        # Expected duty cycle ~ rate * duration = 0.1.
        assert 0.05 < fraction < 0.2

    def test_periods_are_contiguous(self):
        gray = GrayPeriodProcess(1.0 / 10.0, 5.0, _rng("gc"))
        flags = [gray.in_gray(t * 0.1) for t in range(5000)]
        # Count transitions; with mean duration 5 s there should be far
        # fewer transitions than gray samples.
        transitions = sum(
            1 for a, b in zip(flags, flags[1:]) if a != b
        )
        assert transitions < sum(flags) / 5


class TestLinkModel:
    def _link(self, distance, **kwargs):
        profile = RadioProfile()
        return LinkModel(
            profile,
            StationaryPosition(0, 0),
            StationaryPosition(distance, 0),
            **kwargs,
        )

    def test_distance(self):
        link = self._link(120.0)
        assert link.distance(0.0) == pytest.approx(120.0)

    def test_reception_prob_decreases_with_distance(self):
        near = self._link(50.0).reception_prob(0.0)
        far = self._link(300.0).reception_prob(0.0)
        assert near > far

    def test_gray_period_collapses_reception(self):
        class AlwaysGray:
            def in_gray(self, t):
                return True

        link = self._link(30.0, gray=AlwaysGray())
        assert link.reception_prob(0.0) <= \
            link.profile.gray_residual_reception

    def test_loss_prob_complements_reception(self):
        link = self._link(100.0)
        assert link.loss_prob(0.0) == pytest.approx(
            1.0 - link.reception_prob(0.0)
        )

    def test_moving_endpoint_changes_distance(self):
        profile = RadioProfile()
        link = LinkModel(
            profile,
            StationaryPosition(0, 0),
            lambda t: (t * 10.0, 0.0),
        )
        assert link.distance(1.0) == pytest.approx(10.0)
        assert link.distance(10.0) == pytest.approx(100.0)
        assert math.isclose(
            link.rssi(1.0), profile.mean_rssi(10.0), abs_tol=1e-9
        )
