"""Tests for the synthetic VanLAN / DieselNet environments.

These check structural invariants and the statistical properties the
paper's analysis depends on (Section 3.4), not exact values: losses are
bursty, losses are roughly independent across BSes, and vehicles are
usually in range of multiple BSes.
"""

import numpy as np
import pytest

from repro.testbeds.dieselnet import DieselNetTestbed, dieselnet_deployment
from repro.testbeds.layout import Deployment
from repro.testbeds.vanlan import (
    VEHICLE_ID,
    VanLanTestbed,
    default_vanlan_deployment,
)


class TestDeployment:
    def test_vanlan_has_eleven_bses_in_bounds(self):
        deployment = default_vanlan_deployment()
        assert deployment.n_bs == 11
        width, height = deployment.bounds
        assert (width, height) == (828.0, 559.0)
        for x, y in deployment.bs_positions.values():
            assert 0 <= x <= width and 0 <= y <= height

    def test_dieselnet_channel_populations(self):
        assert dieselnet_deployment(1).n_bs == 10
        assert dieselnet_deployment(6).n_bs == 14
        with pytest.raises(ValueError):
            dieselnet_deployment(11)

    def test_subset(self):
        deployment = default_vanlan_deployment()
        sub = deployment.subset([1, 5, 9])
        assert sub.bs_ids == [1, 5, 9]
        with pytest.raises(KeyError):
            deployment.subset([1, 99])

    def test_distance_symmetry(self):
        deployment = default_vanlan_deployment()
        assert deployment.distance(1, 2) == deployment.distance(2, 1)
        assert deployment.distance(1, 1) == 0.0

    def test_position_callable(self):
        deployment = Deployment("t", {7: (10.0, 20.0)}, (100, 100))
        assert deployment.position_of(7)(123.0) == (10.0, 20.0)


class TestVanLanTraces:
    @pytest.fixture(scope="class")
    def trace(self):
        return VanLanTestbed(seed=101).generate_probe_trace(0)

    def test_trace_shape(self, trace):
        assert trace.n_bs == 11
        assert trace.slot_dt == pytest.approx(0.1)
        assert trace.duration > 120  # a trip takes minutes

    def test_reproducible(self):
        a = VanLanTestbed(seed=101).generate_probe_trace(0)
        b = VanLanTestbed(seed=101).generate_probe_trace(0)
        assert np.array_equal(a.up, b.up)
        assert np.array_equal(a.down, b.down)

    def test_trips_differ(self):
        tb = VanLanTestbed(seed=101)
        a = tb.generate_probe_trace(0)
        b = tb.generate_probe_trace(1)
        assert not np.array_equal(a.down, b.down)

    def test_rssi_only_when_received(self, trace):
        assert np.isnan(trace.rssi[~trace.down]).all()
        assert np.isfinite(trace.rssi[trace.down]).all()

    def test_positions_inside_route_extent(self, trace):
        assert trace.positions[:, 0].max() < 850
        assert trace.positions[:, 1].max() < 600

    def test_vehicle_usually_hears_multiple_bses(self, trace):
        """The Section 3.4.1 diversity premise."""
        tb = VanLanTestbed(seed=101)
        log = tb.beacon_log_from_trace(trace)
        counts = log.visible_counts()
        assert np.median(counts) >= 2

    def test_losses_bursty_within_link(self, trace):
        """Section 3.4.2: loss after a loss is far more likely.

        Measured inside the BS's coverage window — over a whole trip
        the base loss is dominated by out-of-range time and the ratio
        degenerates toward one.
        """
        down = trace.down
        rates = down.mean(axis=0)
        j = int(np.argmax(rates))  # best-covered BS
        seq = down[:, j]
        covered = np.convolve(seq, np.ones(50), "same") > 15
        seq = seq[covered]
        assert seq.size > 300
        loss = ~seq
        base = loss.mean()
        after = loss[1:][loss[:-1]].mean()
        assert after > 1.3 * base

    def test_losses_roughly_independent_across_bses(self, trace):
        """Section 3.4.2: conditioning on one BS's loss barely moves
        another BS's reception."""
        down = trace.down
        # Pick the BS pair with the largest joint coverage window.
        best = None
        for a in range(trace.n_bs):
            cov_a = np.convolve(down[:, a], np.ones(50), "same") > 5
            for b in range(a + 1, trace.n_bs):
                cov_b = np.convolve(down[:, b], np.ones(50), "same") > 5
                joint = int((cov_a & cov_b).sum())
                if best is None or joint > best[0]:
                    best = (joint, a, b, cov_a & cov_b)
        joint_size, a, b, window = best
        assert joint_size >= 200, "no pair shares a coverage window"
        a_recv = down[window, a]
        b_recv = down[window, b]
        p_b = b_recv[1:].mean()
        p_b_given_a_lost = b_recv[1:][~a_recv[:-1]].mean()
        # B's reception changes far less than its own conditional drop.
        p_b_given_b_lost = b_recv[1:][~b_recv[:-1]].mean()
        assert abs(p_b_given_a_lost - p_b) < 0.25
        assert p_b_given_b_lost < p_b

    def test_beacon_log_reduction(self, trace):
        tb = VanLanTestbed(seed=101)
        log = tb.beacon_log_from_trace(trace)
        assert log.expected == 10
        assert log.n_bs == trace.n_bs
        sps = trace.slots_per_second
        manual = trace.down[: log.n_secs * sps].reshape(
            log.n_secs, sps, trace.n_bs).sum(axis=1)
        assert np.array_equal(log.heard, manual)


class TestVanLanLinkTable:
    def test_live_table_covers_all_pairs(self):
        tb = VanLanTestbed(seed=3)
        motion = tb.vehicle_motion()
        table = tb.build_link_table(0, motion)
        ids = tb.deployment.bs_ids
        for bs in ids:
            assert table.get(VEHICLE_ID, bs) is not None
            assert table.get(bs, VEHICLE_ID) is not None
        assert table.get(ids[0], ids[1]) is not None

    def test_interbs_reception_decreases_with_distance(self):
        tb = VanLanTestbed(seed=3)
        near = tb.interbs_reception(1, 2)      # same building
        far = tb.interbs_reception(1, 6)       # across campus
        assert near > far


class TestDieselNet:
    @pytest.fixture(scope="class")
    def log(self):
        return DieselNetTestbed(channel=1, seed=7).generate_beacon_log(0)

    def test_log_shape(self, log):
        assert log.n_bs == 10
        assert log.expected == 10
        assert log.n_secs > 200

    def test_reproducible(self):
        a = DieselNetTestbed(channel=1, seed=7).generate_beacon_log(0)
        b = DieselNetTestbed(channel=1, seed=7).generate_beacon_log(0)
        assert np.array_equal(a.heard, b.heard)

    def test_days_differ(self):
        tb = DieselNetTestbed(channel=1, seed=7)
        a = tb.generate_beacon_log(0)
        b = tb.generate_beacon_log(1)
        assert not np.array_equal(a.heard, b.heard)

    def test_channels_differ_in_population(self):
        ch6 = DieselNetTestbed(channel=6, seed=7).generate_beacon_log(0)
        assert ch6.n_bs == 14

    def test_diversity_present(self, log):
        counts = log.visible_counts()
        assert np.median(counts) >= 2

    def test_profiling_days(self):
        tb = DieselNetTestbed(channel=1, seed=7)
        days = tb.generate_profiling_days(n_days=3)
        assert len(days) == 3
