"""Unit tests for loss processes."""

import numpy as np
import pytest

from repro.net.channel import (
    BernoulliLoss,
    GilbertElliottLoss,
    SteeredGilbertElliott,
    TraceDrivenLoss,
)
from repro.sim.rng import RngRegistry


def _rng(name="x"):
    return RngRegistry(123).fresh(name)


class TestBernoulliLoss:
    def test_loss_rate_matches_parameter(self):
        process = BernoulliLoss(0.3, _rng())
        assert process.loss_rate(0.0) == 0.3

    def test_empirical_rate_converges(self):
        process = BernoulliLoss(0.3, _rng())
        losses = sum(process.is_lost(t * 0.01) for t in range(20000))
        assert 0.27 < losses / 20000 < 0.33

    def test_extremes(self):
        assert not BernoulliLoss(0.0, _rng()).is_lost(0)
        assert BernoulliLoss(1.0, _rng()).is_lost(0)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5, _rng())


class TestGilbertElliott:
    def test_stationary_loss_rate(self):
        process = GilbertElliottLoss(
            eps_good=0.1, eps_bad=0.9,
            good_duration=1.0, bad_duration=0.25, rng=_rng(),
        )
        pi_bad = 0.25 / 1.25
        expected = (1 - pi_bad) * 0.1 + pi_bad * 0.9
        assert process.loss_rate(0.0) == pytest.approx(expected)

    def test_empirical_rate_near_stationary(self):
        process = GilbertElliottLoss(
            eps_good=0.05, eps_bad=0.95,
            good_duration=0.5, bad_duration=0.1, rng=_rng("ge"),
        )
        n = 50000
        losses = sum(process.is_lost(t * 0.01) for t in range(n))
        assert abs(losses / n - process.loss_rate(0)) < 0.03

    def test_losses_are_bursty(self):
        """Consecutive-loss probability must exceed the base rate."""
        process = GilbertElliottLoss(
            eps_good=0.02, eps_bad=1.0,
            good_duration=1.0, bad_duration=0.15, rng=_rng("burst"),
        )
        outcomes = [process.is_lost(t * 0.01) for t in range(60000)]
        arr = np.asarray(outcomes)
        base = arr.mean()
        after_loss = arr[1:][arr[:-1]].mean()
        assert after_loss > 2.0 * base

    def test_backwards_query_rejected(self):
        process = GilbertElliottLoss(0.1, 0.9, 1.0, 0.1, _rng())
        process.is_lost(5.0)
        with pytest.raises(ValueError):
            process.is_lost(1.0)

    def test_invalid_durations_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(0.1, 0.9, 0.0, 0.1, _rng())


class TestSteeredGilbertElliott:
    def test_mean_tracks_target(self):
        target = 0.35
        process = SteeredGilbertElliott(lambda t: target, rng=_rng("st"))
        n = 40000
        losses = sum(process.is_lost(t * 0.01) for t in range(n))
        assert abs(losses / n - target) < 0.03

    def test_zero_target_never_loses(self):
        process = SteeredGilbertElliott(lambda t: 0.0, rng=_rng())
        assert not any(process.is_lost(t * 0.05) for t in range(1000))

    def test_full_target_always_loses(self):
        process = SteeredGilbertElliott(lambda t: 1.0, rng=_rng())
        assert all(process.is_lost(t * 0.05) for t in range(1000))

    def test_split_preserves_mean_when_bad_saturates(self):
        process = SteeredGilbertElliott(lambda t: 0.9, rng=_rng())
        eps_good, eps_bad = process._split(0.9)
        pi_b = process._chain.pi_bad
        mean = pi_b * eps_bad + (1 - pi_b) * eps_good
        assert mean == pytest.approx(0.9, abs=1e-9)

    def test_burstiness_preserved_under_steering(self):
        process = SteeredGilbertElliott(lambda t: 0.25, rng=_rng("sb"))
        outcomes = np.asarray(
            [process.is_lost(t * 0.01) for t in range(60000)]
        )
        base = outcomes.mean()
        after_loss = outcomes[1:][outcomes[:-1]].mean()
        assert after_loss > 1.5 * base

    def test_time_varying_target(self):
        process = SteeredGilbertElliott(
            lambda t: 0.0 if t < 10 else 1.0, rng=_rng()
        )
        early = [process.is_lost(t * 0.01) for t in range(500)]
        late = [process.is_lost(15 + t * 0.01) for t in range(500)]
        assert not any(early)
        assert all(late)


class TestTraceDrivenLoss:
    def test_rates_indexed_by_second(self):
        process = TraceDrivenLoss([0.0, 0.5, 1.0], rng=_rng())
        assert process.loss_rate(0.5) == 0.0
        assert process.loss_rate(1.2) == 0.5
        assert process.loss_rate(2.9) == 1.0

    def test_out_of_range_uses_default(self):
        process = TraceDrivenLoss([0.2], rng=_rng(), out_of_range_rate=1.0)
        assert process.loss_rate(5.0) == 1.0
        assert process.loss_rate(-1.0) == 1.0

    def test_t0_offset(self):
        process = TraceDrivenLoss([0.0, 1.0], rng=_rng(), t0=100.0)
        assert process.loss_rate(100.5) == 0.0
        assert process.loss_rate(101.5) == 1.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            TraceDrivenLoss([0.5, 1.2], rng=_rng())

    def test_sampling_respects_rates(self):
        process = TraceDrivenLoss([0.0, 1.0], rng=_rng())
        assert not any(process.is_lost(0.0 + k * 0.001) for k in range(500))
        assert all(process.is_lost(1.0 + k * 0.001) for k in range(500))
