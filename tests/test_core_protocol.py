"""Integration tests for the ViFi protocol engines.

These run small but complete protocol simulations over hand-built link
tables, so every behaviour is attributable: anchor selection, relaying
in both directions, ack suppression, bitmap acks, salvaging, adaptive
retransmission, and the BRR comparator.
"""

import pytest

from repro.core.perfect import perfect_relay_efficiency
from repro.core.protocol import ViFiConfig, ViFiSimulation
from repro.net.channel import BernoulliLoss, TraceDrivenLoss
from repro.net.medium import LinkTable
from repro.net.packet import Direction
from repro.sim.rng import RngRegistry

VEHICLE = 0


def build_table(links, seed=1):
    """LinkTable from {(src, dst): loss_rate} with reliable defaults."""
    rngs = RngRegistry(seed)
    table = LinkTable()
    for (a, b), loss in links.items():
        table.set_link(a, b, BernoulliLoss(loss, rngs.stream("l", a, b)))
    return table


def full_mesh(bs_ids, vehicle_loss=0.0, interbs_loss=0.0, seed=1):
    links = {}
    for bs in bs_ids:
        links[(VEHICLE, bs)] = vehicle_loss
        links[(bs, VEHICLE)] = vehicle_loss
    for a in bs_ids:
        for b in bs_ids:
            if a != b:
                links[(a, b)] = interbs_loss
    return build_table(links, seed)


def make_sim(links_or_table, bs_ids, config=None, seed=3):
    table = links_or_table
    if isinstance(links_or_table, dict):
        table = build_table(links_or_table)
    sim = ViFiSimulation(bs_ids, table, config=config or ViFiConfig(),
                         seed=seed)
    sim.start()
    return sim


class TestAnchorSelection:
    def test_vehicle_anchors_to_best_bs(self):
        links = {
            (VEHICLE, 1): 0.1, (1, VEHICLE): 0.1,
            (VEHICLE, 2): 0.7, (2, VEHICLE): 0.7,
            (1, 2): 0.0, (2, 1): 0.0,
        }
        sim = make_sim(links, [1, 2])
        sim.run(until=5.0)
        assert sim.vehicle.anchor_id == 1

    def test_bs_learns_anchor_role(self):
        sim = make_sim(full_mesh([1, 2]), [1, 2])
        sim.run(until=5.0)
        anchor = sim.vehicle.anchor_id
        assert sim.bs_nodes[anchor].is_anchor
        other = 2 if anchor == 1 else 1
        assert not sim.bs_nodes[other].is_anchor

    def test_auxiliaries_designated(self):
        sim = make_sim(full_mesh([1, 2, 3]), [1, 2, 3])
        sim.run(until=5.0)
        aux = set(sim.vehicle.aux_ids)
        assert sim.vehicle.anchor_id not in aux
        assert len(aux) == 2

    def test_anchor_switches_when_link_dies(self):
        table = LinkTable()
        rngs = RngRegistry(9)
        # BS 1 good for 10 s then dead; BS 2 the reverse.
        table.set_link(VEHICLE, 1, TraceDrivenLoss(
            [0.0] * 10 + [1.0] * 20, rngs.stream("u1")))
        table.set_link(1, VEHICLE, TraceDrivenLoss(
            [0.0] * 10 + [1.0] * 20, rngs.stream("d1")))
        table.set_link(VEHICLE, 2, TraceDrivenLoss(
            [0.9] * 10 + [0.0] * 20, rngs.stream("u2")))
        table.set_link(2, VEHICLE, TraceDrivenLoss(
            [0.9] * 10 + [0.0] * 20, rngs.stream("d2")))
        table.set_link(1, 2, BernoulliLoss(0.0, rngs.stream("b12")))
        table.set_link(2, 1, BernoulliLoss(0.0, rngs.stream("b21")))
        sim = make_sim(table, [1, 2])
        sim.run(until=8.0)
        assert sim.vehicle.anchor_id == 1
        sim.run(until=20.0)
        assert sim.vehicle.anchor_id == 2
        assert sim.stats.anchor_changes >= 1


class TestDataPath:
    def test_upstream_delivery_on_clean_link(self):
        sim = make_sim(full_mesh([1, 2]), [1, 2])
        sim.run(until=8.0)
        for seq in range(20):
            sim.send_upstream(("up", seq), 500, flow_id=1, seq=seq)
        sim.run(until=12.0)
        assert len(sim.gateway.delivered_upstream) == 20

    def test_downstream_delivery_on_clean_link(self):
        sim = make_sim(full_mesh([1, 2]), [1, 2])
        sim.run(until=8.0)
        for seq in range(20):
            sim.send_downstream(("down", seq), 500, flow_id=2, seq=seq)
        sim.run(until=12.0)
        assert len(sim.vehicle.delivered_downstream) == 20

    def test_no_duplicate_app_delivery(self):
        # A lossy link forces retransmissions; the app must still see
        # each seq exactly once.  Salvaging is off: a salvaged packet
        # legitimately re-enters under a fresh (src, pkt_id) when its
        # ack was lost after delivery (Section 4.5 accepts that
        # duplicate), which would hide what this test pins — the
        # retransmission/bitmap dedup path.
        sim = make_sim(full_mesh([1, 2], vehicle_loss=0.4), [1, 2],
                       config=ViFiConfig(salvage_enabled=False),
                       seed=11)
        sim.run(until=8.0)
        for seq in range(30):
            sim.send_downstream(("d", seq), 200, flow_id=2, seq=seq)
        sim.run(until=20.0)
        seqs = [s for s, _, _ in sim.vehicle.delivered_downstream]
        assert len(seqs) == len(set(seqs))

    def test_retransmission_recovers_losses(self):
        sim = make_sim(full_mesh([1], vehicle_loss=0.5), [1], seed=13)
        sim.run(until=8.0)
        for seq in range(50):
            sim.send_upstream(("u", seq), 200, flow_id=1, seq=seq)
        sim.run(until=30.0)
        # 0.5 loss with 3 retransmissions: ~94% expected delivery.
        assert len(sim.gateway.delivered_upstream) >= 40

    def test_max_retx_zero_disables_recovery(self):
        config = ViFiConfig(max_retx=0, relay_enabled=False,
                            salvage_enabled=False)
        sim = make_sim(full_mesh([1], vehicle_loss=0.5), [1],
                       config=config, seed=13)
        sim.run(until=8.0)
        for seq in range(100):
            sim.send_upstream(("u", seq), 200, flow_id=1, seq=seq)
        sim.run(until=30.0)
        delivered = len(sim.gateway.delivered_upstream)
        assert 30 <= delivered <= 70  # ~ one-shot delivery rate


class TestRelaying:
    def _diversity_table(self, direct_loss, seed=17):
        """Vehicle-anchor link lossy; auxiliary path clean.

        BS 1 is the anchor (the vehicle hears its beacons best); BS 2
        overhears the vehicle perfectly and can relay.
        """
        links = {
            (VEHICLE, 1): direct_loss, (1, VEHICLE): direct_loss,
            (VEHICLE, 2): 0.0,
            (2, VEHICLE): min(direct_loss + 0.3, 0.9),
            (1, 2): 0.0, (2, 1): 0.0,
        }
        return build_table(links, seed)

    def test_upstream_relaying_rescues_packets(self):
        config = ViFiConfig(max_retx=0, salvage_enabled=False)
        sim = make_sim(self._diversity_table(0.3), [1, 2],
                       config=config, seed=19)
        sim.run(until=8.0)
        assert sim.vehicle.anchor_id == 1
        for seq in range(100):
            sim.send_upstream(("u", seq), 200, flow_id=1, seq=seq)
        sim.run(until=30.0)
        vifi_delivered = len(sim.gateway.delivered_upstream)

        brr = make_sim(self._diversity_table(0.3), [1, 2],
                       config=config.brr_variant(), seed=19)
        brr.run(until=8.0)
        for seq in range(100):
            brr.send_upstream(("u", seq), 200, flow_id=1, seq=seq)
        brr.run(until=30.0)
        brr_delivered = len(brr.gateway.delivered_upstream)
        assert vifi_delivered > brr_delivered

    def test_upstream_relays_ride_backplane(self):
        config = ViFiConfig(max_retx=0, salvage_enabled=False)
        sim = make_sim(self._diversity_table(0.4), [1, 2],
                       config=config, seed=23)
        sim.run(until=8.0)
        for seq in range(100):
            sim.send_upstream(("u", seq), 200, flow_id=1, seq=seq)
        sim.run(until=30.0)
        assert sim.backplane.total_bytes("relay") > 0

    def test_downstream_relays_on_wireless(self):
        config = ViFiConfig(max_retx=0, salvage_enabled=False)
        sim = make_sim(self._diversity_table(0.4), [1, 2],
                       config=config, seed=29)
        sim.run(until=8.0)
        for seq in range(100):
            sim.send_downstream(("d", seq), 200, flow_id=2, seq=seq)
        sim.run(until=30.0)
        relayed = [p for p in sim.stats.packet_records.values()
                   if p.direction == Direction.DOWNSTREAM
                   and p.relay_count > 0]
        assert relayed
        # Relay copies appear as data transmissions from BS 2.
        assert sim.medium.transmissions(kind="data", node_id=2) > 0

    def test_brr_variant_never_relays(self):
        config = ViFiConfig().brr_variant()
        sim = make_sim(self._diversity_table(0.4), [1, 2],
                       config=config, seed=31)
        sim.run(until=8.0)
        for seq in range(50):
            sim.send_upstream(("u", seq), 200, flow_id=1, seq=seq)
            sim.send_downstream(("d", seq), 200, flow_id=2, seq=seq)
        sim.run(until=20.0)
        relays = [d for d in sim.stats.relay_decisions if d[3]]
        assert relays == []
        assert sim.backplane.total_bytes("relay") == 0

    def test_relayed_copies_not_rerelayed(self):
        config = ViFiConfig(max_retx=0, salvage_enabled=False)
        links = {
            (VEHICLE, 1): 0.4, (1, VEHICLE): 0.4,
            (VEHICLE, 2): 0.3, (2, VEHICLE): 0.0,
            (VEHICLE, 3): 0.3, (3, VEHICLE): 0.0,
            (1, 2): 0.0, (2, 1): 0.0,
            (1, 3): 0.0, (3, 1): 0.0,
            (2, 3): 0.0, (3, 2): 0.0,
        }
        sim = make_sim(links, [1, 2, 3], config=config, seed=37)
        sim.run(until=8.0)
        for seq in range(100):
            sim.send_downstream(("d", seq), 200, flow_id=2, seq=seq)
        sim.run(until=30.0)
        # Each packet is relayed at most once per auxiliary, and a
        # relayed copy must never spawn another relay: the relay count
        # per packet is bounded by the number of auxiliaries (2).
        for record in sim.stats.packet_records.values():
            assert record.relay_count <= 2


class TestSalvaging:
    def _switch_table(self, seed=41):
        """Anchor 1 dies at t=10 s; BS 2 takes over."""
        rngs = RngRegistry(seed)
        table = LinkTable()
        profile_1 = [0.05] * 10 + [1.0] * 30
        profile_2 = [0.6] * 10 + [0.05] * 30
        table.set_link(VEHICLE, 1, TraceDrivenLoss(profile_1,
                                                   rngs.stream("u1")))
        table.set_link(1, VEHICLE, TraceDrivenLoss(profile_1,
                                                   rngs.stream("d1")))
        table.set_link(VEHICLE, 2, TraceDrivenLoss(profile_2,
                                                   rngs.stream("u2")))
        table.set_link(2, VEHICLE, TraceDrivenLoss(profile_2,
                                                   rngs.stream("d2")))
        table.set_link(1, 2, BernoulliLoss(0.0, rngs.stream("b1")))
        table.set_link(2, 1, BernoulliLoss(0.0, rngs.stream("b2")))
        return table

    def _drive_through_switch(self, sim, n=40):
        """Send packets continuously across the anchor switch.

        The gateway keeps routing to the dying anchor until the vehicle
        re-anchors and the routing update lands, so a steady stream
        leaves fresh (< 1 s old) unacked packets stranded there —
        exactly the population salvaging targets.
        """
        sim.run(until=9.0)
        assert sim.vehicle.anchor_id == 1

        def feed(seq=[0]):
            if seq[0] >= n:
                return
            sim.send_downstream(("d", seq[0]), 300, flow_id=2,
                                seq=seq[0])
            seq[0] += 1
            sim.sim.schedule(0.1, feed)

        sim.sim.schedule_at(9.0, feed)
        sim.run(until=35.0)

    def test_salvage_rescues_stranded_packets(self):
        sim = make_sim(self._switch_table(), [1, 2],
                       config=ViFiConfig(relay_enabled=False), seed=43)
        self._drive_through_switch(sim)
        assert sim.vehicle.anchor_id == 2
        assert sim.stats.salvage_requests >= 1
        assert sim.stats.salvaged_packets > 0
        delivered = {s for s, _, _ in sim.vehicle.delivered_downstream}
        assert len(delivered) >= 30

    def test_salvage_disabled_loses_stranded_packets(self):
        config = ViFiConfig(relay_enabled=False, salvage_enabled=False)
        with_salvage = make_sim(self._switch_table(), [1, 2],
                                config=ViFiConfig(relay_enabled=False),
                                seed=43)
        self._drive_through_switch(with_salvage)
        without = make_sim(self._switch_table(), [1, 2], config=config,
                           seed=43)
        self._drive_through_switch(without)
        assert without.stats.salvage_requests == 0
        got_with = {s for s, _, _ in
                    with_salvage.vehicle.delivered_downstream}
        got_without = {s for s, _, _ in
                       without.vehicle.delivered_downstream}
        assert len(got_with) > len(got_without)

    def test_salvaged_packets_flagged(self):
        sim = make_sim(self._switch_table(), [1, 2],
                       config=ViFiConfig(relay_enabled=False), seed=43)
        self._drive_through_switch(sim)
        salvaged = [p for p in sim.stats.packet_records.values()
                    if p.salvaged]
        assert salvaged


class TestAccounting:
    def test_efficiency_bounded(self):
        sim = make_sim(full_mesh([1, 2], vehicle_loss=0.3), [1, 2],
                       seed=47)
        sim.run(until=8.0)
        for seq in range(100):
            sim.send_upstream(("u", seq), 300, flow_id=1, seq=seq)
            sim.send_downstream(("d", seq), 300, flow_id=2, seq=seq)
        sim.run(until=30.0)
        for direction in (Direction.UPSTREAM, Direction.DOWNSTREAM):
            eff = sim.efficiency(direction)
            assert 0.0 < eff <= 1.0

    def test_perfect_relay_dominates_vifi_upstream(self):
        sim = make_sim(full_mesh([1, 2, 3], vehicle_loss=0.4), [1, 2, 3],
                       seed=53)
        sim.run(until=8.0)
        for seq in range(150):
            sim.send_upstream(("u", seq), 300, flow_id=1, seq=seq)
        sim.run(until=40.0)
        vifi_eff = sim.efficiency(Direction.UPSTREAM)
        pr_eff, _, _ = perfect_relay_efficiency(sim.stats,
                                                Direction.UPSTREAM)
        assert pr_eff >= vifi_eff - 0.02

    def test_coordination_report_structure(self):
        sim = make_sim(full_mesh([1, 2], vehicle_loss=0.3), [1, 2],
                       seed=59)
        sim.run(until=8.0)
        for seq in range(50):
            sim.send_upstream(("u", seq), 300, flow_id=1, seq=seq)
        sim.run(until=20.0)
        report = sim.stats.coordination_report(Direction.UPSTREAM)
        rows = report.rows()
        assert len(rows) == 10
        assert report.n_source_tx >= 50
        assert 0 <= report.src_tx_success_rate <= 1
        assert report.src_tx_failure_rate == pytest.approx(
            1.0 - report.src_tx_success_rate)


class TestConfig:
    def test_variants(self):
        base = ViFiConfig()
        brr = base.brr_variant()
        assert not brr.relay_enabled and not brr.salvage_enabled
        assert base.relay_enabled  # original untouched
        div = base.diversity_only_variant()
        assert div.relay_enabled and not div.salvage_enabled

    def test_replace_rejects_unknown(self):
        with pytest.raises(TypeError):
            ViFiConfig().replace(definitely_not_a_field=1)

    def test_beacons_per_second(self):
        assert ViFiConfig(beacon_interval=0.1).beacons_per_second == 10
        assert ViFiConfig(beacon_interval=0.2).beacons_per_second == 5
