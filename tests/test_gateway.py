"""The HTTP gateway: wire behaviour, failure mapping, client policy.

Tier-1 scale: toy registered runners (no simulation) behind a real
asyncio server on an ephemeral loopback port, driven by the real
client — every status-code mapping, idempotency, streaming, and
disconnect-cancellation edge runs in well under a second each.  The
process-level chaos (kill -9, restarts, overload bursts) lives in
``tools/gateway_smoke.py``.
"""

import json
import random
import socket
import threading
import time

import pytest

from repro.gateway import Gateway, GatewayLimits
from repro.gateway.client import (
    GatewayError,
    GatewayUnavailable,
    RetryingClient,
)
from repro.service import ExperimentService, register_runner


class GatewayThread:
    """A real gateway on a background event loop, for sync tests."""

    def __init__(self, service, limits=None, drain_timeout_s=5.0):
        import asyncio

        self._asyncio = asyncio
        self.service = service
        self.gateway = None
        self.loop = None
        self._ready = threading.Event()
        self._limits = limits
        self._drain_timeout_s = drain_timeout_s
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(5.0), "gateway failed to start"

    def _run(self):
        self._asyncio.run(self._amain())

    async def _amain(self):
        self.loop = self._asyncio.get_running_loop()
        self.gateway = Gateway(self.service, "127.0.0.1", 0,
                               limits=self._limits,
                               drain_timeout_s=self._drain_timeout_s)
        await self.gateway.start()
        self.port = self.gateway.port
        self._ready.set()
        await self.gateway.run_until_drained()

    def begin_drain(self):
        self.loop.call_soon_threadsafe(self.gateway.begin_drain)

    def shutdown(self):
        self.begin_drain()
        self._thread.join(timeout=10.0)
        assert not self._thread.is_alive(), "gateway failed to drain"

    def client(self, **kwargs):
        kwargs.setdefault("overall_timeout_s", 10.0)
        kwargs.setdefault("backoff_cap_s", 0.2)
        return RetryingClient("127.0.0.1", self.port, **kwargs)


def _register_toys():
    gate = threading.Event()

    def quick(x=1):
        return {"doubled": x * 2}

    def failing():
        raise ValueError("injected failure")

    def gated():
        gate.wait(10.0)
        return "released"

    def stepper(context=None, steps=3, step_s=0.0):
        for i in range(int(steps)):
            if context is not None and context.should_stop():
                return {"stopped_at": i}
            if step_s:
                time.sleep(step_s)
            if context is not None:
                context.progress(step=i + 1, total=int(steps))
        return {"stopped_at": None, "steps": int(steps)}

    stepper.accepts_context = True

    register_runner("_gw_quick", quick)
    register_runner("_gw_failing", failing)
    register_runner("_gw_gated", gated)
    register_runner("_gw_stepper", stepper)
    return gate


@pytest.fixture
def served():
    gate = _register_toys()
    service = ExperimentService(store=False, workers=2, queue_limit=4)
    gw = GatewayThread(service)
    try:
        yield gw, gate
    finally:
        gate.set()
        gw.shutdown()


def _raw(port, payload, timeout=5.0):
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=timeout) as sock:
        sock.sendall(payload)
        sock.settimeout(timeout)
        chunks = b""
        try:
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks += chunk
        except socket.timeout:
            pass
        return chunks


class TestEndpoints:
    def test_submit_status_result_roundtrip(self, served):
        gw, _ = served
        client = gw.client()
        snap = client.submit("_gw_quick", {"x": 21})
        assert snap["attached"] is False
        final = client.wait(snap["id"], timeout_s=10.0)
        assert final["state"] == "done"
        assert final["result"] == {"doubled": 42}

    def test_health_ready_stats(self, served):
        gw, _ = served
        client = gw.client()
        assert client.health() == {"ok": True}
        assert client.ready() is True
        stats = client.server_stats()
        assert "gateway" in stats and "done" in stats
        assert stats["gateway"]["draining"] is False

    def test_unknown_runner_is_400_with_detail(self, served):
        gw, _ = served
        status, _, payload = gw.client().request(
            "POST", "/jobs", body={"runner": "_gw_nope"})
        assert status == 400
        assert payload["error"] == "unknown runner"
        assert "_gw_nope" in payload["detail"]

    def test_missing_job_is_404(self, served):
        gw, _ = served
        with pytest.raises(GatewayError) as err:
            gw.client().job(424242)
        assert err.value.status == 404

    def test_failed_job_reports_error(self, served):
        gw, _ = served
        client = gw.client()
        final = client.wait(client.submit("_gw_failing")["id"])
        assert final["state"] == "failed"
        assert "injected failure" in final["error"]

    def test_cancel_endpoint(self, served):
        gw, gate = served
        client = gw.client()
        job_id = client.submit("_gw_gated")["id"]
        out = client.cancel(job_id)
        assert out["cancelled"] is True
        gate.set()
        assert client.wait(job_id)["state"] == "cancelled"


class TestIdempotency:
    def test_retry_attaches_to_live_job(self, served):
        gw, gate = served
        client = gw.client()
        first = client.submit("_gw_gated", {})
        second = client.submit("_gw_gated", {})
        assert second["id"] == first["id"]
        assert second["attached"] is True
        gate.set()
        client.wait(first["id"])

    def test_done_job_attaches_but_failed_does_not(self, served):
        gw, _ = served
        client = gw.client()
        done_id = client.submit("_gw_quick", {"x": 5})["id"]
        client.wait(done_id)
        assert client.submit("_gw_quick", {"x": 5})["id"] == done_id

        failed_id = client.submit("_gw_failing")["id"]
        client.wait(failed_id)
        retry = client.submit("_gw_failing")
        assert retry["id"] != failed_id
        assert retry["attached"] is False
        client.wait(retry["id"])

    def test_param_order_does_not_fork_jobs(self, served):
        gw, gate = served
        client = gw.client()
        a = client.submit("_gw_stepper", {"steps": 2, "step_s": 0.2})
        b = client.submit("_gw_stepper", {"step_s": 0.2, "steps": 2})
        assert a["id"] == b["id"]
        gate.set()
        client.wait(a["id"])


class TestFailureMapping:
    def test_garbage_start_line_is_structured_400(self, served):
        gw, _ = served
        data = _raw(gw.port, b"GARBAGE\r\n\r\n")
        head, _, body = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 400")
        assert json.loads(body)["error"] == "malformed request line"

    def test_oversized_body_is_413(self, served):
        gw, _ = served
        data = _raw(gw.port,
                    b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999"
                    b"\r\n\r\n")
        assert data.startswith(b"HTTP/1.1 413")

    def test_bad_json_body_is_400(self, served):
        gw, _ = served
        body = b"this is not json"
        data = _raw(gw.port,
                    b"POST /jobs HTTP/1.1\r\nConnection: close\r\n"
                    b"Content-Length: "
                    + str(len(body)).encode() + b"\r\n\r\n" + body)
        head, _, payload = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 400")
        assert json.loads(payload)["error"] == "malformed job request"

    def test_saturated_service_is_429_with_retry_after(self):
        gate = _register_toys()
        service = ExperimentService(store=False, workers=1, queue_limit=1)
        gw = GatewayThread(service)
        try:
            client = gw.client()
            client.submit("_gw_gated")  # occupies the single worker
            codes = set()
            for i in range(4):
                status, headers, _ = client.request(
                    "POST", "/jobs",
                    body={"runner": "_gw_quick", "params": {"x": i}},
                    retry_busy=False)
                codes.add(status)
                if status == 429:
                    assert any(k.lower() == "retry-after"
                               for k in headers), headers
            assert 429 in codes
        finally:
            gate.set()
            gw.shutdown()

    def test_draining_gateway_rejects_submissions_503(self, served):
        gw, gate = served
        client = gw.client()
        job_id = client.submit("_gw_gated")["id"]
        gw.begin_drain()
        deadline = time.monotonic() + 5.0
        while client.ready() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert client.ready() is False
        status, headers, _ = client.request(
            "POST", "/jobs", body={"runner": "_gw_quick"},
            retry_busy=False)
        assert status == 503
        assert any(k.lower() == "retry-after" for k in headers)
        gate.set()
        assert client.wait(job_id)["state"] == "done"


class TestEventStream:
    def test_progress_events_then_done(self, served):
        gw, _ = served
        client = gw.client()
        job_id = client.submit("_gw_stepper", {"steps": 3})["id"]
        seen = list(client.stream_events(job_id))
        names = [name for name, _ in seen]
        assert names[0] == "snapshot" and names[-1] == "done"
        steps = [p["step"] for name, p in seen if name == "progress"]
        assert steps == [1, 2, 3]
        final = seen[-1][1]
        assert final["state"] == "done"
        assert final["result"]["stopped_at"] is None

    def test_stream_of_finished_job_closes_immediately(self, served):
        gw, _ = served
        client = gw.client()
        job_id = client.submit("_gw_quick", {"x": 2})["id"]
        client.wait(job_id)
        events = list(client.stream_events(job_id))
        assert events[-1][0] == "done"

    def test_events_for_missing_job_is_404(self, served):
        gw, _ = served
        with pytest.raises(GatewayError) as err:
            list(gw.client().stream_events(987654))
        assert err.value.status == 404

    @staticmethod
    def _open_stream(port, job_id, query=""):
        """Raw SSE subscription: returns the connected socket."""
        sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
        sock.sendall(f"GET /jobs/{job_id}/events{query} HTTP/1.1\r\n"
                     f"\r\n".encode("ascii"))
        sock.settimeout(5.0)
        head = sock.recv(64)
        assert head.startswith(b"HTTP/1.1 200"), head
        return sock

    def test_disconnect_cancels_job_when_requested(self, served):
        gw, _ = served
        client = gw.client()
        job_id = client.submit("_gw_stepper",
                               {"steps": 200, "step_s": 0.05})["id"]
        sock = self._open_stream(gw.port, job_id, "?cancel=1")
        sock.close()  # abrupt client death
        final = client.wait(job_id, timeout_s=10.0)
        assert final["state"] == "cancelled"

    def test_disconnect_without_flag_leaves_job_running(self, served):
        gw, _ = served
        client = gw.client()
        job_id = client.submit("_gw_stepper",
                               {"steps": 8, "step_s": 0.05})["id"]
        sock = self._open_stream(gw.port, job_id)
        sock.close()
        final = client.wait(job_id, timeout_s=10.0)
        assert final["state"] == "done"


class TestRetryingClient:
    def test_rides_out_a_dead_window(self):
        """Requests during an outage succeed once a server appears."""
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        gate = _register_toys()
        holder = {}

        def boot_later():
            time.sleep(0.5)
            service = ExperimentService(store=False, workers=1)
            gw = GatewayThread(service)
            # Rebind the client to wherever the late server landed.
            client.port = gw.port
            holder["gw"] = gw

        client = RetryingClient("127.0.0.1", port, overall_timeout_s=15.0,
                                backoff_cap_s=0.2, breaker_failures=3,
                                breaker_reset_s=0.2)
        booter = threading.Thread(target=boot_later)
        booter.start()
        try:
            snap = client.submit("_gw_quick", {"x": 4})
            final = client.wait(snap["id"])
            assert final["result"] == {"doubled": 8}
            assert client.stats["retries"] >= 1
            assert client.stats["breaker_trips"] >= 1
        finally:
            booter.join()
            gate.set()
            holder["gw"].shutdown()

    def test_overall_deadline_raises_unavailable(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        client = RetryingClient("127.0.0.1", port, overall_timeout_s=0.5,
                                backoff_cap_s=0.05)
        t0 = time.monotonic()
        with pytest.raises(GatewayUnavailable):
            client.health()
        assert time.monotonic() - t0 < 5.0

    def test_breaker_opens_and_half_opens(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        client = RetryingClient("127.0.0.1", port, overall_timeout_s=0.8,
                                backoff_base_s=0.01, backoff_cap_s=0.02,
                                breaker_failures=2, breaker_reset_s=0.1)
        with pytest.raises(GatewayUnavailable):
            client.health()
        assert client.stats["breaker_trips"] >= 1
        assert client.breaker_state in ("open", "half-open")
        time.sleep(0.15)
        assert client.breaker_state == "half-open"
        assert client.stats["breaker_probes"] >= 1

    def test_full_jitter_backoff_bounds(self):
        client = RetryingClient("127.0.0.1", 1, backoff_base_s=0.1,
                                backoff_cap_s=0.5,
                                rng=random.Random(7))
        sleeps = []
        client_sleep = time.sleep
        try:
            import repro.gateway.client as mod
            mod.time.sleep = sleeps.append
            deadline = time.monotonic() + 60.0
            for attempt in range(1, 12):
                client._backoff(attempt, deadline)
        finally:
            mod.time.sleep = client_sleep
        assert all(0.0 <= s <= 0.5 for s in sleeps), sleeps
        assert len(set(sleeps)) > 1, "jitter is not jittering"

    def test_retry_after_overrides_short_jitter(self):
        client = RetryingClient("127.0.0.1", 1, backoff_base_s=0.0001,
                                backoff_cap_s=0.0001,
                                rng=random.Random(3))
        sleeps = []
        import repro.gateway.client as mod
        real_sleep = mod.time.sleep
        try:
            mod.time.sleep = sleeps.append
            client._backoff(1, time.monotonic() + 60.0, retry_after=0.7)
        finally:
            mod.time.sleep = real_sleep
        assert sleeps and sleeps[0] >= 0.7
