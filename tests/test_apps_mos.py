"""Unit tests for the R-factor / MoS model and VoIP sessions."""

import pytest

from repro.apps.mos import (
    MosConfig,
    interruption_windows,
    mos_from_r,
    mos_score,
    r_factor,
    voip_sessions,
)


class TestRFactor:
    def test_clean_call_near_maximum(self):
        # 125 ms fixed budget, no loss: a good call.
        r = r_factor(125.0, 0.0)
        assert r == pytest.approx(94.2 - 0.024 * 125 - 11)

    def test_delay_penalty_kinks_at_177ms(self):
        below = r_factor(177.0, 0.0)
        above = r_factor(200.0, 0.0)
        # Beyond the knee both the linear and the Heaviside terms bite.
        expected = 94.2 - 0.024 * 200 - 0.11 * (200 - 177.3) - 11
        assert above == pytest.approx(expected)
        assert below > above

    def test_loss_uses_natural_log(self):
        """At 100% loss the call must be impossible (MoS 1)."""
        r = r_factor(177.0, 1.0)
        assert r < 0  # only true with ln, not log10
        assert mos_from_r(r) == 1.0

    def test_interruption_threshold_reachable(self):
        """MoS < 2 at ~1/3 loss — the paper's interruption regime."""
        assert mos_score(177.0, 0.40) < 2.0
        assert mos_score(177.0, 0.05) > 3.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            r_factor(100.0, 1.5)
        with pytest.raises(ValueError):
            r_factor(-1.0, 0.0)


class TestMos:
    def test_extremes(self):
        assert mos_from_r(-5.0) == 1.0
        assert mos_from_r(150.0) == 4.5

    def test_monotone_in_r(self):
        values = [mos_from_r(r) for r in (10, 30, 50, 70, 90)]
        assert values == sorted(values)

    def test_known_point(self):
        # R = 79.6: a commonly quoted "good" operating point.
        assert mos_from_r(79.6) == pytest.approx(4.0, abs=0.05)


class TestMosConfig:
    def test_paper_delay_budget(self):
        config = MosConfig()
        assert config.fixed_delay_ms == pytest.approx(125.0)
        assert config.wireless_budget_ms == pytest.approx(52.0)


class TestSessions:
    def test_interruption_flags(self):
        assert interruption_windows([3.0, 1.5, 2.5]) == \
            [False, True, False]

    def test_session_lengths(self):
        mos = [3, 3, 3, 1, 3, 3, 1, 1, 3]
        assert voip_sessions(mos, window_s=3.0) == [9.0, 6.0, 3.0]

    def test_all_good_single_session(self):
        assert voip_sessions([3, 3, 3, 3], window_s=3.0) == [12.0]

    def test_all_bad_no_sessions(self):
        assert voip_sessions([1, 1, 1], window_s=3.0) == []

    def test_empty(self):
        assert voip_sessions([]) == []
