"""Unit tests for the six handoff policies and the evaluator."""

import numpy as np
import pytest

from repro.handoff.base import PerSecondObservation
from repro.handoff.evaluator import evaluate_policy
from repro.handoff.policies import (
    AllBsesPolicy,
    BestBsPolicy,
    BrrPolicy,
    HistoryPolicy,
    RssiPolicy,
    StickyPolicy,
    standard_policies,
)
from repro.testbeds.traces import ProbeTrace


def obs(second, heard=None, rssi=None, position=(0.0, 0.0)):
    return PerSecondObservation(
        second=second,
        beacons_heard=heard or {},
        beacons_expected=10,
        mean_rssi=rssi or {},
        position=position,
    )


def make_trace(up, down, rssi=None, bs_ids=None, slot_dt=0.1):
    up = np.asarray(up, dtype=bool)
    n_slots, n_bs = up.shape
    down = np.asarray(down, dtype=bool)
    if rssi is None:
        rssi = np.where(down, -80.0, np.nan)
    positions = np.zeros((n_slots, 2))
    positions[:, 0] = np.arange(n_slots) * 1.0
    return ProbeTrace(
        bs_ids=bs_ids or list(range(1, n_bs + 1)),
        slot_dt=slot_dt,
        up=up,
        down=down,
        rssi=rssi,
        positions=positions,
    )


class TestRssiPolicy:
    def test_picks_strongest(self):
        policy = RssiPolicy()
        policy.reset()
        policy.observe(obs(0, heard={1: 5, 2: 5},
                           rssi={1: -70.0, 2: -85.0}))
        assert policy.choose() == 1

    def test_exponential_average_resists_blips(self):
        policy = RssiPolicy(alpha=0.5)
        policy.reset()
        for sec in range(5):
            policy.observe(obs(sec, heard={1: 5, 2: 5},
                               rssi={1: -70.0, 2: -85.0}))
        # One strong blip from BS 2 must not immediately win.
        policy.observe(obs(5, heard={1: 5, 2: 5},
                           rssi={1: -70.0, 2: -60.0}))
        assert policy.choose() == 1

    def test_stale_bs_forgotten(self):
        policy = RssiPolicy(stale_after=3)
        policy.reset()
        policy.observe(obs(0, heard={1: 5}, rssi={1: -60.0}))
        for sec in range(1, 5):
            policy.observe(obs(sec, heard={2: 5}, rssi={2: -90.0}))
        assert policy.choose() == 2

    def test_no_beacons_no_choice(self):
        policy = RssiPolicy()
        policy.reset()
        assert policy.choose() is None


class TestBrrPolicy:
    def test_picks_highest_ratio(self):
        policy = BrrPolicy()
        policy.reset()
        policy.observe(obs(0, heard={1: 9, 2: 3}))
        assert policy.choose() == 1

    def test_silence_decays_average(self):
        policy = BrrPolicy(alpha=0.5)
        policy.reset()
        policy.observe(obs(0, heard={1: 10}))
        for sec in range(1, 3):
            policy.observe(obs(sec, heard={2: 6}))
        assert policy.choose() == 2

    def test_current_average_exposed(self):
        policy = BrrPolicy(alpha=0.5)
        policy.reset()
        policy.observe(obs(0, heard={1: 10}))
        assert policy.current_average(1) == pytest.approx(0.5)
        assert policy.current_average(9) == 0.0


class TestStickyPolicy:
    def test_sticks_despite_stronger_alternative(self):
        policy = StickyPolicy(timeout_s=3)
        policy.reset()
        policy.observe(obs(0, heard={1: 5}, rssi={1: -80.0}))
        assert policy.choose() == 1
        policy.observe(obs(1, heard={1: 1, 2: 9},
                           rssi={1: -88.0, 2: -60.0}))
        assert policy.choose() == 1  # still hears BS 1

    def test_switches_after_silence_timeout(self):
        policy = StickyPolicy(timeout_s=3)
        policy.reset()
        policy.observe(obs(0, heard={1: 5}, rssi={1: -80.0}))
        for sec in range(1, 4):
            policy.observe(obs(sec, heard={2: 5}, rssi={2: -70.0}))
        assert policy.choose() == 2


class TestHistoryPolicy:
    def test_uses_trained_location_scores(self):
        # BS 1 dominant in the first half of the path, BS 2 in the
        # second; 40 s trace at 1 m/s along x.
        n_slots, n_bs = 400, 2
        up = np.zeros((n_slots, n_bs), dtype=bool)
        down = np.zeros((n_slots, n_bs), dtype=bool)
        up[:200, 0] = down[:200, 0] = True
        up[200:, 1] = down[200:, 1] = True
        trace = make_trace(up, down)
        policy = HistoryPolicy(bin_m=10.0)
        policy.train([trace])
        policy.reset()
        policy.observe(obs(0, position=(5.0, 0.0)))
        assert policy.choose() == 1
        policy.observe(obs(1, position=(350.0, 0.0)))
        assert policy.choose() == 2

    def test_untrained_falls_back_to_rssi(self):
        policy = HistoryPolicy()
        policy.reset()
        policy.observe(obs(0, heard={3: 5}, rssi={3: -70.0},
                           position=(9999.0, 9999.0)))
        assert policy.choose() == 3


class TestOracles:
    def test_bestbs_uses_future_second(self):
        # BS 1 good in second 0, BS 2 good in second 1.
        up = np.zeros((20, 2), dtype=bool)
        down = np.zeros((20, 2), dtype=bool)
        up[:10, 0] = down[:10, 0] = True
        up[10:, 1] = down[10:, 1] = True
        trace = make_trace(up, down)
        policy = BestBsPolicy()
        policy.reset()
        policy.attach_trace(trace)
        assert policy.choose() == 1  # second 0, knows the future
        policy.observe(obs(0))
        assert policy.choose() == 2  # second 1

    def test_allbses_flags(self):
        policy = AllBsesPolicy()
        assert policy.uses_all_bs
        assert policy.choose() is None


class TestEvaluator:
    def test_hard_handoff_counts_only_associated_bs(self):
        # BS 1 passes everything; BS 2 nothing.  Policy locked to BS 1
        # after the first second; first second has no association.
        up = np.zeros((30, 2), dtype=bool)
        down = np.zeros((30, 2), dtype=bool)
        up[:, 0] = down[:, 0] = True
        trace = make_trace(up, down)
        outcome = evaluate_policy(trace, BrrPolicy())
        # Second 0: unassociated (no prior observation): 0 packets.
        # Seconds 1-2: 10 up + 10 down each.
        assert outcome.packets_delivered == 40
        assert outcome.association[0] == -1
        assert list(outcome.association[1:]) == [1, 1]

    def test_allbses_counts_any_bs(self):
        up = np.zeros((20, 2), dtype=bool)
        down = np.zeros((20, 2), dtype=bool)
        up[:, 0] = True   # BS 1 hears all uplink
        down[:, 1] = True  # BS 2 delivers all downlink
        trace = make_trace(up, down)
        outcome = evaluate_policy(trace, AllBsesPolicy())
        assert outcome.packets_delivered == 40

    def test_window_reception_ratio(self):
        up = np.zeros((20, 1), dtype=bool)
        down = np.zeros((20, 1), dtype=bool)
        up[:10] = True  # only the uplink of the first second
        trace = make_trace(up, down, bs_ids=[1])
        outcome = evaluate_policy(trace, AllBsesPolicy())
        ratios = outcome.window_reception_ratio(1.0)
        assert ratios[0] == pytest.approx(0.5)
        assert ratios[1] == pytest.approx(0.0)

    def test_handoff_count(self):
        up = np.zeros((40, 2), dtype=bool)
        down = np.zeros((40, 2), dtype=bool)
        down[:20, 0] = True
        down[20:, 1] = True
        up[:20, 0] = True
        up[20:, 1] = True
        trace = make_trace(up, down)
        outcome = evaluate_policy(trace, BrrPolicy())
        assert outcome.handoff_count >= 1

    def test_standard_policies_composition(self):
        policies = standard_policies()
        names = [p.name for p in policies]
        assert names == ["RSSI", "BRR", "Sticky", "BestBS", "AllBSes"]
        up = np.zeros((10, 1), dtype=bool)
        trained = standard_policies(
            history_training=[make_trace(up, up, bs_ids=[1])]
        )
        assert [p.name for p in trained] == [
            "RSSI", "BRR", "Sticky", "History", "BestBS", "AllBSes",
        ]
