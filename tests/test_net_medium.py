"""Unit tests for the wireless medium and the backplane."""

import pytest

from repro.net.backplane import Backplane
from repro.net.channel import BernoulliLoss
from repro.net.medium import LinkTable, WirelessMedium
from repro.net.packet import Ack, DataPacket, Direction
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


class Node:
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []
        self.completed = []

    def on_receive(self, frame, transmitter_id):
        self.received.append((frame, transmitter_id))

    def on_transmit_complete(self, frame):
        self.completed.append(frame)


def _setup(loss=0.0, n_nodes=3):
    sim = Simulator()
    rngs = RngRegistry(5)
    table = LinkTable()
    nodes = [Node(i) for i in range(n_nodes)]
    for a in range(n_nodes):
        for b in range(n_nodes):
            if a != b:
                table.set_link(a, b, BernoulliLoss(
                    loss, rngs.stream("l", a, b)))
    medium = WirelessMedium(sim, table, rngs.stream("m"))
    for node in nodes:
        medium.attach(node)
    return sim, medium, nodes


def _packet(src, dst, pkt_id=0, size=500):
    return DataPacket(pkt_id=pkt_id, src=src, dst=dst,
                      direction=Direction.UPSTREAM, size_bytes=size)


class TestWirelessMedium:
    def test_broadcast_reaches_all_reachable_nodes(self):
        sim, medium, nodes = _setup(loss=0.0)
        medium.send(0, _packet(0, 1))
        sim.run(until=1.0)
        assert len(nodes[1].received) == 1
        assert len(nodes[2].received) == 1  # overhearing
        assert len(nodes[0].received) == 0  # not self

    def test_unreachable_pairs_never_deliver(self):
        sim = Simulator()
        rngs = RngRegistry(5)
        table = LinkTable()
        nodes = [Node(0), Node(1)]
        medium = WirelessMedium(sim, table, rngs.stream("m"))
        for node in nodes:
            medium.attach(node)
        medium.send(0, _packet(0, 1))
        sim.run(until=1.0)
        assert nodes[1].received == []

    def test_total_loss_blocks_delivery(self):
        sim, medium, nodes = _setup(loss=1.0)
        medium.send(0, _packet(0, 1))
        sim.run(until=1.0)
        assert nodes[1].received == []

    def test_airtime_includes_preamble(self):
        _, medium, _ = _setup()
        airtime = medium.airtime(500)
        assert airtime == pytest.approx(192e-6 + 500 * 8 / 1e6)

    def test_transmit_complete_callback(self):
        sim, medium, nodes = _setup()
        medium.send(0, _packet(0, 1))
        sim.run(until=1.0)
        assert len(nodes[0].completed) == 1

    def test_frames_serialize_fifo_per_sender(self):
        sim, medium, nodes = _setup()
        for i in range(5):
            medium.send(0, _packet(0, 1, pkt_id=i))
        sim.run(until=1.0)
        ids = [f.pkt_id for f, _ in nodes[1].received]
        assert ids == [0, 1, 2, 3, 4]

    def test_priority_frames_jump_queue(self):
        sim, medium, nodes = _setup()
        for i in range(3):
            medium.send(0, _packet(0, 1, pkt_id=i))
        ack = Ack(pkt_id=99, acker=0, for_src=1)
        medium.send(0, ack, priority=True)
        sim.run(until=1.0)
        kinds = [f.kind.value for f, _ in nodes[1].received]
        # The ack cannot beat the frame already in backoff but must
        # precede the remaining queued data.
        assert "ack" in kinds
        assert kinds.index("ack") <= 1

    def test_tx_counters(self):
        sim, medium, nodes = _setup()
        medium.send(0, _packet(0, 1))
        medium.send(1, _packet(1, 0))
        sim.run(until=1.0)
        assert medium.transmissions() == 2
        assert medium.transmissions(node_id=0) == 1
        assert medium.transmissions(kind="data") == 2
        assert medium.transmissions(kind="ack") == 0

    def test_carrier_sense_defers_concurrent_senders(self):
        sim, medium, nodes = _setup()
        medium.send(0, _packet(0, 1, size=1400))
        medium.send(1, _packet(1, 0, size=1400))
        sim.run(until=1.0)
        # Both frames deliver despite starting together: the second
        # sender deferred, so no collision destroyed them.
        assert len(nodes[2].received) == 2

    def test_duplicate_attach_rejected(self):
        sim, medium, nodes = _setup()
        with pytest.raises(ValueError):
            medium.attach(nodes[0])

    def test_unknown_transmitter_rejected(self):
        sim, medium, _ = _setup()
        with pytest.raises(KeyError):
            medium.send(99, _packet(99, 0))


class TestLinkTable:
    def test_symmetric_registration(self):
        table = LinkTable()
        process = BernoulliLoss(0.5, RngRegistry(1).stream("x"))
        table.set_link(1, 2, process, symmetric=True)
        assert table.get(1, 2) is process
        assert table.get(2, 1) is process

    def test_factory_creates_on_demand(self):
        calls = []

        def factory(src, dst):
            calls.append((src, dst))
            return BernoulliLoss(0.0, RngRegistry(1).stream("f", src, dst))

        table = LinkTable(factory=factory)
        assert table.get(3, 4) is not None
        assert table.get(3, 4) is not None  # cached
        assert calls == [(3, 4)]

    def test_loss_rate_for_missing_link_is_one(self):
        table = LinkTable()
        assert table.loss_rate(1, 2, 0.0) == 1.0


class TestBackplane:
    def test_delivery_after_serialization_and_latency(self):
        sim = Simulator()
        bp = Backplane(sim, bandwidth_bps=1e6, latency_s=0.01)
        bp.connect(1)
        bp.connect(2)
        seen = []
        arrival = bp.send(1, 2, "msg", 1000, seen.append)
        assert arrival == pytest.approx(1000 * 8 / 1e6 + 0.01)
        sim.run(until=1.0)
        assert seen == ["msg"]

    def test_uplink_serializes_messages(self):
        sim = Simulator()
        bp = Backplane(sim, bandwidth_bps=1e6, latency_s=0.0)
        for bs in (1, 2):
            bp.connect(bs)
        first = bp.send(1, 2, "a", 1000, lambda m: None)
        second = bp.send(1, 2, "b", 1000, lambda m: None)
        assert second == pytest.approx(first + 1000 * 8 / 1e6)

    def test_unknown_member_dropped_and_counted(self):
        # PR 7 degraded-operation contract: an unreachable peer is a
        # counted drop, not an exception (see tests/test_net_backplane
        # for the full edge-case suite).
        sim = Simulator()
        bp = Backplane(sim)
        bp.connect(1)
        assert bp.send(1, 9, "x", 10, lambda m: None) is None
        assert bp.dropped == {"relay": 1}
        assert bp.total_bytes() == 0

    def test_byte_accounting_by_category(self):
        sim = Simulator()
        bp = Backplane(sim)
        bp.connect(1)
        bp.connect(2)
        bp.send(1, 2, "x", 500, lambda m: None, category="relay")
        bp.send(1, 2, "y", 300, lambda m: None, category="salvage")
        assert bp.total_bytes("relay") == 500
        assert bp.total_bytes("salvage") == 300
        assert bp.total_bytes() == 800
