"""Property-based tests (hypothesis) for core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import empirical_cdf
from repro.apps.mos import mos_from_r, mos_score, r_factor, voip_sessions
from repro.core.relaying import RelayContext, make_strategy
from repro.core.retransmit import AdaptiveRetxTimer
from repro.handoff.sessions import (
    adequacy_runs,
    session_lengths,
    time_weighted_median_session,
)
from repro.sim.engine import Simulator

probabilities = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def relay_scenes(draw):
    """A random relaying scene: K auxiliaries with random link qualities."""
    k = draw(st.integers(min_value=1, max_value=8))
    table = {}
    p_src_dst = draw(probabilities)
    table[(100, 200)] = p_src_dst
    table[(200, 100)] = p_src_dst
    for aux in range(1, k + 1):
        table[(100, aux)] = draw(probabilities)
        table[(aux, 200)] = draw(probabilities)
        table[(200, aux)] = draw(probabilities)
    self_id = draw(st.integers(min_value=1, max_value=k))

    def p(a, b):
        if a == b:
            return 1.0
        return table.get((a, b), 0.0)

    return RelayContext(self_id=self_id, aux_ids=tuple(range(1, k + 1)),
                        src=100, dst=200, p=p)


class TestRelayStrategyProperties:
    @given(relay_scenes(),
           st.sampled_from(["vifi", "not-g1", "not-g2", "not-g3"]))
    @settings(max_examples=300)
    def test_probability_is_valid(self, ctx, name):
        r = make_strategy(name).relay_probability(ctx)
        assert 0.0 <= r <= 1.0
        assert math.isfinite(r)

    @given(relay_scenes())
    @settings(max_examples=200)
    def test_vifi_expected_relays_bounded_by_one(self, ctx):
        """Eq. 1: the expected number of relays never exceeds one
        (clipping at probability 1 can only reduce it), except the
        degenerate no-information fallback."""
        from repro.core.relaying import contention_probability
        strategy = make_strategy("vifi")
        denominator = sum(
            contention_probability(ctx.p, ctx.src, ctx.dst, aux)
            * ctx.p(aux, ctx.dst)
            for aux in ctx.aux_ids
        )
        if denominator <= 0:
            return  # fallback regime, covered elsewhere
        expected = sum(
            contention_probability(ctx.p, ctx.src, ctx.dst, aux)
            * make_strategy("vifi").relay_probability(
                RelayContext(self_id=aux, aux_ids=ctx.aux_ids,
                             src=ctx.src, dst=ctx.dst, p=ctx.p))
            for aux in ctx.aux_ids
        )
        assert expected <= 1.0 + 1e-9


class TestMosProperties:
    @given(st.floats(min_value=0.0, max_value=500.0), probabilities)
    @settings(max_examples=300)
    def test_mos_in_range(self, delay, loss):
        assert 1.0 <= mos_score(delay, loss) <= 4.5

    @given(st.floats(min_value=0.0, max_value=400.0), probabilities,
           probabilities)
    @settings(max_examples=200)
    def test_mos_monotone_in_loss(self, delay, l1, l2):
        lo, hi = sorted((l1, l2))
        assert mos_score(delay, lo) >= mos_score(delay, hi) - 1e-9

    @given(st.floats(min_value=0.0, max_value=400.0),
           st.floats(min_value=0.0, max_value=400.0), probabilities)
    @settings(max_examples=200)
    def test_mos_monotone_in_delay(self, d1, d2, loss):
        lo, hi = sorted((d1, d2))
        assert mos_score(lo, loss) >= mos_score(hi, loss) - 1e-9

    @given(st.floats(min_value=-50, max_value=150))
    def test_mos_from_r_bounds(self, r):
        assert 1.0 <= mos_from_r(r) <= 4.5


class TestSessionProperties:
    @given(st.lists(st.booleans(), max_size=300))
    def test_runs_partition_true_flags(self, flags):
        runs = adequacy_runs(flags)
        assert sum(length for _, length in runs) == sum(flags)
        for start, length in runs:
            assert all(flags[start:start + length])
            if start > 0:
                assert not flags[start - 1]
            end = start + length
            if end < len(flags):
                assert not flags[end]

    @given(st.lists(st.booleans(), max_size=300),
           st.floats(min_value=0.1, max_value=10.0))
    def test_session_time_conserved(self, flags, window):
        lengths = session_lengths(flags, window_s=window)
        assert math.isclose(
            math.fsum(lengths), window * sum(flags), abs_tol=1e-9
        )

    @given(st.lists(st.floats(min_value=0.1, max_value=1e4),
                    max_size=100))
    def test_median_within_sample_range(self, lengths):
        med = time_weighted_median_session(lengths)
        if lengths:
            assert min(lengths) <= med <= max(lengths)
        else:
            assert med == 0.0

    @given(st.lists(st.floats(min_value=1.0, max_value=4.5),
                    max_size=200),
           st.floats(min_value=1.0, max_value=4.5))
    def test_voip_sessions_time_bounded(self, mos, threshold):
        sessions = voip_sessions(mos, window_s=3.0, threshold=threshold)
        assert math.fsum(sessions) <= 3.0 * len(mos) + 1e-9
        assert all(s > 0 for s in sessions)


class TestTimerProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=10.0),
                    min_size=1, max_size=200))
    def test_timeout_within_observed_range(self, samples):
        timer = AdaptiveRetxTimer(floor_s=0.0, percentile=99.0,
                                  window=500)
        for s in samples:
            timer.add_sample(s)
        assert min(samples) <= timer.timeout() <= max(samples)

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0),
                    min_size=1, max_size=100),
           st.integers(min_value=1, max_value=20))
    def test_window_bounds_memory(self, samples, window):
        timer = AdaptiveRetxTimer(floor_s=0.0, window=window)
        for s in samples:
            timer.add_sample(s)
        assert timer.sample_count == min(len(samples), window)


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    max_size=50))
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestCdfProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=200))
    def test_cdf_monotone_and_normalized(self, values):
        xs, ys = empirical_cdf(values)
        assert list(xs) == sorted(xs)
        assert list(ys) == sorted(ys)
        assert ys[-1] == 1.0
