"""The durable result store: records, keys, corruption, concurrency.

Workers live at module level (process pickling).  The corruption tests
damage stored bytes directly — every damaged read must surface as a
detected miss (quarantine + recompute), never as an exception or a
wrong value.
"""

import json
import multiprocessing
import os
import pickle
import time

import numpy as np
import pytest

from repro.core.protocol import ViFiConfig
from repro.store import (
    CODE_VERSION,
    MAGIC,
    MISS,
    SCHEMA_VERSION,
    ResultStore,
    StoreCorruption,
    Uncacheable,
    canonical_token,
    read_record,
    resolve_store,
    result_key,
    set_default_store,
    write_record,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


# ----------------------------------------------------------------------
# Record format
# ----------------------------------------------------------------------

class TestRecordFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "entry.rec"
        payload = {"rates": [0.1, 0.2], "n": 3, "none": None}
        write_record(path, payload, key="k1")
        assert read_record(path, expected_key="k1") == payload

    def test_missing_file_is_plain_miss(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_record(tmp_path / "absent.rec")

    def test_key_mismatch_detected(self, tmp_path):
        path = tmp_path / "entry.rec"
        write_record(path, 42, key="k1")
        with pytest.raises(StoreCorruption, match="key mismatch"):
            read_record(path, expected_key="other")

    def test_byte_flip_detected_at_every_region(self, tmp_path):
        """Magic, header, and payload corruption are all caught."""
        path = tmp_path / "entry.rec"
        write_record(path, list(range(100)), key="k1")
        pristine = path.read_bytes()
        # One flip in the magic, one in the header, several through
        # the payload including first and last byte.
        offsets = [0, len(MAGIC) + 2,
                   len(pristine) - 1, len(pristine) // 2,
                   len(pristine) - 40]
        for offset in offsets:
            data = bytearray(pristine)
            data[offset] ^= 0x01
            path.write_bytes(bytes(data))
            with pytest.raises(StoreCorruption):
                read_record(path, expected_key="k1")
        path.write_bytes(pristine)  # untouched copy still reads
        assert read_record(path, expected_key="k1") == list(range(100))

    def test_truncation_detected_at_every_length(self, tmp_path):
        path = tmp_path / "entry.rec"
        write_record(path, b"x" * 256, key="k1")
        pristine = path.read_bytes()
        for keep in (0, 4, len(MAGIC), len(MAGIC) + 10,
                     len(pristine) - 1):
            path.write_bytes(pristine[:keep])
            with pytest.raises(StoreCorruption):
                read_record(path, expected_key="k1")

    def test_schema_mismatch_detected(self, tmp_path):
        """A crafted header from a future schema is rejected."""
        path = tmp_path / "entry.rec"
        blob = pickle.dumps("value")
        import hashlib
        header = json.dumps({
            "schema": SCHEMA_VERSION + 1, "key": "k1",
            "sha256": hashlib.sha256(blob).hexdigest(),
            "length": len(blob),
        }).encode() + b"\n"
        path.write_bytes(MAGIC + header + blob)
        with pytest.raises(StoreCorruption, match="schema mismatch"):
            read_record(path, expected_key="k1")

    def test_atomic_write_replaces_no_temp_left(self, tmp_path):
        path = tmp_path / "entry.rec"
        write_record(path, 1, key="k")
        write_record(path, 2, key="k")
        assert read_record(path, expected_key="k") == 2
        leftovers = [p for p in os.listdir(tmp_path)
                     if p.startswith(".tmp-")]
        assert leftovers == []


# ----------------------------------------------------------------------
# Canonical tokens and key hygiene
# ----------------------------------------------------------------------

class TestKeyHygiene:
    def test_primitive_types_are_distinct(self):
        tokens = [canonical_token(v)
                  for v in (True, 1, "1", 1.0, None, b"1")]
        assert len({json.dumps(t) for t in tokens}) == len(tokens)

    def test_dict_order_is_irrelevant(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert canonical_token(a) == canonical_token(b)

    def test_list_and_tuple_tokenize_identically(self):
        assert canonical_token([1, 2]) == canonical_token((1, 2))

    def test_numpy_array_content_addressed(self):
        a = np.arange(5, dtype=np.float64)
        b = np.arange(5, dtype=np.float64)
        c = np.arange(5, dtype=np.float32)
        assert canonical_token(a) == canonical_token(b)
        assert canonical_token(a) != canonical_token(c)
        b[3] = 99.0
        assert canonical_token(a) != canonical_token(b)

    def test_uncacheable_objects_raise(self):
        class Opaque:
            pass

        with pytest.raises(Uncacheable):
            canonical_token(Opaque())

    def test_every_config_field_changes_the_key(self):
        """Any ViFiConfig field change lands on a different entry."""
        from dataclasses import fields, replace

        base = ViFiConfig()
        base_key = result_key("sweep", base, 0)
        seen = {base_key}
        for field in fields(ViFiConfig):
            value = getattr(base, field.name)
            if isinstance(value, bool):
                bumped = not value
            elif isinstance(value, int):
                bumped = value + 1
            elif isinstance(value, float):
                bumped = value + 0.5
            elif isinstance(value, str):
                bumped = value + "-x"
            else:  # pragma: no cover - future field types
                continue
            key = result_key("sweep", replace(base,
                                              **{field.name: bumped}), 0)
            assert key not in seen, (
                f"changing {field.name} did not change the key"
            )
            seen.add(key)

    def test_seed_and_kind_change_the_key(self):
        assert result_key("sweep", 0) != result_key("sweep", 1)
        assert result_key("sweep", 0) != result_key("other", 0)

    def test_version_bumps_change_the_key(self):
        base = result_key("sweep", 0)
        assert result_key("sweep", 0,
                          schema_version=SCHEMA_VERSION + 1) != base
        assert result_key("sweep", 0,
                          code_version=CODE_VERSION + ".next") != base

    def test_testbed_cache_tokens_cover_identity(self):
        from repro.testbeds.dieselnet import DieselNetTestbed
        from repro.testbeds.vanlan import VanLanTestbed

        assert result_key("t", VanLanTestbed(seed=0)) \
            != result_key("t", VanLanTestbed(seed=1))
        assert result_key("t", DieselNetTestbed(channel=1, seed=0)) \
            != result_key("t", DieselNetTestbed(channel=6, seed=0))


# ----------------------------------------------------------------------
# The store: counters, quarantine, read-only, degradation
# ----------------------------------------------------------------------

class TestResultStore:
    def test_get_put_roundtrip_and_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("t", 1)
        assert store.get(key) is MISS
        assert store.put(key, {"v": 1})
        assert store.get(key) == {"v": 1}
        assert store.get(key, default=None) == {"v": 1}
        snap = store.stats.snapshot()
        assert snap["hits"] == 2 and snap["misses"] == 1
        assert snap["writes"] == 1

    def test_none_is_a_legitimate_value(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("t", "none")
        store.put(key, None)
        assert store.get(key) is None
        assert store.get(key) is not MISS

    def test_get_or_compute_counts_one_hit_or_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("t", 2)
        calls = []
        assert store.get_or_compute(key, lambda: calls.append(1) or 7) == 7
        assert store.get_or_compute(key, lambda: calls.append(1) or 7) == 7
        assert len(calls) == 1
        snap = store.stats.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1

    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("t", 3)
        store.put(key, "good")
        path = store.object_path(key)
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF
        open(path, "wb").write(bytes(data))
        assert store.get_or_compute(key, lambda: "recomputed") \
            == "recomputed"
        snap = store.stats.snapshot()
        assert snap["verify_failures"] == 1
        assert snap["quarantined"] == 1
        assert store.quarantine_count() == 1
        # Healed: the recomputed entry serves warm.
        assert store.get(key) == "recomputed"

    def test_read_only_serves_hits_never_writes(self, tmp_path):
        writer = ResultStore(tmp_path)
        key = result_key("t", 4)
        writer.put(key, 11)
        reader = ResultStore(tmp_path, read_only=True)
        assert reader.get(key) == 11
        other = result_key("t", 5)
        assert reader.get_or_compute(other, lambda: 22) == 22
        assert reader.stats.write_skips == 1
        assert writer.get(other) is MISS  # nothing was written

    def test_unusable_root_degrades_not_raises(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("file, not dir")
        store = ResultStore(blocker / "store")
        key = result_key("t", 6)
        assert store.get(key) is MISS
        assert store.get_or_compute(key, lambda: 33) == 33
        assert not store.put(key, 33)
        assert store.stats.degraded
        assert store.entry_count() == 0

    def test_verify_all_quarantines_only_bad_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = [result_key("t", i) for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, i)
        path = store.object_path(keys[1])
        data = bytearray(open(path, "rb").read())
        data[-2] ^= 0x10
        open(path, "wb").write(bytes(data))
        ok, quarantined = store.verify_all()
        assert ok == 2
        assert quarantined == 1
        assert store.get(keys[0]) == 0
        assert store.get(keys[2]) == 2

    def test_clear_empties_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(result_key("t", 7), 1)
        assert store.entry_count() == 1
        store.clear()
        assert store.entry_count() == 0

    def test_resolve_store_contract(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        set_default_store(None)
        assert resolve_store(None) is None
        assert resolve_store(False) is None
        opened = resolve_store(tmp_path)
        assert isinstance(opened, ResultStore)
        assert resolve_store(opened) is opened
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path))
        ambient = resolve_store(None)
        assert isinstance(ambient, ResultStore)
        assert ambient.root == opened.root
        set_default_store(None)


# ----------------------------------------------------------------------
# Concurrency: single-flight and atomic visibility
# ----------------------------------------------------------------------

def _racing_get_or_compute(spec):
    """N processes race on one key; computes append to a marker file."""
    root, key, marker = spec
    store = ResultStore(root, lock_timeout_s=30.0)

    def compute():
        # O_APPEND writes are atomic at this size; every compute that
        # actually runs leaves exactly one line.
        fd = os.open(marker, os.O_WRONLY | os.O_CREAT | os.O_APPEND)
        os.write(fd, b"computed\n")
        os.close(fd)
        time.sleep(0.05)  # widen the race window
        return "value"

    return store.get_or_compute(key, compute)


def _record_writer(spec):
    path, n_writes = spec
    for i in range(n_writes):
        write_record(path, list(range(50 + (i % 3))), key="race")
    return "done"


@pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
class TestConcurrency:
    def test_single_flight_computes_once(self, tmp_path):
        key = result_key("race", 1)
        marker = str(tmp_path / "computes.log")
        spec = (str(tmp_path / "store"), key, marker)
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            values = pool.map(_racing_get_or_compute, [spec] * 4)
        assert values == ["value"] * 4
        with open(marker) as fh:
            computes = fh.readlines()
        assert len(computes) == 1, (
            f"single-flight failed: {len(computes)} computations ran"
        )
        store = ResultStore(str(tmp_path / "store"))
        assert store.get(key) == "value"

    def test_reader_never_sees_partial_payload(self, tmp_path):
        """Concurrent rewrites are invisible: every read verifies."""
        path = str(tmp_path / "entry.rec")
        write_record(path, list(range(50)), key="race")
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(2) as pool:
            async_result = pool.map_async(
                _record_writer, [(path, 150), (path, 150)]
            )
            deadline = time.monotonic() + 30.0
            reads = 0
            while not async_result.ready():
                value = read_record(path, expected_key="race")
                assert len(value) in (50, 51, 52)
                reads += 1
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("writers did not finish")
            assert async_result.get() == ["done", "done"]
        assert reads > 0
        # The final entry is intact and verified.
        assert len(read_record(path, expected_key="race")) in (50, 51, 52)
