"""Equivalence and regression tests for the PR 5 estimator bank.

Covers the guarantees the array-backed reception estimator
(``estimator="array"``, the default since PR 5) leans on:

* ``estimator="dict"`` keeps the historical per-node estimator
  verbatim: a full pinned VanLAN trip under otherwise-default PR 4
  knobs reproduces the PR 4 committed realization **bitwise**
  (anchored by a stored digest, so an accidental perturbation of the
  legacy path cannot slip through);
* a bank view and a dict estimator fed the same beacons and ticked at
  the same instants agree **bit for bit** on every query the protocol
  uses (``probability``, ``relay_table``, ``beacon_reports``,
  recency) — the fold arithmetic is term-for-term identical, so
  equivalence holds wherever the fold order is preserved;
* full protocol runs in array mode are a different, distributionally
  equivalent realization (identical beacon emission counts — the
  nominal due chains never touch the estimator — and delivery counts
  within a few percent), with fewer heap events: the bank's single
  per-second event replaces N per-node ``_second_tick`` events;
* the two estimator bugfixes hold in array mode and stay absent from
  the digest-anchored dict mode: the first fold window is exactly one
  second (no first-tick bias), and per-peer dissemination state stays
  bounded by the live-peer count (no unbounded growth over long
  trace-driven runs).
"""

import hashlib
import json
import random

import pytest

from repro.core.probabilities import EstimatorBank, ReceptionEstimator
from repro.core.protocol import ViFiConfig
from repro.core.relaying import RelayContext, make_strategy
from repro.experiments.common import run_protocol_cbr, vanlan_protocol
from repro.net.packet import Beacon
from repro.sim.engine import Simulator
from repro.testbeds.vanlan import VanLanTestbed

#: Digest of the PR 4 committed realization of the pinned 120 s VanLAN
#: CBR workload (trip 0, every seed 0, stock PR 4 config), captured at
#: commit f5f7dc2 before the PR 5 changes landed.  ``estimator="dict"``
#: must keep reproducing it bit for bit.
PR4_ANCHOR_EVENTS = 37676
PR4_ANCHOR_DIGEST = \
    "b9679f93717f5984b7e10e62b8c00bc3cde59f2a16ad4ce1a1592d59e1deb7eb"


def beacon(sender, incoming=None, learned=None, t=0.0):
    return Beacon(sender=sender, sent_at=t,
                  incoming=incoming or {}, learned=learned or {})


def _signature(config=None, duration_s=30.0, seed=0):
    testbed = VanLanTestbed(seed=0)
    sim, _ = vanlan_protocol(testbed, trip=0, seed=seed, config=config)
    cbr = run_protocol_cbr(sim, duration_s)
    return sim, {
        "up": sorted(cbr.up_deliveries.items()),
        "down": sorted(cbr.down_deliveries.items()),
        "tx": sorted(sim.medium.tx_count.items()),
        "delivered": sorted(sim.medium.delivered_count.items()),
    }


def _digest(signature):
    payload = json.dumps(signature, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


def _beacon_count(sig):
    return sum(c for (_, kind), c in sig["tx"] if kind == "beacon")


# ----------------------------------------------------------------------
# Unit equivalence: bank view == dict estimator, bit for bit
# ----------------------------------------------------------------------

class TestUnitEquivalence:
    IDS = (1, 2, 3, 4, 5, 6)

    def _drive_pair(self, seed=0, seconds=12, stale_s=5.0):
        """One bank view and one dict estimator fed identical input.

        Beacons are randomized over a six-node universe; both
        estimators tick at every integer second, so the fold windows —
        and therefore every fold input — line up exactly.
        """
        bank = EstimatorBank(self.IDS, beacons_per_second=10,
                             stale_s=stale_s)
        banked = bank.view(1)
        legacy = ReceptionEstimator(1, beacons_per_second=10,
                                    stale_s=stale_s)
        rng = random.Random(seed)
        events = []
        for second in range(seconds):
            for k in range(rng.randrange(3, 12)):
                sender = rng.choice(self.IDS[1:])
                incoming = {
                    peer: round(rng.random(), 3)
                    for peer in rng.sample(self.IDS, rng.randrange(0, 4))
                    if peer != sender
                }
                learned = {
                    peer: round(rng.random(), 3)
                    for peer in rng.sample(self.IDS, rng.randrange(0, 3))
                    if peer != sender
                }
                events.append((second + rng.random(),
                               beacon(sender, incoming, learned)))
        events.sort(key=lambda e: e[0])
        tick = 1.0
        for t, frame in events:
            while tick <= t:
                bank.tick_second(tick)
                legacy.tick_second(tick)
                yield banked, legacy, tick
                tick += 1.0
            banked.on_beacon(frame, t)
            legacy.on_beacon(frame, t)
            yield banked, legacy, t

    def _assert_queries_equal(self, banked, legacy, now):
        for a in self.IDS:
            for b in self.IDS:
                assert banked.probability(a, b, now) == \
                    legacy.probability(a, b, now)
            assert banked.incoming_probability(a) == \
                legacy.incoming_probability(a)
        assert banked.incoming_estimates() == legacy.incoming_estimates()
        b_inc, b_learned = banked.beacon_reports(now)
        l_inc, l_learned = legacy.beacon_reports(now)
        assert dict(b_inc) == dict(l_inc)
        assert dict(b_learned) == dict(l_learned)
        # Recency within the staleness horizon (beyond it the bank has
        # pruned — and the dict mode answers False anyway through the
        # freshness check in every probability query).
        assert sorted(banked.peers_heard_within(now, 2.0)) == \
            sorted(legacy.peers_heard_within(now, 2.0))
        for peer in self.IDS:
            assert banked.heard_recently(peer, now, 1.5) == \
                legacy.heard_recently(peer, now, 1.5)

    def test_query_surface_is_bitwise_equal(self):
        checked = 0
        for banked, legacy, now in self._drive_pair(seed=3):
            self._assert_queries_equal(banked, legacy, now)
            checked += 1
        assert checked > 50

    def test_relay_tables_are_bitwise_equal(self):
        src, dst = 2, 1
        aux_ids = (3, 4, 5)
        strategies = [make_strategy(n) for n in ("vifi", "not-g2")]
        builds = 0
        for banked, legacy, now in self._drive_pair(seed=11):
            table_b = banked.relay_table(aux_ids, src, dst, now)
            table_l = legacy.relay_table(aux_ids, src, dst, now)
            assert table_b.contention.tolist() == \
                table_l.contention.tolist()
            assert table_b.p_to_dst.tolist() == table_l.p_to_dst.tolist()
            assert table_b.denominator == table_l.denominator
            assert table_b.total_contention == table_l.total_contention
            assert table_b.own_delivery(3) == table_l.own_delivery(3)
            for strategy in strategies:
                assert strategy.relay_probability(RelayContext(
                    self_id=3, aux_ids=aux_ids, src=src, dst=dst,
                    p=banked.probability_lookup(now), table=table_b,
                )) == strategy.relay_probability(RelayContext(
                    self_id=3, aux_ids=aux_ids, src=src, dst=dst,
                    p=legacy.probability_lookup(now), table=table_l,
                ))
            builds += 1
        assert builds > 50

    def test_relay_table_cache_hits_stay_exact(self):
        """A cached bank table equals a fresh build, and participants'
        reports invalidate it while unrelated traffic does not."""
        bank = EstimatorBank(self.IDS)
        est = bank.view(3)
        est.on_beacon(beacon(1, incoming={2: 0.8, 3: 0.6}), 1.0)
        est.on_beacon(beacon(2, incoming={1: 0.7, 3: 0.4},
                             learned={1: 0.75}), 1.1)
        est.on_beacon(beacon(4, incoming={1: 0.3, 2: 0.2}), 1.2)
        table_1 = est.relay_table((3, 4), 1, 2, 1.5)
        # Unrelated sender: same table object served from the cache.
        est.on_beacon(beacon(6, incoming={5: 0.9}), 1.6)
        assert est.relay_table((3, 4), 1, 2, 1.7) is table_1
        # A participant's fresh report invalidates it.
        est.on_beacon(beacon(4, incoming={1: 0.9, 2: 0.5}), 1.8)
        table_2 = est.relay_table((3, 4), 1, 2, 1.9)
        assert table_2 is not table_1
        fresh = ReceptionEstimator(3)
        for frame, t in ((beacon(1, incoming={2: 0.8, 3: 0.6}), 1.0),
                         (beacon(2, incoming={1: 0.7, 3: 0.4},
                                 learned={1: 0.75}), 1.1),
                         (beacon(4, incoming={1: 0.3, 2: 0.2}), 1.2),
                         (beacon(6, incoming={5: 0.9}), 1.6),
                         (beacon(4, incoming={1: 0.9, 2: 0.5}), 1.8)):
            fresh.on_beacon(frame, t)
        expected = fresh.relay_table((3, 4), 1, 2, 1.9)
        assert table_2.contention.tolist() == expected.contention.tolist()
        assert table_2.denominator == expected.denominator


# ----------------------------------------------------------------------
# Bugfix regressions
# ----------------------------------------------------------------------

class TestFirstTickAlignment:
    def test_first_fold_window_is_one_second(self):
        """Satellite regression: the first-second ratio is unbiased.

        A peer beaconing every 0.2 s has a true per-second reception
        ratio of 0.5 against a 10/s budget.  The bank's period-aligned
        first fold recovers exactly that; the dict path's first fold
        at ``1.0 + phase`` counts the extra beacons yet still divides
        by one second's budget, so its first estimate reads high —
        the bias it keeps, verbatim, for the digest anchor.
        """
        bank = EstimatorBank((1, 2), beacons_per_second=10, alpha=1.0)
        banked = bank.view(1)
        legacy = ReceptionEstimator(1, beacons_per_second=10, alpha=1.0)
        t = 0.05
        while t < 1.5:  # a node with phase 0.5 folds first at 1.5
            banked.on_beacon(beacon(2), t)
            legacy.on_beacon(beacon(2), t)
            t += 0.2
        # The bank folds period-aligned: only the one-second window.
        # (In the protocol the simulator delivers beacons in time
        # order, so nothing past the fold instant is pending.)
        bank_window = EstimatorBank((1, 2), beacons_per_second=10,
                                    alpha=1.0)
        est = bank_window.view(1)
        t = 0.05
        while t < 1.0:
            est.on_beacon(beacon(2), t)
            t += 0.2
        bank_window.tick_second(1.0)
        assert est.incoming_probability(2) == pytest.approx(0.5)
        # The legacy path folds 1.5 s of beacons over a 1 s budget.
        legacy.tick_second(1.5)
        assert legacy.incoming_probability(2) == pytest.approx(0.8)

    def test_bank_event_is_period_aligned(self):
        """The protocol bank arms one second after registration."""
        sim = Simulator()
        bank = EstimatorBank((1, 2), sim=sim)
        est = bank.view(1)

        class _Node:
            def on_second(self):
                pass

        bank.register(_Node())
        est.on_beacon(beacon(2), 0.4)
        sim.run(until=0.99)
        assert bank.fold_count == 0
        sim.run(until=1.0)
        assert bank.fold_count == 1


class TestSingleTickEvent:
    def test_one_heap_event_folds_every_node(self):
        sim = Simulator()
        bank = EstimatorBank((1, 2, 3), sim=sim)
        calls = []

        class _Node:
            def __init__(self, name):
                self.name = name

            def on_second(self):
                calls.append((self.name, sim.now))

        for name in ("a", "b", "c"):
            bank.register(_Node(name))
        sim.run(until=5.5)
        # One fire-and-forget event per second — not one per node —
        # and every registered hook runs at each fold, in
        # registration order.
        assert sim.events_processed == 5
        assert bank.fold_count == 5
        assert calls == [(name, float(second))
                         for second in range(1, 6)
                         for name in ("a", "b", "c")]

    def test_protocol_run_sheds_per_node_tick_events(self):
        sim_array, sig_array = _signature(duration_s=15.0)
        sim_dict, sig_dict = _signature(ViFiConfig(estimator="dict"),
                                        duration_s=15.0)
        # Beacon emission rides the nominal due chains, which the
        # estimator never touches: emission counts are identical.
        assert _beacon_count(sig_array) == _beacon_count(sig_dict)
        # N per-node _second_tick events collapse into one bank event
        # per second (the realization differs, so the exact delta
        # carries protocol noise on top of the (N-1)/s tick saving).
        saved = sim_dict.sim.events_processed \
            - sim_array.sim.events_processed
        assert saved > 80
        # Both realizations deliver comparable traffic.
        n_array = len(sig_array["up"]) + len(sig_array["down"])
        n_dict = len(sig_dict["up"]) + len(sig_dict["down"])
        assert n_array > 100
        assert abs(n_array - n_dict) <= 0.15 * max(n_array, n_dict)
        bank = sim_array.ctx.estimator_bank
        assert bank is not None and bank.fold_count >= 14
        assert sim_dict.ctx.estimator_bank is None


class TestBoundedPeerState:
    def test_forgotten_peers_drop_their_dissemination_state(self):
        """Satellite regression: state is bounded by live peers.

        Fifty peers beacon once each, one per second; the dict mode
        keeps every peer ever heard in ``_last_heard`` / ``_reports``
        / ``_report_epoch``, while the bank prunes a peer as soon as
        it falls past the staleness horizon.
        """
        stale_s = 3.0
        n_peers = 50
        ids = tuple(range(n_peers + 1))
        bank = EstimatorBank(ids, stale_s=stale_s)
        banked = bank.view(0)
        legacy = ReceptionEstimator(0, stale_s=stale_s)
        for second in range(n_peers):
            frame = beacon(second + 1, incoming={0: 0.5},
                           learned={3: 0.4})
            banked.on_beacon(frame, second + 0.5)
            legacy.on_beacon(frame, second + 0.5)
            bank.tick_second(second + 1.0)
            legacy.tick_second(second + 1.0)
        live = len(banked.peers_heard_within(float(n_peers), stale_s))
        assert live <= stale_s + 1
        # The bank's per-peer state is bounded by the live-peer count.
        assert len(banked._reports) <= live + 1
        assert len(banked._outgoing) <= live + 1
        # The dict mode grew with every peer ever heard (the unbounded
        # growth the bank fixes; kept verbatim for the digest anchor).
        assert len(legacy._last_heard) == n_peers
        assert len(legacy._reports) == n_peers
        assert len(legacy._report_epoch) == n_peers
        assert len(legacy._outgoing) == n_peers
        # Pruned state is invisible to queries: both modes agree that
        # long-silent peers are gone.
        now = float(n_peers)
        for peer in (1, 10, 25):
            assert banked.probability(0, peer, now) == \
                legacy.probability(0, peer, now) == 0.0

    def test_learned_map_rebuild_stays_bounded(self):
        """The beacon ``learned`` rebuild iterates live peers only."""
        stale_s = 2.0
        ids = tuple(range(31))
        bank = EstimatorBank(ids, stale_s=stale_s)
        est = bank.view(0)
        for second in range(30):
            est.on_beacon(
                beacon(second + 1, incoming={0: 0.6}), second + 0.5
            )
            bank.tick_second(second + 1.0)
        _, learned = est.beacon_reports(30.0)
        assert len(learned) <= stale_s + 1
        assert len(est._outgoing) <= stale_s + 1


# ----------------------------------------------------------------------
# Full-trip anchors (slow; run via tools/ci_check.py)
# ----------------------------------------------------------------------

class TestFullTripEquivalence:
    @pytest.mark.slow
    def test_dict_mode_reproduces_pr4_committed_realization(self):
        """``estimator="dict"`` == the PR 4 run, digest-anchored.

        ``medium_interval_predraw=False`` joined the legacy-knob set
        in PR 6 (the pre-draw plane reorders outcome-stream draws).
        """
        sim, sig = _signature(
            ViFiConfig(estimator="dict",
                       medium_interval_predraw=False),
            duration_s=120.0)
        assert sim.sim.events_processed == PR4_ANCHOR_EVENTS
        assert _digest(sig) == PR4_ANCHOR_DIGEST

    @pytest.mark.slow
    def test_array_vs_dict_distributional(self):
        """Acceptance: the bank agrees distributionally over a trip."""
        sim_array, array_sig = _signature(duration_s=120.0)
        _, dict_sig = _signature(ViFiConfig(estimator="dict"),
                                 duration_s=120.0)
        assert _beacon_count(array_sig) == _beacon_count(dict_sig)
        for key in ("up", "down"):
            n_array = len(array_sig[key])
            n_dict = len(dict_sig[key])
            assert n_array > 400
            assert abs(n_array - n_dict) \
                <= 0.05 * max(n_array, n_dict)
        bank = sim_array.ctx.estimator_bank
        assert bank.fold_count >= 119
        assert bank.fold_wall_s < 0.5
