"""Unit tests for beacon-based reception-probability estimation.

Every test runs against both estimator backends: the historical
per-node dict :class:`ReceptionEstimator` and a view onto the
struct-of-arrays :class:`EstimatorBank` — the observable behaviour of
the two is identical wherever the fold instants match (the bank's
``tick_second`` view hook folds the whole bank, which in a one-view
scenario is exactly the dict fold).
"""

import pytest

from repro.core.probabilities import EstimatorBank, ReceptionEstimator
from repro.net.packet import Beacon


def beacon(sender, incoming=None, learned=None, t=0.0):
    return Beacon(sender=sender, sent_at=t,
                  incoming=incoming or {}, learned=learned or {})


@pytest.fixture(params=["dict", "array"])
def make_estimator(request):
    """Factory building either estimator backend over a 10-node
    universe (covering every id the tests use)."""
    def make(node_id, **kwargs):
        if request.param == "dict":
            return ReceptionEstimator(node_id, **kwargs)
        bank = EstimatorBank(tuple(range(10)), **kwargs)
        return bank.view(node_id)
    return make


class TestFirstHandEstimation:
    def test_full_reception_converges_to_one(self, make_estimator):
        est = make_estimator(1, beacons_per_second=10)
        for sec in range(8):
            for k in range(10):
                est.on_beacon(beacon(2), now=sec + k * 0.1)
            est.tick_second(now=sec + 1.0)
        assert est.incoming_probability(2) == pytest.approx(1.0, abs=0.01)

    def test_exponential_average_half_life(self, make_estimator):
        est = make_estimator(1, beacons_per_second=10, alpha=0.5)
        for k in range(10):
            est.on_beacon(beacon(2), now=k * 0.1)
        est.tick_second(now=1.0)
        assert est.incoming_probability(2) == pytest.approx(0.5)
        est.tick_second(now=2.0)  # silent second decays by half
        assert est.incoming_probability(2) == pytest.approx(0.25)

    def test_silent_peer_eventually_forgotten(self, make_estimator):
        est = make_estimator(1, beacons_per_second=10,
                             forget_below=0.05)
        for k in range(10):
            est.on_beacon(beacon(2), now=k * 0.1)
        for sec in range(1, 8):
            est.tick_second(now=float(sec))
        assert est.incoming_probability(2) == 0.0

    def test_partial_reception_ratio(self, make_estimator):
        est = make_estimator(1, beacons_per_second=10, alpha=1.0)
        for k in range(6):
            est.on_beacon(beacon(2), now=k * 0.1)
        est.tick_second(now=1.0)
        assert est.incoming_probability(2) == pytest.approx(0.6)


class TestDissemination:
    def test_incoming_reports_teach_pair_probabilities(
            self, make_estimator):
        est = make_estimator(3)
        est.on_beacon(beacon(2, incoming={5: 0.7}), now=1.0)
        assert est.probability(5, 2, now=1.5) == 0.7

    def test_learned_reports_teach_outgoing(self, make_estimator):
        est = make_estimator(3)
        est.on_beacon(beacon(2, learned={7: 0.4}), now=1.0)
        assert est.probability(2, 7, now=1.5) == 0.4

    def test_own_outgoing_learned_from_peer(self, make_estimator):
        """p(self -> peer) comes from the peer's incoming report."""
        est = make_estimator(3)
        est.on_beacon(beacon(2, incoming={3: 0.55}), now=1.0)
        assert est.probability(3, 2, now=1.5) == 0.55

    def test_stale_entries_distrusted(self, make_estimator):
        est = make_estimator(3, stale_s=5.0)
        est.on_beacon(beacon(2, incoming={5: 0.7}), now=1.0)
        assert est.probability(5, 2, now=10.0) == 0.0

    def test_first_hand_wins_for_own_incoming(self, make_estimator):
        est = make_estimator(1, beacons_per_second=10, alpha=1.0)
        for k in range(10):
            est.on_beacon(beacon(2), now=k * 0.1)
        est.tick_second(now=1.0)
        # A third party claims p(2 -> 1) is 0.1; our own estimate (1.0)
        # must win.
        est.on_beacon(beacon(9, learned={1: 0.1}), now=1.1)
        assert est.probability(2, 1, now=1.2) == pytest.approx(1.0)

    def test_self_probability_is_one(self, make_estimator):
        est = make_estimator(1)
        assert est.probability(1, 1, now=0.0) == 1.0

    def test_unknown_pair_is_zero(self, make_estimator):
        est = make_estimator(1)
        assert est.probability(5, 6, now=0.0) == 0.0


class TestBeaconReports:
    def test_reports_round_trip(self, make_estimator):
        est = make_estimator(1, beacons_per_second=10, alpha=1.0)
        for k in range(10):
            est.on_beacon(beacon(2), now=k * 0.1)
        est.tick_second(now=1.0)
        est.on_beacon(beacon(2, incoming={1: 0.8}), now=1.1)
        incoming, learned = est.beacon_reports(now=1.2)
        assert incoming[2] == pytest.approx(1.0)
        assert learned[2] == 0.8  # p(1 -> 2) learned from 2's beacon

    def test_probability_lookup_binds_time(self, make_estimator):
        est = make_estimator(3, stale_s=2.0)
        est.on_beacon(beacon(2, incoming={5: 0.7}), now=0.0)
        fresh = est.probability_lookup(now=1.0)
        stale = est.probability_lookup(now=10.0)
        assert fresh(5, 2) == 0.7
        assert stale(5, 2) == 0.0


class TestRecency:
    def test_heard_recently(self, make_estimator):
        est = make_estimator(1)
        est.on_beacon(beacon(2), now=5.0)
        assert est.heard_recently(2, now=6.0, within_s=2.0)
        assert not est.heard_recently(2, now=9.0, within_s=2.0)
        assert not est.heard_recently(3, now=5.0, within_s=2.0)

    def test_peers_heard_within(self, make_estimator):
        est = make_estimator(1)
        est.on_beacon(beacon(2), now=1.0)
        est.on_beacon(beacon(3), now=4.0)
        assert set(est.peers_heard_within(now=4.5, within_s=2.0)) == {3}


class TestBankConstruction:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            EstimatorBank((1, 2, 2))

    def test_unknown_view_rejected(self):
        with pytest.raises(KeyError):
            EstimatorBank((1, 2)).view(7)

    def test_view_is_memoized(self):
        bank = EstimatorBank((1, 2))
        assert bank.view(1) is bank.view(1)

    def test_register_needs_a_simulator(self):
        with pytest.raises(ValueError):
            EstimatorBank((1, 2)).register(object())
