"""Unit tests for session extraction and time-weighted medians."""

import numpy as np
import pytest

from repro.handoff.sessions import (
    adequacy_runs,
    session_lengths,
    time_in_sessions_cdf,
    time_weighted_median_session,
)


class TestRuns:
    def test_single_run(self):
        assert adequacy_runs([True, True, True]) == [(0, 3)]

    def test_multiple_runs(self):
        flags = [True, False, True, True, False, True]
        assert adequacy_runs(flags) == [(0, 1), (2, 2), (5, 1)]

    def test_no_runs(self):
        assert adequacy_runs([False, False]) == []

    def test_empty(self):
        assert adequacy_runs([]) == []

    def test_trailing_run_closed(self):
        assert adequacy_runs([False, True, True]) == [(1, 2)]


class TestSessionLengths:
    def test_window_scaling(self):
        flags = [True, True, False, True]
        assert session_lengths(flags, window_s=3.0) == [6.0, 3.0]

    def test_numpy_bool_input(self):
        flags = np.array([True, True, False])
        assert session_lengths(flags) == [2.0]


class TestTimeWeightedMedian:
    def test_uniform_sessions(self):
        assert time_weighted_median_session([10.0, 10.0, 10.0]) == 10.0

    def test_time_weighting_favours_long_sessions(self):
        # 10 sessions of 1 s (10 s total) and one of 90 s: half the
        # connected time sits in the 90 s session.
        lengths = [1.0] * 10 + [90.0]
        assert time_weighted_median_session(lengths) == 90.0
        # The unweighted median would have been 1.0.

    def test_empty_is_zero(self):
        assert time_weighted_median_session([]) == 0.0

    def test_single_session(self):
        assert time_weighted_median_session([42.0]) == 42.0


class TestCdf:
    def test_shape_and_normalization(self):
        xs, ys = time_in_sessions_cdf([1.0, 3.0, 6.0])
        assert list(xs) == [1.0, 3.0, 6.0]
        assert ys[-1] == pytest.approx(1.0)
        assert ys[0] == pytest.approx(0.1)

    def test_empty(self):
        xs, ys = time_in_sessions_cdf([])
        assert len(xs) == 0 and len(ys) == 0
