"""Equivalence tests for the PR 4 fast paths.

Covers the guarantees the bucket-centre propagation banks (whole-trip
prefill, cross-run sharing) and the slot-batch medium resolve lean on:

* ``sampling="first-query"`` with slot batching off (and, since PR 5,
  ``estimator="dict"``) keeps the PR 3 code paths verbatim: a full
  pinned VanLAN trip reproduces the PR 3 committed realization
  **bitwise** (anchored by a stored digest of the PR 3 run, so an
  accidental perturbation of shared code cannot slip through);
* under ``sampling="centre"`` a bucket's value is a pure function of
  (link, bucket): prefilled and lazily filled banks are bit-identical
  and consume identical RNG streams, banked values match the scalar
  :class:`~repro.net.propagation.LinkModel` evaluated at bucket
  centres to float tolerance, and a bank shared across runs equals a
  per-run bank bit for bit (the cross-run sharing contract);
* centre-sampled runs agree with first-query runs distributionally
  (identical beacon emission counts, delivery counts within a few
  percent);
* the slot-batch resolve consumes the outcome/backoff streams exactly
  as sequential per-frame merged sends would, delivers the same
  outcomes with fewer heap events, shifts receptions by at most the
  batch airtime, and falls back to plain sends — bitwise — whenever
  its preconditions fail.
"""

import hashlib
import json

import pytest

from repro.core.protocol import ViFiConfig
from repro.experiments.common import (
    build_shared_banks,
    install_shared_banks,
    run_protocol_cbr,
    run_trips,
    vanlan_cbr_trip,
    vanlan_protocol,
)
from repro.net.channel import BernoulliLoss
from repro.net.medium import LinkTable, WirelessMedium
from repro.net.packet import DataPacket, Direction
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.testbeds.vanlan import VanLanTestbed

#: Digest of the PR 3 committed realization of the pinned 120 s VanLAN
#: CBR workload (trip 0, every seed 0), captured at commit 3f14822
#: before the PR 4 changes landed.  The legacy-knob configuration must
#: keep reproducing it bit for bit.
PR3_ANCHOR_EVENTS = 43138
PR3_ANCHOR_DIGEST = \
    "97324fe603b97dc90ce8fbae41ff299706ebda72f8915fcc326fc0403bb52ead"


def _signature(config=None, sampling="centre", prefill=True,
               duration_s=30.0, seed=0, bank=None):
    testbed = VanLanTestbed(seed=0)
    sim, _ = vanlan_protocol(testbed, trip=0, seed=seed, config=config,
                             sampling=sampling, prefill=prefill,
                             bank=bank)
    cbr = run_protocol_cbr(sim, duration_s)
    return sim, {
        "up": sorted(cbr.up_deliveries.items()),
        "down": sorted(cbr.down_deliveries.items()),
        "tx": sorted(sim.medium.tx_count.items()),
        "delivered": sorted(sim.medium.delivered_count.items()),
    }


def _digest(signature):
    payload = json.dumps(signature, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# Bitwise lineage: the first-query mode is PR 3, verbatim
# ----------------------------------------------------------------------

class TestFirstQueryLineage:
    @pytest.mark.slow
    def test_full_trip_reproduces_pr3_committed_realization(self):
        """Legacy knobs == the PR 3 run, anchored by a stored digest.

        ``estimator="dict"`` joined the legacy-knob set in PR 5 (the
        array bank is a different, distributionally-equivalent
        realization — see ``tests/test_estimator_bank.py``), and
        ``medium_interval_predraw=False`` joined it in PR 6 (the
        interval pre-draw plane consumes the outcome stream in a
        different order).
        """
        sim, sig = _signature(
            ViFiConfig(medium_slot_batch=False, estimator="dict",
                       medium_interval_predraw=False),
            sampling="first-query", prefill=False, duration_s=120.0,
        )
        assert sim.sim.events_processed == PR3_ANCHOR_EVENTS
        assert _digest(sig) == PR3_ANCHOR_DIGEST

    def test_quantum_zero_ignores_sampling_convention(self):
        """quantum=0 never banks, so sampling cannot matter."""
        testbed = VanLanTestbed(seed=1)
        motion = testbed.vehicle_motion()
        tables = [
            testbed.build_link_table(0, motion, cache_quantum_s=0.0,
                                     sampling=sampling)
            for sampling in ("centre", "first-query")
        ]
        assert all(table.link_bank is None for table in tables)

    def test_prefill_requires_centre_sampling(self):
        testbed = VanLanTestbed(seed=1)
        motion = testbed.vehicle_motion()
        bank = testbed.build_link_bank(0, motion, sampling="first-query")
        with pytest.raises(ValueError):
            bank.prefill(10.0)


# ----------------------------------------------------------------------
# Bucket-centre banks: pure-function buckets
# ----------------------------------------------------------------------

def _centre_bank(seed, prefill_s=None):
    testbed = VanLanTestbed(seed=seed)
    motion = testbed.vehicle_motion()
    bank = testbed.build_link_bank(0, motion, prefill_s=prefill_s)
    return testbed, motion, bank


class TestBucketCentreBank:
    def test_prefilled_equals_lazy_over_full_trip(self):
        """Satellite: same buckets, same values, same RNG consumption.

        A prefilled bank and a lazily filled twin walk the whole trip;
        every bucket must agree bit for bit, and afterwards the
        underlying stochastic processes must have consumed their
        streams identically (prefill extends them deterministically to
        the same horizon a full lazy walk reaches).
        """
        _, motion, lazy = _centre_bank(seed=7)
        duration = motion.route.duration
        _, _, filled = _centre_bank(seed=7, prefill_s=duration)
        assert filled.prefill_wall_s > 0.0
        assert filled.prefilled_until == duration
        quantum = lazy.quantum
        n_links = len(lazy.links)
        n_buckets = int(duration / quantum)
        for key in range(n_buckets):
            # Query at an irregular instant inside the bucket: centre
            # sampling must make the query offset irrelevant.
            t = (key + 0.1 + 0.8 * ((key * 7919) % 97) / 97.0) * quantum
            for i in range(n_links):
                assert filled.prob_at(i, key, t) == lazy.prob_at(i, key, t)
            assert filled.rssi_at(0, key, t) == lazy.rssi_at(0, key, t)
        for link_f, link_l in zip(filled.links, lazy.links):
            assert link_f.shadowing.rng.bit_generator.state == \
                link_l.shadowing.rng.bit_generator.state
            assert link_f.gray.rng.bit_generator.state == \
                link_l.gray.rng.bit_generator.state
            assert len(link_f.shadowing._values) == \
                len(link_l.shadowing._values)

    def test_bucket_value_independent_of_query_order(self):
        """Skipping ahead and returning reads the same bucket values."""
        _, _, bank_a = _centre_bank(seed=3)
        _, _, bank_b = _centre_bank(seed=3)
        quantum = bank_a.quantum
        keys_a = [5, 6, 7, 2000, 2001]
        keys_b = [2000, 5, 2001, 6, 7]  # different order, same buckets
        reads_a = {k: bank_a.prob_at(0, k, (k + 0.5) * quantum)
                   for k in keys_a}
        reads_b = {k: bank_b.prob_at(0, k, (k + 0.5) * quantum)
                   for k in keys_b}
        assert reads_a == reads_b

    def test_matches_scalar_model_at_bucket_centres(self):
        """Property: centre-bank values == the scalar LinkModel at the
        bucket-centre instants, to float tolerance (vectorized vs
        scalar transcendentals), over identical RNG streams."""
        testbed_a = VanLanTestbed(seed=11)
        testbed_b = VanLanTestbed(seed=11)
        motion_a = testbed_a.vehicle_motion()
        motion_b = testbed_b.vehicle_motion()
        bank = testbed_a.build_link_bank(0, motion_a)
        scalar = [testbed_b.link_model(0, bs, motion_b)
                  for bs in testbed_b.deployment.bs_ids]
        quantum = bank.quantum
        for step in range(800):
            key = 3 * step  # monotone, with gaps
            tc = (key + 0.5) * quantum
            for i, model in enumerate(scalar):
                banked = bank.prob_at(i, key, tc)
                assert banked == pytest.approx(model.reception_prob(tc),
                                               abs=1e-9)

    def test_adopting_a_mismatched_bank_is_rejected(self):
        """A bank built for another (seed, trip, BS set) cannot be
        silently zipped onto the wrong steering streams."""
        testbed = VanLanTestbed(seed=2)
        motion = testbed.vehicle_motion()
        bank = testbed.build_link_bank(0, motion)
        with pytest.raises(ValueError):
            testbed.build_link_table(1, motion, bank=bank)  # wrong trip
        with pytest.raises(ValueError):
            testbed.build_link_table(
                0, motion, bank=bank,
                bs_ids=testbed.deployment.bs_ids[:5],
            )
        with pytest.raises(ValueError):
            VanLanTestbed(seed=3).build_link_table(0, motion, bank=bank)
        # The matching table still adopts it.
        table = testbed.build_link_table(0, motion, bank=bank)
        assert table.link_bank is bank

    def test_shared_bank_run_equals_fresh_bank_run(self):
        """Cross-run sharing contract: one bank, many runs, bitwise."""
        testbed, motion, bank = _centre_bank(
            seed=0, prefill_s=VanLanTestbed(seed=0)
            .vehicle_motion().route.duration)
        for seed in (0, 5):
            _, fresh_sig = _signature(duration_s=12.0, seed=seed)
            _, shared_sig = _signature(duration_s=12.0, seed=seed,
                                       bank=bank)
            assert shared_sig == fresh_sig

    @pytest.mark.slow
    def test_centre_vs_first_query_distributional(self):
        """Acceptance: centre sampling agrees distributionally."""
        _, centre = _signature(duration_s=120.0)
        _, legacy = _signature(
            ViFiConfig(medium_slot_batch=False, estimator="dict"),
            sampling="first-query", prefill=False, duration_s=120.0,
        )
        centre_beacons = sum(c for (_, kind), c in centre["tx"]
                             if kind == "beacon")
        legacy_beacons = sum(c for (_, kind), c in legacy["tx"]
                             if kind == "beacon")
        # Beacon emissions ride the nominal due chains, which neither
        # sampling nor slot batching touches.
        assert abs(centre_beacons - legacy_beacons) <= 2
        for key in ("up", "down"):
            n_centre = len(centre[key])
            n_legacy = len(legacy[key])
            assert n_centre > 400
            assert abs(n_centre - n_legacy) \
                <= 0.05 * max(n_centre, n_legacy)


# ----------------------------------------------------------------------
# run_trips bank sharing
# ----------------------------------------------------------------------

class TestRunTripsBankSharing:
    def test_shared_banks_reproduce_fresh_banks(self):
        tasks = [{"trip": 0, "seed": s, "duration_s": 8.0}
                 for s in (0, 1)]
        fresh = run_trips(vanlan_cbr_trip, tasks, workers=1)
        banks = build_shared_banks(0, [0])
        try:
            shared = run_trips(vanlan_cbr_trip, tasks, workers=1,
                               initializer=install_shared_banks,
                               initargs=(banks,))
        finally:
            install_shared_banks({})
        assert all(record["bank_shared"] for record in shared)
        assert not any(record["bank_shared"] for record in fresh)

        def sans_flag(results):
            return [{k: v for k, v in r.items() if k != "bank_shared"}
                    for r in results]

        assert sans_flag(shared) == sans_flag(fresh)


# ----------------------------------------------------------------------
# Slot-batch medium resolve
# ----------------------------------------------------------------------

class _RxNode:
    def __init__(self, node_id, sim):
        self.node_id = node_id
        self.sim = sim
        self.received = []

    def on_receive(self, frame, transmitter_id):
        self.received.append((frame.pkt_id, transmitter_id,
                              self.sim.now))


def _batch_medium(seed, **kwargs):
    sim = Simulator()
    rngs = RngRegistry(seed)
    table = LinkTable()
    for a in range(3):
        for b in range(3):
            if a != b:
                # Mixed probabilities so outcomes are non-trivial.
                table.set_link(a, b, BernoulliLoss(
                    0.25 * ((a + b) % 3), rngs.stream("l", a, b)))
    medium = WirelessMedium(sim, table, rngs.stream("m"),
                            outcome_rng=rngs.stream("o"),
                            backoff_slots=0, **kwargs)
    nodes = [_RxNode(i, sim) for i in range(3)]
    for node in nodes:
        medium.attach(node)
    return sim, medium, nodes


def _frame(pkt_id, src):
    return DataPacket(pkt_id=pkt_id, src=src, dst=(src + 1) % 3,
                      direction=Direction.UPSTREAM, size_bytes=400)


class TestSlotBatch:
    def _entries(self):
        return [(src, _frame(src * 10, src)) for src in range(3)]

    def test_matches_sequential_outcomes_with_fewer_events(self):
        """Zero-width backoff: batch == sequential sends, one event.

        With deterministic contention order the sequential freeze path
        airs frames in emission order too, and both paths consume the
        outcome stream identically, so the delivered (frame, receiver)
        sets must match exactly; receptions may shift to the batch's
        last end time (the documented <= one-slot bound).
        """
        sim_b, medium_b, nodes_b = _batch_medium(seed=21)
        medium_b.send_slot_batch(self._entries())
        sim_b.run(until=1.0)
        assert medium_b.slot_batch_count == 1
        assert medium_b.slot_batch_frames == 3
        events_batch = sim_b.events_processed

        sim_s, medium_s, nodes_s = _batch_medium(seed=21)
        for transmitter_id, frame in self._entries():
            medium_s.send(transmitter_id, frame)
        sim_s.run(until=1.0)
        assert medium_s.slot_batch_count == 0
        events_seq = sim_s.events_processed

        for node_b, node_s in zip(nodes_b, nodes_s):
            assert [(p, t) for p, t, _ in node_b.received] == \
                [(p, t) for p, t, _ in node_s.received]
            for (_, _, at_b), (_, _, at_s) in zip(node_b.received,
                                                  node_s.received):
                assert at_b >= at_s
                assert at_b - at_s < 0.05
        assert events_batch < events_seq
        assert medium_b.transmissions() == medium_s.transmissions() == 3

    def test_disabled_batch_falls_back_bitwise(self):
        """slot_batch=False: send_slot_batch == per-frame sends."""
        sim_a, medium_a, nodes_a = _batch_medium(seed=5,
                                                 slot_batch=False)
        medium_a.send_slot_batch(self._entries())
        sim_a.run(until=1.0)
        sim_b, medium_b, nodes_b = _batch_medium(seed=5,
                                                 slot_batch=False)
        for transmitter_id, frame in self._entries():
            medium_b.send(transmitter_id, frame)
        sim_b.run(until=1.0)
        assert medium_a.slot_batch_count == 0
        assert [n.received for n in nodes_a] == \
            [n.received for n in nodes_b]
        assert sim_a.events_processed == sim_b.events_processed

    def test_busy_transmitter_forces_fallback(self):
        """A transmitter with a queued frame disqualifies the batch."""
        sim, medium, nodes = _batch_medium(seed=9)
        medium.send(0, _frame(99, 0))  # node 0 now has work in flight
        medium.send_slot_batch(self._entries())
        sim.run(until=1.0)
        assert medium.slot_batch_count == 0
        # Everything still airs and resolves through the classic path.
        assert medium.transmissions() == 4

    def test_kernel_choice_does_not_change_batched_outcomes(self):
        """kernel="scalar" batches resolve bitwise like kernel="array"."""
        results = {}
        for kernel in ("array", "scalar"):
            sim, medium, nodes = _batch_medium(seed=33, kernel=kernel)
            for round_ in range(10):
                sim.schedule(0.1 * round_, medium.send_slot_batch,
                             [(src, _frame(round_ * 10 + src, src))
                              for src in range(3)])
            sim.run(until=3.0)
            assert medium.slot_batch_count == 10
            results[kernel] = [node.received for node in nodes]
        assert results["array"] == results["scalar"]

    def test_default_protocol_run_batches_slots(self):
        sim, sig = _signature(duration_s=20.0)
        assert sim.medium.slot_batch_count > 50
        assert sim.medium.slot_batch_frames > 100
        assert sim.medium.defer_count == 0
        assert len(sig["up"]) + len(sig["down"]) > 50

    def test_config_knob_disables_batching(self):
        sim, _ = _signature(ViFiConfig(medium_slot_batch=False),
                            duration_s=10.0)
        assert sim.medium.slot_batch_count == 0
