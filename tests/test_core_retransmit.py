"""Unit tests for the adaptive retransmission timer."""

import pytest

from repro.core.retransmit import AdaptiveRetxTimer


def test_initial_timeout_before_samples():
    timer = AdaptiveRetxTimer(initial_s=0.08, floor_s=0.01)
    assert timer.timeout() == 0.08


def test_floor_dominates_small_initial():
    timer = AdaptiveRetxTimer(initial_s=0.001, floor_s=0.02)
    assert timer.timeout() == 0.02


def test_percentile_of_samples():
    timer = AdaptiveRetxTimer(percentile=99.0, floor_s=0.0, window=1000)
    for i in range(100):
        timer.add_sample(i / 1000.0)
    assert timer.timeout() == pytest.approx(0.099)


def test_high_percentile_errs_towards_waiting():
    """Picking the 99th percentile makes one outlier dominate."""
    timer = AdaptiveRetxTimer(percentile=99.0, floor_s=0.0)
    for _ in range(99):
        timer.add_sample(0.01)
    timer.add_sample(0.5)
    assert timer.timeout() == 0.5


def test_median_configuration():
    timer = AdaptiveRetxTimer(percentile=50.0, floor_s=0.0)
    for v in (0.01, 0.02, 0.03, 0.04, 0.05):
        timer.add_sample(v)
    assert timer.timeout() == pytest.approx(0.03, abs=0.011)


def test_window_evicts_old_samples():
    timer = AdaptiveRetxTimer(percentile=100.0, floor_s=0.0, window=10)
    timer.add_sample(9.0)  # an ancient outlier
    for _ in range(10):
        timer.add_sample(0.02)
    assert timer.timeout() == pytest.approx(0.02)
    assert timer.sample_count == 10


def test_floor_applies_with_samples():
    timer = AdaptiveRetxTimer(floor_s=0.05)
    timer.add_sample(0.001)
    assert timer.timeout() == 0.05


def test_negative_sample_rejected():
    timer = AdaptiveRetxTimer()
    with pytest.raises(ValueError):
        timer.add_sample(-0.01)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        AdaptiveRetxTimer(percentile=0.0)
    with pytest.raises(ValueError):
        AdaptiveRetxTimer(window=0)


def test_eviction_is_constant_time_per_sample():
    """PR 6 satellite: the sample FIFO is a deque, not a list.

    The old list-backed FIFO paid ``pop(0)`` — an O(window) shift —
    per evicted sample, which under a saturated sender (thousands of
    acks per trip) turned ingestion quadratic.  A deque pops from the
    left in O(1); this pins the structure and exercises a large
    eviction run to completion.
    """
    from collections import deque

    timer = AdaptiveRetxTimer(window=500)
    assert isinstance(timer._fifo, deque)
    for i in range(5000):
        timer.add_sample(0.001 * (i % 97))
    assert timer.sample_count == 500
    assert timer.timeout() >= timer.floor
