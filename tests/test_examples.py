"""Smoke tests: every ``examples/*.py`` runs against current defaults.

The examples are the repository's front door; they import the public
builders directly, so any drift between them and evolving defaults
(sampling conventions, bank sharing, medium knobs) would otherwise
surface only when a human runs them.  Each example accepts
``--seconds`` to cap its simulated duration, which keeps these runs
inside the tier-1 budget while still exercising the full build-and-run
pipeline.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
EXAMPLES_DIR = REPO_ROOT / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))

#: Simulated-seconds cap per example: long enough for warmup plus some
#: real traffic, short enough for tier-1.
SMOKE_SECONDS = "12"


def test_every_example_is_covered():
    """A new example file automatically joins the parametrized run."""
    assert EXAMPLES, "examples/ directory is empty?"


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_with_tiny_duration(script):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing \
        else src + os.pathsep + existing
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script),
         "--seconds", SMOKE_SECONDS],
        capture_output=True, text=True, timeout=300, cwd=REPO_ROOT,
        env=env,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{result.stdout}\n"
        f"--- stderr ---\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"
