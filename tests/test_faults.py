"""The deterministic fault-injection plane (repro.sim.faults)."""

import pytest

from repro.core.protocol import ViFiConfig, ViFiSimulation
from repro.experiments.common import (
    run_protocol_cbr,
    run_trips,
    vanlan_protocol,
)
from repro.experiments.faulted import (
    FAULT_MATRIX,
    _faulted_task,
    fault_matrix_smoke,
)
from repro.sim.faults import FaultConfig, FaultSchedule
from repro.testbeds.vanlan import VEHICLE_ID, VanLanTestbed

BS_IDS = tuple(range(1, 6))

HEAVY = FaultConfig(
    bs_outage_rate=6.0, bs_outage_duration_s=5.0,
    partition_rate=4.0, partition_duration_s=5.0,
    latency_spike_rate=2.0, latency_spike_duration_s=3.0,
    beacon_burst_rate=2.0, beacon_burst_duration_s=1.0,
    vehicle_reset_rate=2.0, vehicle_reset_duration_s=2.0,
)


def _run_signature(faults=None, duration=25.0, seed=0, trip=0):
    testbed = VanLanTestbed(seed=0)
    sim, _ = vanlan_protocol(testbed, trip=trip, seed=seed,
                             prefill=duration + 1.0, faults=faults)
    cbr = run_protocol_cbr(sim, duration)
    return sim, (
        sim.sim.events_processed,
        sorted(cbr.up_deliveries.items()),
        sorted(cbr.down_deliveries.items()),
        sorted(sim.medium.tx_count.items()),
    )


class TestFaultSchedule:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule(HEAVY, 120.0, BS_IDS, VEHICLE_ID, seed=3)
        b = FaultSchedule(HEAVY, 120.0, BS_IDS, VEHICLE_ID, seed=3)
        assert a.events == b.events
        assert a.events  # heavy config over 2 minutes draws something

    def test_different_seed_different_schedule(self):
        a = FaultSchedule(HEAVY, 120.0, BS_IDS, VEHICLE_ID, seed=3)
        b = FaultSchedule(HEAVY, 120.0, BS_IDS, VEHICLE_ID, seed=4)
        assert a.events != b.events

    def test_zero_rates_draw_nothing(self):
        sched = FaultSchedule(FaultConfig(), 600.0, BS_IDS, VEHICLE_ID,
                              seed=0)
        assert sched.events == ()

    def test_events_ordered_and_bounded(self):
        sched = FaultSchedule(HEAVY, 60.0, BS_IDS, VEHICLE_ID, seed=1)
        starts = [e.start for e in sched.events]
        assert starts == sorted(starts)
        for event in sched.events:
            assert 0.0 <= event.start < event.end <= 60.0

    def test_per_target_windows_never_overlap(self):
        sched = FaultSchedule(HEAVY, 300.0, BS_IDS, VEHICLE_ID, seed=2)
        by_target = {}
        for event in sched.events:
            by_target.setdefault((event.kind, event.target),
                                 []).append(event)
        for events in by_target.values():
            for earlier, later in zip(events, events[1:]):
                assert earlier.end <= later.start

    def test_scaled_multiplies_rates_only(self):
        doubled = HEAVY.scaled(2.0)
        assert doubled.bs_outage_rate == HEAVY.bs_outage_rate * 2
        assert doubled.partition_rate == HEAVY.partition_rate * 2
        assert doubled.bs_outage_duration_s == HEAVY.bs_outage_duration_s
        assert not FaultConfig().scaled(5.0).any_enabled()
        with pytest.raises(ValueError):
            HEAVY.scaled(-1.0)


class TestNoFaultIdentity:
    """faults=None and zero-rate schedules must not perturb a run."""

    def test_none_vs_zero_rate_schedule_bitwise(self):
        _, base = _run_signature(faults=None)
        empty = FaultSchedule(
            FaultConfig(), 25.0,
            VanLanTestbed(seed=0).deployment.bs_ids, VEHICLE_ID, seed=0,
        )
        _, same = _run_signature(faults=empty)
        assert same == base

    def test_fault_plane_attrs_default_inert(self):
        testbed = VanLanTestbed(seed=0)
        sim, _ = vanlan_protocol(testbed, trip=0, seed=0, prefill=5.0)
        assert sim.fault_plane is None
        assert sim.vehicle.radio_down is False
        assert sim.vehicle.faults is None
        assert all(not node.radio_down
                   for node in sim.bs_nodes.values())
        assert sim.backplane.latency_multiplier == 1.0


class TestFaultedRuns:
    def test_heavy_faults_deterministic_and_graceful(self):
        testbed = VanLanTestbed(seed=0)
        signatures = []
        for _ in range(2):
            sched = FaultSchedule(HEAVY, 25.0,
                                  testbed.deployment.bs_ids,
                                  VEHICLE_ID, seed=7)
            _, sig = _run_signature(faults=sched)
            signatures.append(sig)
        assert signatures[0] == signatures[1]

    def test_faults_degrade_delivery(self):
        _, base = _run_signature(faults=None)
        testbed = VanLanTestbed(seed=0)
        sched = FaultSchedule(HEAVY, 25.0, testbed.deployment.bs_ids,
                              VEHICLE_ID, seed=7)
        sim, faulted = _run_signature(faults=sched)
        assert sim.fault_plane.injected  # something actually fired
        delivered = len(faulted[1]) + len(faulted[2])
        nominal = len(base[1]) + len(base[2])
        assert 0 < delivered < nominal

    def test_outage_suppresses_beacons_but_keeps_due_chain(self):
        """A dead BS emits nothing, yet post-outage beacon times are
        exactly the nominal schedule (jitter draws kept flowing)."""
        testbed = VanLanTestbed(seed=0)
        bs_ids = testbed.deployment.bs_ids
        victim = bs_ids[0]
        # Hand-crafted single outage window so the test is surgical.
        from repro.sim.faults import FaultEvent
        sched = FaultSchedule(FaultConfig(), 30.0, bs_ids, VEHICLE_ID,
                              seed=0)
        sched.events = (FaultEvent("bs-outage", victim, 10.0, 20.0),)

        def beacon_times(faults):
            testbed_local = VanLanTestbed(seed=0)
            sim, _ = vanlan_protocol(testbed_local, trip=0, seed=0,
                                     prefill=31.0, faults=faults)
            times = []
            node = sim.bs_nodes[victim]
            original = node._build_beacon

            def recording_build():
                # _build_beacon runs exactly once per actual emission
                # on every beacon path (slot batch, single, legacy).
                times.append(round(sim.sim.now, 9))
                return original()

            node._build_beacon = recording_build
            run_protocol_cbr(sim, 30.0)
            return times

        nominal = beacon_times(None)
        faulted = beacon_times(sched)
        assert [t for t in faulted if 10.0 <= t < 20.0] == []
        assert [t for t in nominal if t >= 20.0] \
            == [t for t in faulted if t >= 20.0]

    def test_vehicle_reset_pauses_then_resumes(self):
        testbed = VanLanTestbed(seed=0)
        from repro.sim.faults import FaultEvent
        sched = FaultSchedule(FaultConfig(), 30.0,
                              testbed.deployment.bs_ids, VEHICLE_ID,
                              seed=0)
        sched.events = (FaultEvent("vehicle-reset", VEHICLE_ID,
                                   10.0, 15.0),)
        testbed_local = VanLanTestbed(seed=0)
        sim, _ = vanlan_protocol(testbed_local, trip=0, seed=0,
                                 prefill=31.0, faults=sched)
        cbr = run_protocol_cbr(sim, 30.0)
        sent = cbr.sent_times
        late = [s for s, t in cbr.up_deliveries.items()
                if sent[s] >= 16.0]
        assert late  # service resumed after the reset
        during = [s for s, t in cbr.up_deliveries.items()
                  if 10.5 <= sent[s] <= 14.0 and t <= 15.0]
        assert during == []  # nothing delivered over a dead radio

    def test_all_bs_partitioned_still_delivers_direct(self):
        """A fully partitioned backplane only disables relays/salvage;
        direct anchor delivery keeps working."""
        testbed = VanLanTestbed(seed=0)
        bs_ids = testbed.deployment.bs_ids
        from repro.sim.faults import FaultEvent
        sched = FaultSchedule(FaultConfig(), 30.0, bs_ids, VEHICLE_ID,
                              seed=0)
        sched.events = tuple(
            FaultEvent("partition", bs, 0.0, 30.0) for bs in bs_ids
        )
        testbed_local = VanLanTestbed(seed=0)
        sim, _ = vanlan_protocol(testbed_local, trip=0, seed=0,
                                 prefill=31.0, faults=sched)
        cbr = run_protocol_cbr(sim, 30.0)
        assert cbr.delivery_rate() > 0.5
        assert sim.backplane.total_bytes() == 0


class TestFaultedSweeps:
    def test_merged_results_identical_across_worker_counts(self):
        tasks = [
            {"protocol": protocol,
             "faults": FAULT_MATRIX["bs-outage"], "trip": 0,
             "seed": seed, "duration_s": 12.0}
            for protocol in ("ViFi", "BRR") for seed in (0, 1)
        ]
        serial = run_trips(_faulted_task, tasks, workers=1)
        pooled = run_trips(_faulted_task, tasks, workers=2)
        assert list(serial) == list(pooled)

    def test_fault_matrix_smoke(self):
        results = fault_matrix_smoke(duration_s=12.0)
        assert set(results) == set(FAULT_MATRIX)
        for name, summary in results.items():
            assert summary["delivery"] > 0.0, name
        assert results["no-fault"]["injected"] == {}
        assert results["bs-outage"]["injected"].get("bs-outage", 0) > 0


@pytest.mark.slow
class TestGracefulDegradationTrend:
    """Acceptance: ViFi degrades more gracefully than BestBS (BRR)
    under BS outages — the delivery gap widens with fault intensity.

    Checked as a trend over seed-averaged sweep points, never as exact
    numbers."""

    def test_delivery_gap_widens_with_intensity(self):
        from repro.experiments.faulted import fault_intensity_sweep

        sweep = fault_intensity_sweep(
            intensities=(0.0, 1.0, 2.0), seeds=(0, 1),
            duration_s=60.0, workers=6,
        )
        gaps = {
            intensity: cells["ViFi"]["delivery"]
            - cells["BRR"]["delivery"]
            for intensity, cells in sweep.items()
        }
        assert gaps[1.0] > gaps[0.0]
        assert gaps[2.0] > gaps[0.0]
        # ViFi keeps an absolute edge at every point, and faults do
        # real damage to the unprotected comparator.
        for cells in sweep.values():
            assert cells["ViFi"]["delivery"] > cells["BRR"]["delivery"]
        assert sweep[2.0]["BRR"]["delivery"] \
            < sweep[0.0]["BRR"]["delivery"]
