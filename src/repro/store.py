"""Durable, self-healing experiment-result store.

The ROADMAP's "simulate once, serve millions" direction needs results
that outlive the process that computed them — and that survive crashed
writers, concurrent sweeps, code drift, and disk corruption without
ever serving a wrong byte.  This module is that foundation:

* **Content-addressed keys.**  :func:`result_key` hashes a canonical
  encoding of everything a result depends on — experiment kind, config
  objects, seeds — together with the store schema version and a code
  version tag, so any config-field change, seed change, or version
  bump lands on a different entry, while irrelevant execution details
  (worker counts, pool start methods) never enter the digest.
* **Atomic, verified entries.**  Every entry is written to a unique
  temp file, fsync'd, and renamed into place (:func:`write_record`);
  every read re-hashes the payload against the embedded SHA-256
  digest (:func:`read_record`).  A flipped byte, a truncated write, or
  a schema mismatch is *detected*, the entry is quarantined into a
  sidecar directory, and the caller sees a plain cache miss — never an
  exception, never corrupt bytes.
* **Single-flight recompute.**  :meth:`ResultStore.get_or_compute`
  takes a per-key advisory ``flock`` while computing, so N concurrent
  workers asking for the same missing entry compute it once and share
  the result.  Locks die with their holder (kernel-released), so a
  crashed writer never wedges the key.
* **Graceful degradation.**  A read-only store, a full disk, or an
  unavailable root never fails an experiment: the store logs once,
  marks itself degraded, and every request falls through to compute.

The same record format backs :func:`repro.experiments.common.run_trips`
checkpoints, so sweep resume shares one durability code path with the
result cache.
"""

import errno
import hashlib
import json
import logging
import os
import pickle
import tempfile
import time
from contextlib import contextmanager
from dataclasses import fields, is_dataclass

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = [
    "CODE_VERSION",
    "MISS",
    "SCHEMA_VERSION",
    "ResultStore",
    "StoreCorruption",
    "Uncacheable",
    "canonical_token",
    "default_store",
    "main_store",
    "read_record",
    "resolve_store",
    "result_key",
    "set_default_store",
    "write_record",
]

log = logging.getLogger("repro.store")

#: On-disk record schema.  Bumping it invalidates (quarantines on
#: read) every existing entry and changes every derived key.
SCHEMA_VERSION = 1

#: Result-semantics tag folded into every key.  Bump when a change
#: makes previously stored results stale (new default knob, changed
#: summary fields) without a schema change.
CODE_VERSION = "2026.08-pr8"

#: Leading bytes of every record file.
MAGIC = b"REPRO-STORE\n"

#: Sentinel returned by :meth:`ResultStore.get` on a miss (``None`` is
#: a legitimate stored value).
MISS = object()

#: Environment variable naming the default store root.  When set,
#: ``run_trips`` sweeps and experiment drivers that were not handed an
#: explicit store transparently memoize through it.
STORE_ENV_VAR = "REPRO_RESULT_STORE"


class StoreCorruption(Exception):
    """An entry failed verification (bad digest, truncation, schema)."""


class Uncacheable(TypeError):
    """A value cannot be canonically tokenized for key derivation."""


# ----------------------------------------------------------------------
# Canonical tokens and key derivation
# ----------------------------------------------------------------------

def canonical_token(obj):
    """A canonical, JSON-encodable token for *obj*.

    The token determines the cache key, so it must be stable across
    processes, platforms, and dict orderings, and distinct for any
    semantically distinct value:

    * primitives are tagged (``True`` and ``1`` differ, ``1`` and
      ``"1"`` differ);
    * floats use ``repr`` (shortest round-trip, stable across runs);
    * dicts sort by key token; sequences keep order (lists and tuples
      tokenize identically — argument "shape" is not semantic);
    * dataclasses (e.g. :class:`~repro.core.protocol.ViFiConfig`)
      tokenize as class name + per-field tokens, so *any* field change
      changes the digest;
    * objects may publish an explicit identity via a ``cache_token()``
      method (the testbeds do);
    * numpy arrays tokenize as dtype/shape plus a content hash.

    Raises:
        Uncacheable: for objects with none of the above — the caller
            should degrade (skip caching), not guess at identity.
    """
    if obj is None:
        return ["none"]
    if isinstance(obj, bool):
        return ["bool", obj]
    if isinstance(obj, int):
        return ["int", str(obj)]
    if isinstance(obj, float):
        return ["float", repr(obj)]
    if isinstance(obj, str):
        return ["str", obj]
    if isinstance(obj, (bytes, bytearray)):
        return ["bytes", hashlib.sha256(bytes(obj)).hexdigest()]
    if isinstance(obj, (list, tuple)):
        return ["seq", [canonical_token(x) for x in obj]]
    if isinstance(obj, dict):
        items = sorted(
            ([canonical_token(k), canonical_token(v)]
             for k, v in obj.items()),
            key=lambda kv: json.dumps(kv[0]),
        )
        return ["map", items]
    if isinstance(obj, (set, frozenset)):
        members = sorted((canonical_token(x) for x in obj),
                         key=json.dumps)
        return ["set", members]
    token_method = getattr(obj, "cache_token", None)
    if callable(token_method):
        return ["obj", canonical_token(token_method())]
    if is_dataclass(obj) and not isinstance(obj, type):
        field_map = {f.name: getattr(obj, f.name) for f in fields(obj)}
        return ["data", type(obj).__qualname__, canonical_token(field_map)]
    # numpy scalars and arrays (numpy is a hard dependency already).
    item = getattr(obj, "item", None)
    shape = getattr(obj, "shape", None)
    if callable(item) and shape == ():
        return canonical_token(item())
    if shape is not None and hasattr(obj, "tobytes"):
        return ["array", str(obj.dtype), list(shape),
                hashlib.sha256(obj.tobytes()).hexdigest()]
    if callable(obj) and hasattr(obj, "__qualname__"):
        return ["fn", getattr(obj, "__module__", ""), obj.__qualname__]
    raise Uncacheable(
        f"cannot derive a canonical cache token for {type(obj).__name__!r}"
        f" (add a cache_token() method or pass primitives)"
    )


def result_key(kind, *parts, schema_version=SCHEMA_VERSION,
               code_version=CODE_VERSION):
    """Content-addressed key (SHA-256 hex) for a result.

    Args:
        kind: short string naming the result family (``"run-trips"``,
            ``"vanlan-link-bank"``, ...).
        *parts: everything the result depends on — configs, seeds,
            task arguments.  Tokenized via :func:`canonical_token`.
        schema_version / code_version: folded into the digest so a
            store schema bump or a result-semantics bump can never
            serve stale entries.

    Raises:
        Uncacheable: when a part has no canonical token.
    """
    token = ["repro-result", int(schema_version), str(code_version),
             str(kind), [canonical_token(p) for p in parts]]
    blob = json.dumps(token, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# Record format (shared by store entries and sweep checkpoints)
# ----------------------------------------------------------------------

def write_record(path, payload, key=""):
    """Atomically write *payload* (any picklable) as a verified record.

    The bytes hit a unique temp file in the destination directory
    first (concurrent writers never collide), are fsync'd *before* the
    rename (a crash mid-write leaves the old entry intact, never a
    torn new one), then renamed into place; the directory entry is
    fsync'd afterwards so the rename itself is durable.

    Raises:
        OSError: disk full, read-only filesystem, missing directory —
            the caller decides whether that degrades or propagates.
        pickle.PicklingError / TypeError: unpicklable payload.
    """
    blob = pickle.dumps(payload, protocol=4)
    header = json.dumps(
        {"schema": SCHEMA_VERSION, "key": str(key),
         "sha256": hashlib.sha256(blob).hexdigest(), "length": len(blob)},
        sort_keys=True,
    ).encode("utf-8") + b"\n"
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-",
                               suffix=".rec")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(MAGIC)
            fh.write(header)
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(directory)


def _fsync_dir(directory):
    """Best-effort directory fsync (durability of the rename)."""
    try:
        dfd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dfd)
    except OSError:
        pass
    finally:
        os.close(dfd)


def read_record(path, expected_key=None):
    """Read and *verify* a record written by :func:`write_record`.

    Every payload byte is re-hashed against the embedded digest before
    unpickling, so corrupt bytes can never reach a consumer.

    Raises:
        FileNotFoundError: no record at *path* (a plain miss).
        StoreCorruption: anything else wrong with the record — bad
            magic, truncated or unreadable header, schema mismatch,
            length mismatch, digest mismatch, key mismatch, or a
            payload that fails to unpickle.
        OSError: the file exists but cannot be read (I/O error).
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if not data.startswith(MAGIC):
        raise StoreCorruption("bad magic")
    rest = data[len(MAGIC):]
    newline = rest.find(b"\n")
    if newline < 0:
        raise StoreCorruption("truncated header")
    try:
        header = json.loads(rest[:newline].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StoreCorruption(f"unreadable header: {exc}") from exc
    if not isinstance(header, dict):
        raise StoreCorruption("malformed header")
    if header.get("schema") != SCHEMA_VERSION:
        raise StoreCorruption(
            f"schema mismatch (entry {header.get('schema')!r}, "
            f"store {SCHEMA_VERSION})"
        )
    blob = rest[newline + 1:]
    if header.get("length") != len(blob):
        raise StoreCorruption(
            f"truncated payload ({len(blob)} of {header.get('length')} "
            f"bytes)"
        )
    if hashlib.sha256(blob).hexdigest() != header.get("sha256"):
        raise StoreCorruption("payload digest mismatch")
    if expected_key is not None and header.get("key") != expected_key:
        raise StoreCorruption(
            f"key mismatch (entry {header.get('key')!r})"
        )
    try:
        return pickle.loads(blob)
    except Exception as exc:  # repro-lint: allow[SILENT-EXCEPT] unpickle failure with a matching digest is class drift, mapped to StoreCorruption so callers quarantine and recompute
        # The digest matched, so the writer stored something the
        # current code cannot load (class drift) — same remedy as
        # corruption: quarantine and recompute.
        raise StoreCorruption(f"payload failed to unpickle: {exc}") \
            from exc


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

class StoreStats:
    """Mutable request counters for one :class:`ResultStore`."""

    __slots__ = ("hits", "misses", "verify_failures", "quarantined",
                 "writes", "write_skips", "degraded")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.verify_failures = 0
        self.quarantined = 0
        self.writes = 0
        self.write_skips = 0
        self.degraded = None  # reason string once the write path died

    def snapshot(self):
        """The tracked counters as a plain dict (bench/record schema)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "verify_failures": self.verify_failures,
            "quarantined": self.quarantined,
            "writes": self.writes,
            "write_skips": self.write_skips,
            "degraded": self.degraded,
        }

    def merge(self, other):
        """Fold another snapshot/StoreStats into these counters."""
        if isinstance(other, StoreStats):
            other = other.snapshot()
        self.hits += int(other.get("hits", 0))
        self.misses += int(other.get("misses", 0))
        self.verify_failures += int(other.get("verify_failures", 0))
        self.quarantined += int(other.get("quarantined", 0))
        self.writes += int(other.get("writes", 0))
        self.write_skips += int(other.get("write_skips", 0))
        if self.degraded is None and other.get("degraded"):
            self.degraded = other["degraded"]


class ResultStore:
    """Content-addressed on-disk result store.

    Layout under *root*::

        objects/<k[:2]>/<key>.rec   verified entries (write_record)
        quarantine/                 corrupt entries, moved aside
        locks/<key>.lock            advisory single-flight locks

    Every operation is failure-isolated: a store problem surfaces as a
    miss (reads) or a skipped write plus a logged degradation — never
    as an exception into the experiment.

    Args:
        root: store directory (created lazily on first write).
        read_only: serve hits but never write (a shared warm cache on
            media the run must not touch).
        lock_timeout_s: longest a request waits on another computer's
            single-flight lock before giving up and computing anyway
            (duplicate work, never a wrong result).
    """

    def __init__(self, root, read_only=False, lock_timeout_s=600.0):
        self.root = os.path.abspath(os.fspath(root))
        self.read_only = bool(read_only)
        self.lock_timeout_s = float(lock_timeout_s)
        self.stats = StoreStats()

    # -- paths ---------------------------------------------------------

    def object_path(self, key):
        return os.path.join(self.root, "objects", key[:2], f"{key}.rec")

    def _quarantine_dir(self):
        return os.path.join(self.root, "quarantine")

    def _lock_path(self, key):
        return os.path.join(self.root, "locks", f"{key}.lock")

    # -- core read/write ----------------------------------------------

    def _load(self, key):
        """Uncounted verified read: ``(status, value)``.

        Statuses: ``"hit"``, ``"miss"`` (no entry), ``"corrupt"``
        (entry quarantined), ``"error"`` (store unreadable).  Only
        ``verify_failures``/``quarantined`` counters move here; the
        caller decides what the request counts as.
        """
        path = self.object_path(key)
        try:
            value = read_record(path, expected_key=key)
        except FileNotFoundError:
            return "miss", None
        except StoreCorruption as exc:
            self.stats.verify_failures += 1
            log.warning("store entry %s failed verification (%s); "
                        "quarantining and recomputing", key[:12], exc)
            self._quarantine(path)
            return "corrupt", None
        except OSError as exc:
            self._degrade(f"read failed: {exc}")
            return "error", None
        return "hit", value

    def get(self, key, default=MISS):
        """Verified read; counts one hit or one miss."""
        status, value = self._load(key)
        if status == "hit":
            self.stats.hits += 1
            return value
        self.stats.misses += 1
        return default

    def put(self, key, value):
        """Durable best-effort write; ``True`` when the entry landed."""
        if self.read_only or self.stats.degraded:
            self.stats.write_skips += 1
            return False
        path = self.object_path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            write_record(path, value, key=key)
        except OSError as exc:
            self._degrade(f"write failed: {exc}")
            return False
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            # Unpicklable value: this key cannot be cached, but the
            # store itself is healthy.
            self.stats.write_skips += 1
            log.warning("store value for %s is not picklable (%s); "
                        "not cached", key[:12], exc)
            return False
        self.stats.writes += 1
        return True

    def get_or_compute(self, key, compute):
        """The memoization primitive: hit, or compute-once-and-store.

        On a miss the per-key advisory lock serializes computation
        across processes: the first requester computes and stores, the
        others block on the lock, then find the entry and share it.
        Lock acquisition failures (no ``fcntl``, unreachable store,
        timeout) degrade to computing without the lock — duplicate
        work at worst, since writes are atomic and last-writer-wins
        with equal content.

        Counts exactly one hit or miss per call (a racer filling the
        entry while this request waited still counts the original
        miss — the caller asked before the entry existed).
        """
        status, value = self._load(key)
        if status == "hit":
            self.stats.hits += 1
            return value
        self.stats.misses += 1
        with self._key_lock(key) as locked:
            if locked:
                status, value = self._load(key)
                if status == "hit":
                    return value
            value = compute()
            self.put(key, value)
        return value

    # -- failure handling ---------------------------------------------

    def _degrade(self, reason):
        """Disable the write path once, loudly, and carry on."""
        if self.stats.degraded is None:
            self.stats.degraded = str(reason)
            log.warning("result store %s degraded (%s); experiments "
                        "fall through to computation", self.root, reason)

    def _quarantine(self, path):
        """Move a corrupt entry aside so it is never re-served.

        On media where the move fails (read-only store) the entry is
        left in place — it re-fails verification on every read, which
        is safe (recompute), just slower.
        """
        qdir = self._quarantine_dir()
        base = os.path.basename(path)
        try:
            os.makedirs(qdir, exist_ok=True)
            target = os.path.join(qdir, base)
            serial = 0
            while os.path.exists(target):
                serial += 1
                target = os.path.join(qdir, f"{base}.{serial}")
            os.replace(path, target)
        except OSError as exc:
            try:
                os.unlink(path)
            except OSError:
                log.warning("could not quarantine or remove corrupt "
                            "entry %s (%s)", path, exc)
                return
        self.stats.quarantined += 1

    @contextmanager
    def _key_lock(self, key):
        """Advisory per-key lock; yields whether it was acquired.

        ``flock`` locks are released by the kernel when the holder
        dies, so a crashed computation never wedges the key.
        """
        if fcntl is None or self.stats.degraded:
            yield False
            return
        path = self._lock_path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        except OSError:
            yield False
            return
        acquired = False
        try:
            deadline = time.monotonic() + self.lock_timeout_s
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    acquired = True
                    break
                except OSError as exc:
                    if exc.errno not in (errno.EACCES, errno.EAGAIN):
                        break
                    if time.monotonic() >= deadline:
                        log.warning(
                            "single-flight lock on %s still held after "
                            "%.0f s; computing without it", key[:12],
                            self.lock_timeout_s,
                        )
                        break
                    time.sleep(0.01)
            yield acquired
        finally:
            if acquired:
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                except OSError:
                    pass
            os.close(fd)

    # -- maintenance ---------------------------------------------------

    def iter_entries(self):
        """Yield ``(key, path)`` for every stored object file."""
        objects = os.path.join(self.root, "objects")
        try:
            prefixes = sorted(os.listdir(objects))
        except OSError:
            return
        for prefix in prefixes:
            subdir = os.path.join(objects, prefix)
            try:
                names = sorted(os.listdir(subdir))
            except OSError:
                continue
            for name in names:
                if name.endswith(".rec") and not name.startswith("."):
                    yield name[:-len(".rec")], os.path.join(subdir, name)

    def entry_count(self):
        return sum(1 for _ in self.iter_entries())

    def quarantine_count(self):
        try:
            return len([n for n in os.listdir(self._quarantine_dir())
                        if not n.startswith(".")])
        except OSError:
            return 0

    def total_bytes(self):
        total = 0
        for _, path in self.iter_entries():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def verify_all(self):
        """Re-verify every entry; corrupt ones are quarantined.

        Returns:
            ``(ok, quarantined)`` counts.
        """
        ok = bad = 0
        for key, _ in list(self.iter_entries()):
            status, _value = self._load(key)
            if status == "hit":
                ok += 1
            else:
                bad += 1
        return ok, bad

    def clear(self):
        """Remove every entry (quarantine and locks included)."""
        import shutil
        removed = self.entry_count()
        for sub in ("objects", "quarantine", "locks"):
            shutil.rmtree(os.path.join(self.root, sub),
                          ignore_errors=True)
        return removed


# ----------------------------------------------------------------------
# Default-store plumbing
# ----------------------------------------------------------------------

_installed_store = None
_installed = False
_env_store = None
_env_store_root = None


def set_default_store(store):
    """Install the process-wide default store.

    Accepts a :class:`ResultStore`, a path, or ``None`` to fall back
    to the :data:`STORE_ENV_VAR` environment variable.
    """
    global _installed_store, _installed
    if store is None:
        _installed_store, _installed = None, False
    else:
        _installed_store = (store if isinstance(store, ResultStore)
                            else ResultStore(store))
        _installed = True
    return _installed_store


def default_store():
    """The ambient store: installed one, else the env-var one, else
    ``None`` (memoization off — the historical behaviour)."""
    global _env_store, _env_store_root
    if _installed:
        return _installed_store
    root = os.environ.get(STORE_ENV_VAR)
    if not root:
        return None
    root = os.path.abspath(root)
    if _env_store is None or _env_store_root != root:
        _env_store = ResultStore(root)
        _env_store_root = root
    return _env_store


def resolve_store(store):
    """Normalize a ``store=`` argument.

    ``None`` → the ambient default (possibly ``None``); ``False`` →
    disabled; a path → a :class:`ResultStore` on it; a store → itself.
    """
    if store is None:
        return default_store()
    if store is False:
        return None
    if isinstance(store, ResultStore):
        return store
    return ResultStore(store)


# ----------------------------------------------------------------------
# CLI: python -m repro store <stats|verify|clear>
# ----------------------------------------------------------------------

def main_store(argv=None):
    """``repro store`` subcommand: inspect and maintain a store."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro store",
        description="Inspect or maintain a result store.",
    )
    parser.add_argument("action", choices=("stats", "verify", "clear"),
                        help="stats: entry/quarantine counts; verify: "
                             "re-hash every entry (quarantining corrupt "
                             "ones); clear: drop all entries")
    parser.add_argument("--dir", default=None,
                        help=f"store root (default: ${STORE_ENV_VAR})")
    args = parser.parse_args(argv)

    root = args.dir or os.environ.get(STORE_ENV_VAR)
    if not root:
        parser.error(f"no store: pass --dir or set ${STORE_ENV_VAR}")
    store = ResultStore(root)
    if args.action == "stats":
        payload = {
            "root": store.root,
            "entries": store.entry_count(),
            "bytes": store.total_bytes(),
            "quarantined": store.quarantine_count(),
            "schema_version": SCHEMA_VERSION,
            "code_version": CODE_VERSION,
        }
        print(json.dumps(payload, indent=2))
    elif args.action == "verify":
        ok, bad = store.verify_all()
        print(json.dumps({"root": store.root, "verified_ok": ok,
                          "quarantined": bad}, indent=2))
        return 1 if bad else 0
    elif args.action == "clear":
        removed = store.clear()
        print(json.dumps({"root": store.root, "removed": removed},
                         indent=2))
    return 0
