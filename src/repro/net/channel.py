"""Packet-loss processes.

The measurement study (Section 3.4.2, Figure 6) shows that vehicular
WiFi losses are *bursty*: the probability of losing packet ``i+1`` after
losing packet ``i`` is far higher than the unconditional loss rate, and
the excess decays over hundreds of packets.  The classic model with this
behaviour is the Gilbert-Elliott two-state Markov channel, which we use
throughout.

Three processes are provided:

* :class:`BernoulliLoss` — i.i.d. losses (a control / baseline).
* :class:`GilbertElliottLoss` — the two-state burst channel.
* :class:`SteeredGilbertElliott` — a Gilbert-Elliott chain whose
  *instantaneous mean* loss rate is steered to follow an externally
  supplied target (distance + shadowing + gray periods, or a beacon
  trace), while preserving burstiness.  This is how we combine the
  paper's trace-driven methodology ("the beacon loss ratio ... is used
  as the packet loss rate", Section 5.1) with realistic short-term
  structure.
* :class:`TraceDrivenLoss` — per-second loss probabilities applied
  i.i.d. within the second; the literal reading of the paper's
  methodology, kept for validation runs.
"""

import math

import numpy as np

from repro.net.propagation import LinkStateCache
from repro.sim.rng import BufferedUniforms

__all__ = [
    "BernoulliLoss",
    "GilbertElliottLoss",
    "LossProcess",
    "SteeredGilbertElliott",
    "TraceDrivenLoss",
]


class LossProcess:
    """Interface: decide whether a transmission at time *t* is lost.

    ``static_loss_rate`` is the expected loss rate when it never
    changes over time, else ``None``.  The reachability index of
    :class:`~repro.net.medium.LinkTable` classifies such links once
    instead of re-evaluating them on every refresh.

    Subclasses that can separate *state advance* from the per-packet
    coin flip additionally implement ``loss_eps(t)``: advance any
    internal state to *t* and return the instantaneous per-packet loss
    probability, without consuming a uniform draw.  The medium's
    batched-outcome fast path then supplies the uniforms itself from
    one RNG block per frame (see
    :class:`~repro.net.medium.WirelessMedium`); processes lacking
    ``loss_eps`` fall back to :meth:`is_lost` and keep their private
    draw streams.

    Processes that can additionally *bound* how long the returned
    probability stays valid implement ``loss_eps_window(t) ->
    (eps, valid_until)``: the loss probability cannot change before
    ``valid_until`` (the next burst-chain flip, steering-bucket
    boundary, or trace-second boundary, whichever comes first).  The
    medium's array kernel stores these thresholds in its
    struct-of-arrays resolve rows and skips the per-frame ``loss_eps``
    call while the window holds — bitwise-safe because a skipped
    no-flip state advance consumes no randomness and a pending flip
    caps the window.

    :meth:`loss_eps_span` extends the window to a whole *interval*
    (the medium's pre-draw plane plans one beacon interval at a time):
    it commits up front to every threshold the process will report
    over as much of ``[t0, t1)`` as it can bound — the whole span
    when nothing moves inside it, a shorter prefix when a burst flip
    or trace-second edge caps the commitment — or refuses with
    ``None`` when it cannot commit past the instant ``t0`` at all
    (an unbucketed callable target, no window support).
    """

    static_loss_rate = None

    def is_lost(self, t):
        """Return True if a packet sent at time *t* is lost."""
        raise NotImplementedError

    def loss_eps_span(self, t0, t1):
        """Commit thresholds for a prefix of ``[t0, t1)``, or ``None``.

        Returns ``(eps, quantum, key0, valid_until)`` with
        ``valid_until > t0`` — the commitment horizon.  The process
        guarantees its thresholds over ``[t0, min(t1, valid_until))``;
        a horizon short of *t1* (a pending burst flip, a trace-second
        edge) simply caps how far the caller may plan, and a horizon
        beyond *t1* tells the caller the value outlives the request
        (cacheable, exactly as a :meth:`loss_eps_window` bound).

        * ``quantum == 0.0`` — *eps* is a plain float, constant over
          ``[t0, valid_until)``;
        * ``quantum > 0.0`` — *eps* is a sequence of per-bucket
          thresholds for time buckets ``key0 ..`` (bucket of time *t*
          is ``int(t / quantum)``), covering every bucket touched by
          ``[t0, min(t1, valid_until))``.

        ``None`` means the process cannot commit past the instant
        *t0* at all (no window support, an unbucketed callable
        steering target) and the caller must stay on the per-query
        :meth:`loss_eps_window` path, which remains authoritative.
        State advances (chain time) behave exactly as a
        ``loss_eps_window(t0)`` call, so a refused or unused span
        never perturbs the draw stream.

        The default composes from :meth:`loss_eps_window`: the window
        value over its own bound is a constant span prefix.
        """
        window = getattr(self, "loss_eps_window", None)
        if window is None:
            return None
        eps, bound = window(t0)
        if bound <= t0:
            return None
        return eps, 0.0, 0, bound

    def loss_rate(self, t):
        """Return the expected loss probability around time *t*."""
        raise NotImplementedError


class BernoulliLoss(LossProcess):
    """Independent losses with a fixed probability.

    Uniform draws are served from pre-drawn numpy blocks (see
    :class:`~repro.sim.rng.BufferedUniforms`), which is bit-for-bit
    identical to scalar draws as long as *rng* has no other consumers.
    Pass ``batch=1`` to disable buffering for a shared stream.
    """

    def __init__(self, p, rng, batch=64):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability {p} outside [0, 1]")
        self.p = float(p)
        self.static_loss_rate = self.p
        self.rng = rng
        self._draw = BufferedUniforms(rng, block=batch).next

    def is_lost(self, t):
        return self._draw() < self.p

    def loss_eps(self, t):
        return self.p

    def loss_eps_window(self, t):
        return self.p, math.inf

    def loss_rate(self, t):
        return self.p


class GilbertElliottLoss(LossProcess):
    """Two-state Markov (Gilbert-Elliott) loss process.

    The channel alternates between a *good* state with loss probability
    ``eps_good`` and a *bad* state with loss probability ``eps_bad``.
    State holding times are exponential with means ``good_duration`` and
    ``bad_duration`` seconds; the state is advanced lazily to the query
    time, so the process is independent of the packet sending rate.

    The stationary loss rate is
    ``pi_bad * eps_bad + (1 - pi_bad) * eps_good`` with
    ``pi_bad = bad_duration / (good_duration + bad_duration)``.
    """

    def __init__(self, eps_good, eps_bad, good_duration, bad_duration, rng,
                 start_time=0.0):
        if good_duration <= 0 or bad_duration <= 0:
            raise ValueError("state durations must be positive")
        for name, value in (("eps_good", eps_good), ("eps_bad", eps_bad)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        self.eps_good = float(eps_good)
        self.eps_bad = float(eps_bad)
        self.good_duration = float(good_duration)
        self.bad_duration = float(bad_duration)
        self.rng = rng
        self._in_bad = bool(
            rng.random() < bad_duration / (good_duration + bad_duration)
        )
        mean = self.bad_duration if self._in_bad else self.good_duration
        self._next_flip = start_time + rng.exponential(mean)
        self._time = start_time
        self.static_loss_rate = (
            self.pi_bad * self.eps_bad + (1 - self.pi_bad) * self.eps_good
        )

    @property
    def pi_bad(self):
        """Stationary probability of the bad state."""
        return self.bad_duration / (self.good_duration + self.bad_duration)

    def _advance(self, t):
        if t < self._time:
            raise ValueError(
                f"loss process queried backwards in time: {t} < {self._time}"
            )
        while self._next_flip <= t:
            self._in_bad = not self._in_bad
            mean = self.bad_duration if self._in_bad else self.good_duration
            self._next_flip += self.rng.exponential(mean)
        self._time = t

    def in_bad_state(self, t):
        self._advance(t)
        return self._in_bad

    def is_lost(self, t):
        self._advance(t)
        eps = self.eps_bad if self._in_bad else self.eps_good
        return bool(self.rng.random() < eps)

    def loss_eps(self, t):
        self._advance(t)
        return self.eps_bad if self._in_bad else self.eps_good

    def loss_eps_window(self, t):
        """``(eps, valid_until)``: eps cannot change before the flip."""
        self._advance(t)
        eps = self.eps_bad if self._in_bad else self.eps_good
        return eps, self._next_flip

    def loss_rate(self, t):
        return self.static_loss_rate


class SteeredGilbertElliott(LossProcess):
    """Gilbert-Elliott burstiness steered to a target mean loss rate.

    Given a callable ``mean_loss(t)`` returning the target loss rate at
    time *t* (from path loss, shadowing, gray periods, or a beacon
    trace), the per-state loss probabilities are re-derived at every
    query so the instantaneous expectation matches the target while the
    good/bad alternation supplies burst structure:

    * ``eps_bad = min(1, m / (pi_bad + rho * (1 - pi_bad)))``
    * ``eps_good = rho * eps_bad``

    where ``rho`` is the good/bad loss ratio (small, e.g. 0.1).  When
    the target is so lossy that ``eps_bad`` clips at 1, the remainder is
    pushed into the good state, preserving the mean exactly.

    ``mean_loss`` may also be a plain float for links whose target rate
    never changes (e.g. static BS-BS links): the per-state split is then
    computed once instead of per query.

    Per-packet uniform draws are batched (``batch`` draws per numpy
    call) to amortize generator dispatch overhead.  Because the chain's
    holding-time draws interleave on the same stream, batching yields a
    different — statistically equivalent — realization than unbatched
    scalar draws; pass ``batch=1`` for the legacy draw-by-draw stream.
    """

    def __init__(self, mean_loss, rng, good_duration=0.9, bad_duration=0.12,
                 rho=0.08, start_time=0.0, batch=64):
        self.rho = float(rho)
        self._chain = GilbertElliottLoss(
            eps_good=0.0,
            eps_bad=1.0,
            good_duration=good_duration,
            bad_duration=bad_duration,
            rng=rng,
            start_time=start_time,
        )
        self.rng = rng
        self._block = max(int(batch), 1)
        self._buf = ()
        self._buf_i = 0
        # The split depends only on the target mean (pi_bad is fixed),
        # and the target is piecewise-constant in practice (cached link
        # state, per-second traces), so memoize the last split.
        self._last_m = None
        self._last_split = (0.0, 0.0)
        if callable(mean_loss):
            self.mean_loss = mean_loss
            self._static_eps = None
            # When the target is a LinkStateCache's loss_prob, read the
            # cache's current bucket inline: the per-packet hot path
            # then skips two call frames on every cache hit.
            owner = getattr(mean_loss, "__self__", None)
            self._link_state = owner \
                if isinstance(owner, LinkStateCache) else None
        else:
            rate = min(max(float(mean_loss), 0.0), 1.0)
            self.mean_loss = lambda t, rate=rate: rate
            self._static_eps = self._split(rate)
            self.static_loss_rate = rate
            self._link_state = None

    def _split(self, m):
        """Split target mean *m* into (eps_good, eps_bad)."""
        m = min(max(float(m), 0.0), 1.0)
        pi_b = self._chain.pi_bad
        denom = pi_b + self.rho * (1.0 - pi_b)
        eps_bad = m / denom if denom > 0 else m
        if eps_bad <= 1.0:
            return self.rho * eps_bad, eps_bad
        # Bad state saturates; spill the excess into the good state so
        # the overall mean is preserved.
        eps_good = (m - pi_b) / (1.0 - pi_b)
        return min(eps_good, 1.0), 1.0

    def loss_eps(self, t):
        """Advance the chain to *t*; return the per-packet loss prob."""
        if self._static_eps is not None:
            eps_good, eps_bad = self._static_eps
        else:
            ls = self._link_state
            if ls is not None:
                # Inline LinkStateCache hit: same bucket arithmetic as
                # reception_prob, without the call frames.
                quantum = ls.quantum
                key = t if quantum <= 0.0 else int(t / quantum)
                if key == ls._prob_key:
                    m = 1.0 - ls._prob
                else:
                    m = 1.0 - ls.reception_prob(t)
            else:
                m = self.mean_loss(t)
            if m != self._last_m:
                self._last_m = m
                self._last_split = self._split(m)
            eps_good, eps_bad = self._last_split
        # Inline the no-flip fast path of the chain advance; the full
        # method only runs when a state flip is actually due.
        chain = self._chain
        if chain._time <= t < chain._next_flip:
            chain._time = t
            return eps_bad if chain._in_bad else eps_good
        return eps_bad if chain.in_bad_state(t) else eps_good

    def loss_eps_window(self, t):
        """``(eps, valid_until)`` for the array kernel's resolve rows.

        The per-packet probability is pinned until whichever comes
        first: the chain's next state flip, or — when the steering
        target is a :class:`LinkStateCache` — the end of the current
        time-quantum bucket.  The bucket bound holds under both bank
        sampling conventions: the cached probability is one value per
        bucket whether it was sampled at the first query
        (``sampling="first-query"``) or at the bucket centre
        (``sampling="centre"``, possibly prefilled), so the window
        never spans a bucket boundary where the target could move.  At
        an *exact* bucket-edge query the bound may degenerate to the
        query time itself (float division lands the key either side of
        the edge); that costs one extra refresh, never a stale
        threshold — asserted by the boundary tests in
        ``tests/test_perf_kernel.py``.  A generic callable target can
        change at any instant, so its window degenerates to the query
        time (no reuse); ``quantum<=0`` likewise buckets at exact
        query times only, preserving the bitwise guarantee.  The body
        flattens :meth:`loss_eps` inline: the kernel calls this once
        per stale row, so the double dispatch would cost more than the
        math.
        """
        chain = self._chain
        if self._static_eps is not None:
            eps_good, eps_bad = self._static_eps
            bound = math.inf
        else:
            ls = self._link_state
            if ls is not None:
                quantum = ls.quantum
                if quantum > 0.0:
                    key = int(t / quantum)
                    bound = (key + 1.0) * quantum
                else:
                    key = t
                    bound = t
                if key == ls._prob_key:
                    m = 1.0 - ls._prob
                else:
                    m = 1.0 - ls.reception_prob(t)
            else:
                m = self.mean_loss(t)
                bound = t
            if m != self._last_m:
                self._last_m = m
                self._last_split = self._split(m)
            eps_good, eps_bad = self._last_split
        # Inline no-flip chain advance (see loss_eps).
        if chain._time <= t < chain._next_flip:
            chain._time = t
            in_bad = chain._in_bad
        else:
            in_bad = chain.in_bad_state(t)
        next_flip = chain._next_flip
        if next_flip < bound:
            bound = next_flip
        return (eps_bad if in_bad else eps_good), bound

    def loss_eps_span(self, t0, t1):
        """Per-bucket thresholds up to the next flip, or ``None``.

        The commitment horizon is the chain's next burst flip (a flip
        moves the good/bad selection, which only the per-query path
        tracks); a flip beyond *t1* commits the whole request.  The
        steering target must be either static or a bucket-centre
        :class:`LinkStateCache` bank, whose buckets are pure functions
        of (link, bucket) and can therefore be read ahead via
        :meth:`~repro.net.propagation.LinkBank.prob_span`.  Each
        bucket's threshold comes from the same scalar :meth:`_split`
        the window path uses, so a committed threshold is bitwise what
        ``loss_eps_window`` would have returned at any instant inside
        the horizon.  The chain advance to *t0* is the same advance a
        window query performs, so planning consumes no randomness
        beyond it.
        """
        chain = self._chain
        if chain._time <= t0 < chain._next_flip:
            chain._time = t0
            in_bad = chain._in_bad
        else:
            in_bad = chain.in_bad_state(t0)
        next_flip = chain._next_flip
        if self._static_eps is not None:
            eps_good, eps_bad = self._static_eps
            return ((eps_bad if in_bad else eps_good), 0.0, 0,
                    next_flip)
        ls = self._link_state
        if ls is None:
            return None  # generic callable target: no validity bound
        quantum = ls.quantum
        bank = ls.bank
        if quantum <= 0.0 or bank is None:
            return None
        t_hi = t1 if t1 <= next_flip else next_flip
        k0 = int(t0 / quantum)
        k1 = int(t_hi / quantum)
        probs = bank.prob_span(ls.bank_index, k0, k1)
        if probs is None:
            return None  # first-query sampling cannot be read ahead
        # Per-bucket split through the same scalar :meth:`_split` the
        # window path uses (bucket counts are single digits here, so a
        # python loop beats numpy dispatch — and the thresholds are
        # bitwise the window path's by construction).
        split = self._split
        state = 1 if in_bad else 0
        eps = [split(1.0 - p)[state] for p in probs.tolist()]
        return eps, quantum, k0, t_hi

    def is_lost(self, t):
        eps = self.loss_eps(t)
        # Inline buffered uniform draw (see BufferedUniforms).
        i = self._buf_i
        buf = self._buf
        if i >= len(buf):
            buf = self._buf = self.rng.random(self._block).tolist()
            i = 0
        self._buf_i = i + 1
        return buf[i] < eps

    def loss_rate(self, t):
        if self.static_loss_rate is not None:
            return self.static_loss_rate
        return min(max(float(self.mean_loss(t)), 0.0), 1.0)


class TraceDrivenLoss(LossProcess):
    """Loss process driven by a per-second loss-rate series.

    This is the paper's DieselNet methodology taken literally: "the
    beacon loss ratio from a BS to the vehicle in each one-second
    interval is used as the packet loss rate from that BS to the vehicle
    and from the vehicle to the BS" (Section 5.1).  Losses are i.i.d.
    within each second.

    Args:
        rates: sequence of loss probabilities, one per second starting
            at ``t0``.
        rng: random stream for the per-packet draws.
        t0: trace start time.
        out_of_range_rate: loss rate applied outside the trace span.
    """

    def __init__(self, rates, rng, t0=0.0, out_of_range_rate=1.0,
                 batch=64):
        self.rates = [float(r) for r in rates]
        for r in self.rates:
            if not 0.0 <= r <= 1.0:
                raise ValueError(f"trace loss rate {r} outside [0, 1]")
        self.rng = rng
        self.t0 = float(t0)
        self.out_of_range_rate = float(out_of_range_rate)
        self._draw = BufferedUniforms(rng, block=batch).next

    def loss_rate(self, t):
        idx = int(math.floor(t - self.t0))
        if 0 <= idx < len(self.rates):
            return self.rates[idx]
        return self.out_of_range_rate

    def loss_eps(self, t):
        return self.loss_rate(t)

    def loss_eps_window(self, t):
        """``(eps, valid_until)``: rates hold within a trace second."""
        idx = int(math.floor(t - self.t0))
        if 0 <= idx < len(self.rates):
            return self.rates[idx], self.t0 + idx + 1.0
        if idx < 0:
            return self.out_of_range_rate, self.t0
        return self.out_of_range_rate, math.inf

    def is_lost(self, t):
        return self._draw() < self.loss_rate(t)
