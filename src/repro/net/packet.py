"""Frame types exchanged over the simulated media.

Three frames matter to ViFi (Section 4 of the paper):

* :class:`DataPacket` — an application packet carrying a unique
  identifier so that acknowledgments are never confused with an earlier
  transmission (Section 4.7).
* :class:`Ack` — a broadcast acknowledgment.  ViFi's implementation adds
  a one-byte bitmap that reports which of the eight packets preceding
  the acked one were *not* received, saving spurious retransmissions
  when acks are lost (Section 4.8).
* :class:`Beacon` — periodic broadcast carrying the vehicle's current
  anchor / auxiliary designations and the reception-probability reports
  that auxiliaries need to compute relay probabilities (Sections 4.3
  and 4.6).

All frames are plain dataclasses; the medium treats them as opaque
payloads plus a size.
"""

import enum
import itertools
from dataclasses import dataclass, field

__all__ = [
    "Ack",
    "Beacon",
    "DataPacket",
    "Direction",
    "FrameKind",
    "PacketIdAllocator",
    "ACK_SIZE_BYTES",
    "BEACON_BASE_SIZE_BYTES",
]

#: Size of an acknowledgment frame on the air, bytes (header + bitmap).
ACK_SIZE_BYTES = 40

#: Fixed part of a beacon frame; per-report bytes are added on top.
BEACON_BASE_SIZE_BYTES = 60

#: Bytes added to a beacon per embedded reception-probability report.
BEACON_REPORT_SIZE_BYTES = 3


class Direction(enum.Enum):
    """Direction of an application packet relative to the vehicle."""

    UPSTREAM = "up"
    DOWNSTREAM = "down"

    @property
    def other(self):
        if self is Direction.UPSTREAM:
            return Direction.DOWNSTREAM
        return Direction.UPSTREAM


class FrameKind(enum.Enum):
    DATA = "data"
    ACK = "ack"
    BEACON = "beacon"


class PacketIdAllocator:
    """Allocates globally unique packet identifiers.

    ViFi embeds its own sequence numbers in transmitted packets so a
    retransmission is distinguishable from the original (Section 4.8).
    """

    def __init__(self, start=0):
        self._counter = itertools.count(start)

    def next_id(self):
        return next(self._counter)


@dataclass(slots=True)
class DataPacket:
    """An application data packet.

    Attributes:
        pkt_id: unique identifier (never reused across retransmissions
            of *different* payloads; a retransmission reuses the id so
            acks match).
        src: originating node id (vehicle or anchor BS).
        dst: intended destination node id.
        direction: upstream (vehicle to anchor) or downstream.
        size_bytes: on-air size.
        flow_id: application flow this packet belongs to.
        seq: per-flow sequence number (used by the TCP/VoIP models).
        created_at: simulation time the packet entered the sender queue.
        tx_id: unique identifier of this *transmission* — regenerated on
            every source (re)transmission so "acknowledgments are not
            confused with an earlier transmission" (Section 4.7);
            relayed copies keep the tx_id of the overheard transmission
            so ack-delay samples span the full relay path.
        relayed_by: id of the auxiliary BS that relayed this copy, or
            ``None`` for an original / source-retransmitted copy.
        is_retransmission: True for copies sent again by the source.
        salvaged: True if the packet reached its current holder through
            the salvaging path (Section 4.5).
        payload: opaque application reference (e.g. a TCP segment).
    """

    pkt_id: int
    src: int
    dst: int
    direction: Direction
    size_bytes: int = 500
    flow_id: int = 0
    seq: int = 0
    created_at: float = 0.0
    tx_id: int = -1
    relayed_by: int | None = None
    is_retransmission: bool = False
    salvaged: bool = False
    payload: object = None

    kind = FrameKind.DATA
    kind_value = "data"  # .value hoisted off the enum descriptor

    def relay_copy(self, relayer_id):
        """Return the copy of this packet an auxiliary relays."""
        return DataPacket(
            pkt_id=self.pkt_id,
            src=self.src,
            dst=self.dst,
            direction=self.direction,
            size_bytes=self.size_bytes,
            flow_id=self.flow_id,
            seq=self.seq,
            created_at=self.created_at,
            tx_id=self.tx_id,
            relayed_by=relayer_id,
            is_retransmission=self.is_retransmission,
            salvaged=self.salvaged,
            payload=self.payload,
        )


@dataclass(slots=True)
class Ack:
    """Broadcast acknowledgment with ViFi's 8-packet history bitmap.

    Attributes:
        pkt_id: identifier of the packet being acknowledged.
        acker: node id broadcasting the ack.
        for_src: node id whose packet is acknowledged (so bystanders can
            attribute the ack).
        missing_bitmap: 8-bit mask; bit *k* set means packet
            ``pkt_id - 1 - k`` from the same source was NOT received.
        tx_id: transmission id echoed from the (possibly relayed) data
            copy that triggered this ack; the source uses it to compute
            ack-delay samples for the adaptive retransmission timer.
        in_response_to_relay: True when this ack was triggered by a
            relayed copy (used only for bookkeeping/statistics).
    """

    pkt_id: int
    acker: int
    for_src: int
    missing_bitmap: int = 0
    tx_id: int = -1
    in_response_to_relay: bool = False
    size_bytes: int = ACK_SIZE_BYTES

    kind = FrameKind.ACK
    kind_value = "ack"

    def missing_ids(self):
        """Yield packet ids the bitmap marks as missing."""
        for k in range(8):
            if self.missing_bitmap & (1 << k):
                candidate = self.pkt_id - 1 - k
                if candidate >= 0:
                    yield candidate


@dataclass(slots=True)
class Beacon:
    """Periodic broadcast beacon.

    Vehicle beacons designate the anchor and auxiliaries and name the
    previous anchor for salvaging.  All beacons carry reception
    probability reports: ``incoming`` maps peer id to the estimated
    delivery probability *peer -> sender*, and ``learned`` carries the
    sender's second-hand knowledge ``(a, b) -> p(a delivers to b)``.

    Attributes:
        sender: node id of the beaconing node.
        sent_at: simulation timestamp of transmission.
        anchor_id: current anchor (vehicle beacons only, else ``None``).
        aux_ids: tuple of auxiliary BS ids (vehicle beacons only).
        prev_anchor_id: previous anchor for salvaging, or ``None``.
        incoming: first-hand reception probability reports.
        learned: second-hand reports relayed from other nodes' beacons.
    """

    sender: int
    sent_at: float = 0.0
    anchor_id: int | None = None
    aux_ids: tuple = ()
    prev_anchor_id: int | None = None
    incoming: dict = field(default_factory=dict)
    learned: dict = field(default_factory=dict)

    kind = FrameKind.BEACON
    kind_value = "beacon"

    @property
    def size_bytes(self):
        reports = len(self.incoming) + len(self.learned)
        return BEACON_BASE_SIZE_BYTES + BEACON_REPORT_SIZE_BYTES * reports
