"""Network substrate: frames, loss processes, radio links, media.

This package models everything between a protocol engine and the
airwaves:

* :mod:`repro.net.packet` — the frame types exchanged over the air
  (data, bitmap acknowledgments, beacons).
* :mod:`repro.net.channel` — packet-loss processes, including the
  Gilbert-Elliott bursty channel the measurement study motivates and a
  trace-driven process for the paper's DieselNet methodology.
* :mod:`repro.net.propagation` — log-distance path loss, lognormal
  shadowing, gray periods, and RSSI synthesis.
* :mod:`repro.net.mobility` — waypoint routes and vehicle motion.
* :mod:`repro.net.medium` — the shared broadcast wireless medium.
* :mod:`repro.net.backplane` — the bandwidth-limited inter-BS wired
  plane that upstream relays and salvaging traverse.
"""

from repro.net.backplane import Backplane
from repro.net.channel import (
    BernoulliLoss,
    GilbertElliottLoss,
    SteeredGilbertElliott,
    TraceDrivenLoss,
)
from repro.net.medium import LinkTable, WirelessMedium
from repro.net.mobility import Route, StationaryPosition, VehicleMotion
from repro.net.packet import Ack, Beacon, DataPacket, Direction, FrameKind
from repro.net.propagation import LinkModel, RadioProfile

__all__ = [
    "Ack",
    "Backplane",
    "Beacon",
    "BernoulliLoss",
    "DataPacket",
    "Direction",
    "FrameKind",
    "GilbertElliottLoss",
    "LinkModel",
    "LinkTable",
    "RadioProfile",
    "Route",
    "StationaryPosition",
    "SteeredGilbertElliott",
    "TraceDrivenLoss",
    "VehicleMotion",
    "WirelessMedium",
]
