"""Vehicle mobility: waypoint routes and position sampling.

VanLAN's vehicles "provide a shuttle service around the town, moving
within a speed limit of about 40 km/h" (Section 2.1).  We model a
vehicle as a point following a piecewise-linear waypoint route at a
per-segment speed, optionally looping, with brief stops at designated
waypoints (bus stops).  Positions are exact at any float time; a 1 Hz
sampler mirrors the testbeds' GPS units.
"""

import bisect
import math

__all__ = ["Route", "StationaryPosition", "VehicleMotion", "gps_samples"]


class StationaryPosition:
    """Position callable for a fixed node (a basestation)."""

    def __init__(self, x, y):
        self.x = float(x)
        self.y = float(y)

    def __call__(self, t):
        return (self.x, self.y)

    def __repr__(self):
        return f"StationaryPosition({self.x:.1f}, {self.y:.1f})"


class Route:
    """A piecewise-linear path through a list of waypoints.

    Args:
        waypoints: sequence of ``(x, y)`` points, at least two.
        speed_mps: cruise speed in metres/second (default 11.1, i.e.
            40 km/h, the VanLAN shuttle speed limit).
        stop_durations: optional mapping from waypoint index to dwell
            time in seconds (the vehicle pauses there).
        loop: if True, the route closes back to the first waypoint and
            repeats forever.
    """

    def __init__(self, waypoints, speed_mps=11.1, stop_durations=None,
                 loop=False):
        points = [(float(x), float(y)) for x, y in waypoints]
        if len(points) < 2:
            raise ValueError("a route needs at least two waypoints")
        if speed_mps <= 0:
            raise ValueError("speed must be positive")
        if loop and points[0] != points[-1]:
            points = points + [points[0]]
        self.waypoints = points
        self.speed = float(speed_mps)
        self.loop = loop
        stops = dict(stop_durations or {})

        # Build a time-parameterised schedule: list of (t_start, t_end,
        # p_start, p_end) segments, where a dwell is a zero-motion segment.
        self._segments = []
        t = 0.0
        for i in range(len(points) - 1):
            dwell = stops.get(i, 0.0)
            if dwell > 0:
                self._segments.append((t, t + dwell, points[i], points[i]))
                t += dwell
            (x0, y0), (x1, y1) = points[i], points[i + 1]
            length = math.hypot(x1 - x0, y1 - y0)
            duration = length / self.speed
            self._segments.append((t, t + duration, points[i], points[i + 1]))
            t += duration
        final_dwell = stops.get(len(points) - 1, 0.0)
        if final_dwell > 0:
            self._segments.append((t, t + final_dwell, points[-1], points[-1]))
            t += final_dwell
        self.duration = t
        self._starts = [seg[0] for seg in self._segments]

    @property
    def path_length(self):
        """Total geometric length of one traversal, metres."""
        total = 0.0
        for i in range(len(self.waypoints) - 1):
            (x0, y0), (x1, y1) = self.waypoints[i], self.waypoints[i + 1]
            total += math.hypot(x1 - x0, y1 - y0)
        return total

    def position_at(self, t):
        """Position at time *t* seconds from the start of the route."""
        if t < 0:
            raise ValueError("route queried before departure")
        if self.loop:
            t = math.fmod(t, self.duration)
        elif t >= self.duration:
            return self.waypoints[-1]
        idx = bisect.bisect_right(self._starts, t) - 1
        t0, t1, (x0, y0), (x1, y1) = self._segments[idx]
        if t1 <= t0:
            return (x0, y0)
        frac = min(max((t - t0) / (t1 - t0), 0.0), 1.0)
        return (x0 + frac * (x1 - x0), y0 + frac * (y1 - y0))


class VehicleMotion:
    """A vehicle following a :class:`Route`, usable as a position callable.

    Args:
        route: the route to follow.
        depart_at: simulation time the vehicle starts moving; before
            this it sits at the first waypoint.
    """

    def __init__(self, route, depart_at=0.0):
        self.route = route
        self.depart_at = float(depart_at)
        # One-entry memo: every link of a broadcast frame samples the
        # vehicle at the same instant, so repeats dominate.
        self._memo_t = None
        self._memo_pos = None

    def __call__(self, t):
        if t == self._memo_t:
            return self._memo_pos
        if t <= self.depart_at:
            pos = self.route.waypoints[0]
        else:
            pos = self.route.position_at(t - self.depart_at)
        self._memo_t = t
        self._memo_pos = pos
        return pos

    def speed_at(self, t):
        """Instantaneous speed (m/s), estimated over a 0.2 s window."""
        h = 0.1
        t0 = max(t - h, 0.0)
        x0, y0 = self(t0)
        x1, y1 = self(t + h)
        return math.hypot(x1 - x0, y1 - y0) / (t + h - t0)


def gps_samples(position, t_start, t_end):
    """Yield 1 Hz ``(t, x, y)`` GPS fixes like the testbeds' GPS units."""
    t = math.ceil(t_start)
    while t <= t_end:
        x, y = position(float(t))
        yield (float(t), x, y)
        t += 1
