"""The bandwidth-limited inter-BS wired backplane.

ViFi explicitly targets deployments where "inter-BS communication tends
to be based on relatively thin broadband links or a multi-hop wireless
mesh" (Section 4.1), unlike enterprise-WLAN diversity systems that
assume a high-capacity LAN.  Upstream relays and salvage transfers
traverse this plane; the protocol's claim is that it "places little
additional demand" on it.

The model: every BS has a wired uplink of ``bandwidth_bps``; a message
from one BS to another is serialized on the sender's uplink (FIFO) and
arrives after a propagation ``latency_s``.  The backplane is reliable
(it is wired) but counts every byte per category so experiments can
report the relaying/salvaging load that Section 5.4 discusses.
"""

__all__ = ["Backplane"]


class Backplane:
    """Wired inter-BS message plane with per-sender FIFO serialization.

    Args:
        sim: the simulator.
        bandwidth_bps: per-BS uplink capacity (default 1 Mbps — "thin
            broadband").
        latency_s: one-way propagation + switching latency.
    """

    def __init__(self, sim, bandwidth_bps=1_000_000.0, latency_s=0.01):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.bandwidth = float(bandwidth_bps)
        self.latency = float(latency_s)
        self._members = set()
        self._uplink_free_at = {}
        self.bytes_sent = {}
        self.messages_sent = {}

    def connect(self, bs_id):
        """Register a basestation on the backplane."""
        self._members.add(bs_id)
        self._uplink_free_at.setdefault(bs_id, 0.0)

    def is_connected(self, bs_id):
        return bs_id in self._members

    def send(self, src, dst, payload, size_bytes, on_delivery,
             category="relay"):
        """Send *payload* from BS *src* to BS *dst*.

        Args:
            payload: opaque object handed to *on_delivery*.
            size_bytes: serialized size for bandwidth accounting.
            on_delivery: callable ``(payload) -> None`` invoked at the
                receiver when the message arrives.
            category: accounting bucket ("relay", "salvage",
                "forward", ...).

        Returns:
            The simulation time at which delivery will occur.
        """
        if src not in self._members:
            raise KeyError(f"BS {src} not on the backplane")
        if dst not in self._members:
            raise KeyError(f"BS {dst} not on the backplane")
        if size_bytes < 0:
            raise ValueError("size must be non-negative")

        now = self.sim.now
        start = max(now, self._uplink_free_at[src])
        tx_done = start + size_bytes * 8.0 / self.bandwidth
        self._uplink_free_at[src] = tx_done
        arrival = tx_done + self.latency

        self.bytes_sent[category] = (
            self.bytes_sent.get(category, 0) + size_bytes
        )
        self.messages_sent[category] = self.messages_sent.get(category, 0) + 1

        self.sim.schedule_at(arrival, on_delivery, payload)
        return arrival

    def total_bytes(self, category=None):
        """Bytes sent, optionally restricted to one category."""
        if category is not None:
            return self.bytes_sent.get(category, 0)
        return sum(self.bytes_sent.values())
