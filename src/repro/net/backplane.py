"""The bandwidth-limited inter-BS wired backplane.

ViFi explicitly targets deployments where "inter-BS communication tends
to be based on relatively thin broadband links or a multi-hop wireless
mesh" (Section 4.1), unlike enterprise-WLAN diversity systems that
assume a high-capacity LAN.  Upstream relays and salvage transfers
traverse this plane; the protocol's claim is that it "places little
additional demand" on it.

The model: every BS has a wired uplink of ``bandwidth_bps``; a message
from one BS to another is serialized on the sender's uplink (FIFO) and
arrives after a propagation ``latency_s``.  The backplane is reliable
(it is wired) but counts every byte per category so experiments can
report the relaying/salvaging load that Section 5.4 discusses.

Degraded operation (the fault plane, :mod:`repro.sim.faults`): a BS
may be *partitioned* (temporarily unreachable over the wire) or
*disconnected* (removed), and the plane-wide latency can spike by a
multiplier.  Messages to or from an unreachable BS are dropped
silently and counted in ``dropped`` — the wired plane is best-effort
under faults, and the protocol's recovery path is end-to-end source
retransmission, never an exception out of the relay/salvage machinery.
"""

__all__ = ["Backplane"]


class Backplane:
    """Wired inter-BS message plane with per-sender FIFO serialization.

    Args:
        sim: the simulator.
        bandwidth_bps: per-BS uplink capacity (default 1 Mbps — "thin
            broadband").
        latency_s: one-way propagation + switching latency.
    """

    def __init__(self, sim, bandwidth_bps=1_000_000.0, latency_s=0.01):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.bandwidth = float(bandwidth_bps)
        self.latency = float(latency_s)
        #: Transient latency scaling (fault plane); 1.0 is nominal.
        self.latency_multiplier = 1.0
        self._members = set()
        self._partitioned = set()
        self._uplink_free_at = {}
        self.bytes_sent = {}
        self.messages_sent = {}
        #: Messages dropped per category because an endpoint was
        #: partitioned or disconnected.
        self.dropped = {}

    def connect(self, bs_id):
        """Register a basestation on the backplane."""
        self._members.add(bs_id)
        self._uplink_free_at.setdefault(bs_id, 0.0)

    def disconnect(self, bs_id):
        """Remove a basestation; later messages to/from it are dropped."""
        self._members.discard(bs_id)
        self._partitioned.discard(bs_id)

    def partition(self, bs_id):
        """Cut *bs_id* off the wired plane without deregistering it."""
        self._partitioned.add(bs_id)

    def heal(self, bs_id):
        """Undo :meth:`partition`."""
        self._partitioned.discard(bs_id)

    def is_partitioned(self, bs_id):
        return bs_id in self._partitioned

    def is_connected(self, bs_id):
        return bs_id in self._members

    def reachable(self, src, dst):
        """Whether a message from *src* can currently reach *dst*."""
        members, cut = self._members, self._partitioned
        return (src in members and dst in members
                and src not in cut and dst not in cut)

    def send(self, src, dst, payload, size_bytes, on_delivery,
             category="relay"):
        """Send *payload* from BS *src* to BS *dst*.

        Args:
            payload: opaque object handed to *on_delivery*.
            size_bytes: serialized size for bandwidth accounting.
            on_delivery: callable ``(payload) -> None`` invoked at the
                receiver when the message arrives.
            category: accounting bucket ("relay", "salvage",
                "forward", ...).

        Returns:
            The simulation time at which delivery will occur, or
            ``None`` when the message was dropped because either
            endpoint is partitioned or no longer on the backplane
            (counted in ``dropped``; the caller's recovery path is
            source retransmission, so no exception is raised).
        """
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        if not self.reachable(src, dst):
            self.dropped[category] = self.dropped.get(category, 0) + 1
            return None

        now = self.sim.now
        start = max(now, self._uplink_free_at[src])
        tx_done = start + size_bytes * 8.0 / self.bandwidth
        self._uplink_free_at[src] = tx_done
        arrival = tx_done + self.latency * self.latency_multiplier

        self.bytes_sent[category] = (
            self.bytes_sent.get(category, 0) + size_bytes
        )
        self.messages_sent[category] = self.messages_sent.get(category, 0) + 1

        self.sim.schedule_at(arrival, on_delivery, payload)
        return arrival

    def total_bytes(self, category=None):
        """Bytes sent, optionally restricted to one category."""
        if category is not None:
            return self.bytes_sent.get(category, 0)
        return sum(self.bytes_sent.values())
