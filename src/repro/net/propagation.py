"""Radio propagation: path loss, shadowing, gray periods, RSSI.

The VanLAN measurement study found that vehicular connectivity "is often
marred by gray periods where connection quality drops sharply" and
"occur even close to BSes" (Section 3.3).  Our link model therefore has
three layers:

1. **Log-distance path loss** sets the mean received power as a
   function of distance.
2. **Lognormal shadowing**, temporally correlated through an AR(1)
   (Ornstein-Uhlenbeck) process updated once per second, models the
   slowly varying obstruction environment as the vehicle moves.
3. **Gray periods**: a Poisson process of short windows during which
   the reception probability collapses regardless of distance —
   reproducing the unpredictable sharp drops the paper measured.

Received power maps to packet reception probability through a logistic
curve calibrated for 500-byte frames at 1 Mbps (the paper's fixed rate,
Section 5.1).

Link evaluation is the hottest path of a protocol run (every frame asks
every in-range receiver for its instantaneous loss probability), so this
module also provides the fast path: :class:`SpatialField` evaluates its
random-Fourier sum vectorized with numpy behind a position-quantized LRU
cache, :class:`GrayPeriodProcess` answers queries by bisection over
merged intervals and prunes expired ones, and :class:`LinkStateCache`
memoizes a link's RSSI / reception probability per time quantum (safe
because shadowing interpolates on a 1 s lattice and mobility is smooth;
``quantum_s=0`` degenerates to exact-time memoization and is bitwise
identical to the uncached model).

On top of the per-link cache sits :class:`LinkBank`: in the ViFi
setting every vehicle transmission is heard by all ~11 basestations at
the same instant (the paper's Figure 5 diversity argument), so the N
per-link cache misses of one time quantum are really one batched
computation.  The bank stacks the per-BS spatial-field Fourier
coefficients, shadowing lattices, and geometry into shared numpy arrays
and fills every member cache's bucket in a single vectorized pass.
Under the default *bucket-centre* sampling convention a bucket's value
is a pure function of (link, bucket): chunks of buckets are computed in
large vectorized passes, whole trips can be prefilled at build time,
and one prefilled bank can be shared read-only across every seed and
policy of a sweep (``sampling="first-query"`` keeps the historical
query-time convention bitwise).
"""

import bisect
import math
import time

import numpy as np

__all__ = [
    "GrayPeriodProcess",
    "LinkBank",
    "LinkModel",
    "LinkStateCache",
    "RadioProfile",
    "Shadowing",
    "SpatialField",
]


class RadioProfile:
    """Static radio parameters shared by a deployment.

    Attributes:
        tx_power_dbm: transmit power.
        path_loss_exponent: log-distance exponent (3.2 suits suburban
            outdoor non-line-of-sight).
        ref_loss_db: path loss at the 1 m reference distance.
        shadowing_sigma_db: lognormal shadowing standard deviation.
        shadowing_tau_s: shadowing decorrelation time constant.
        decode_mid_dbm: RSSI at which half the frames decode.
        decode_width_db: logistic width of the decode curve.
        max_reception: ceiling on the decode probability.  Outdoor
            vehicular links never reach wired-like reliability — the
            paper's measured reception probabilities top out around
            0.67-0.75 even for chosen BS pairs (Figure 6b) — so the
            logistic curve is scaled by this cap.
        noise_floor_dbm: floor below which nothing is ever received.
        gray_rate_per_s: Poisson rate of gray-period onsets per link.
        gray_duration_s: mean gray-period duration.
        gray_residual_reception: reception probability inside a gray
            period (close to zero).
    """

    def __init__(self, tx_power_dbm=18.0, path_loss_exponent=3.2,
                 ref_loss_db=41.0, shadowing_sigma_db=5.5,
                 shadowing_tau_s=12.0, decode_mid_dbm=-88.0,
                 decode_width_db=3.5, max_reception=1.0,
                 noise_floor_dbm=-100.0,
                 gray_rate_per_s=1.0 / 45.0, gray_duration_s=2.5,
                 gray_residual_reception=0.05):
        self.tx_power_dbm = tx_power_dbm
        self.path_loss_exponent = path_loss_exponent
        self.ref_loss_db = ref_loss_db
        self.shadowing_sigma_db = shadowing_sigma_db
        self.shadowing_tau_s = shadowing_tau_s
        self.decode_mid_dbm = decode_mid_dbm
        self.decode_width_db = decode_width_db
        self.max_reception = max_reception
        self.noise_floor_dbm = noise_floor_dbm
        self.gray_rate_per_s = gray_rate_per_s
        self.gray_duration_s = gray_duration_s
        self.gray_residual_reception = gray_residual_reception

    def cache_token(self):
        """Identity for content-addressed caching (see repro.store)."""
        return ("RadioProfile",) + tuple(sorted(self.__dict__.items()))

    def mean_rssi(self, distance_m):
        """Mean RSSI (dBm) at *distance_m* via log-distance path loss."""
        d = max(float(distance_m), 1.0)
        loss = self.ref_loss_db + 10.0 * self.path_loss_exponent * math.log10(d)
        return self.tx_power_dbm - loss

    def reception_prob(self, rssi_dbm):
        """Frame decode probability at a given RSSI (logistic curve)."""
        if rssi_dbm <= self.noise_floor_dbm:
            return 0.0
        x = (rssi_dbm - self.decode_mid_dbm) / self.decode_width_db
        # Clamp to avoid overflow in exp for extreme arguments.
        if x > 30:
            return self.max_reception
        if x < -30:
            return 0.0
        return self.max_reception / (1.0 + math.exp(-x))


class Shadowing:
    """AR(1) lognormal shadowing sampled on a one-second lattice.

    The process satisfies ``s[k+1] = a * s[k] + sqrt(1-a^2) * sigma * w``
    with ``a = exp(-1/tau)``, giving an exponentially decaying
    autocorrelation with time constant ``tau`` seconds and a stationary
    standard deviation ``sigma`` dB.  Values between lattice points are
    linearly interpolated so RSSI varies smoothly.
    """

    def __init__(self, sigma_db, tau_s, rng):
        self.sigma = float(sigma_db)
        self.a = math.exp(-1.0 / max(float(tau_s), 1e-9))
        self.rng = rng
        self._values = [self.rng.normal(0.0, self.sigma)]

    def _extend_to(self, k):
        innov = math.sqrt(max(1.0 - self.a * self.a, 0.0)) * self.sigma
        while len(self._values) <= k + 1:
            prev = self._values[-1]
            self._values.append(self.a * prev + self.rng.normal(0.0, innov))

    def value_db(self, t):
        """Shadowing offset in dB at time *t* (t >= 0)."""
        if t < 0:
            raise ValueError("shadowing queried before time zero")
        k = int(t)
        values = self._values
        if len(values) <= k + 1:
            self._extend_to(k)
        frac = t - k
        return (1.0 - frac) * values[k] + frac * values[k + 1]


class SpatialField:
    """A static, spatially correlated shadowing field (dB).

    Obstructions like buildings and trees give each *location* a
    persistent quality offset relative to free-space prediction; this is
    what makes history-based BS selection work (the paper's History
    policy, after MobiSteer, predicts per-location performance from the
    previous day).  We synthesize a zero-mean Gaussian-process-like
    field as a sum of random-frequency cosines (random Fourier
    features), which is smooth over the given correlation length and
    deterministic for a given stream.

    The cosine sum is evaluated vectorized (one numpy expression over
    all terms) behind a small LRU cache keyed on the quantized query
    position.  With ``cache_quantum_m=0`` (the default) the key is the
    exact position, so caching is invisible: it only collapses repeated
    queries at the same point (each transmission queries the field once
    per direction and once for the RSSI report).  A positive quantum
    trades accuracy for hit rate; the error is bounded by the field's
    gradient (of order ``sigma / correlation_m`` dB per metre) times the
    quantum.

    Args:
        sigma_db: stationary standard deviation of the field.
        correlation_m: spatial correlation length in metres.
        rng: stream used to draw frequencies/phases (one-shot).
        n_terms: number of cosine terms; more terms make the field
            closer to Gaussian.
        cache_quantum_m: position quantization of the cache key in
            metres; 0 keys on exact positions.
        cache_size: maximum cached positions (LRU eviction).
    """

    def __init__(self, sigma_db, correlation_m, rng, n_terms=48,
                 cache_quantum_m=0.0, cache_size=1024):
        self.sigma = float(sigma_db)
        scale = 1.0 / max(float(correlation_m), 1e-9)
        self._freqs = rng.normal(0.0, scale, size=(n_terms, 2))
        self._phases = rng.uniform(0.0, 2.0 * math.pi, size=n_terms)
        self._amp = self.sigma * math.sqrt(2.0 / n_terms)
        self._fx = np.ascontiguousarray(self._freqs[:, 0])
        self._fy = np.ascontiguousarray(self._freqs[:, 1])
        self.cache_quantum = float(cache_quantum_m)
        self._cache = {}
        self._cache_size = int(cache_size)

    def _evaluate(self, x, y):
        total = np.cos(self._fx * x + self._fy * y + self._phases).sum()
        return self._amp * float(total)

    def value_db(self, x, y):
        """Field value at position ``(x, y)``."""
        quantum = self.cache_quantum
        if quantum > 0.0:
            key = (round(x / quantum), round(y / quantum))
        else:
            key = (x, y)
        cache = self._cache
        value = cache.get(key)
        if value is None:
            if quantum > 0.0:
                # Evaluate at the cell centre so the cached value is a
                # pure function of the key: the same location always
                # reads the same offset regardless of query order or
                # LRU eviction history.
                value = self._evaluate(key[0] * quantum, key[1] * quantum)
            else:
                value = self._evaluate(x, y)
            if len(cache) >= self._cache_size:
                # Evict the oldest entry (dicts preserve insertion
                # order); approximate LRU is plenty for a smooth field.
                del cache[next(iter(cache))]
            cache[key] = value
        return value


class GrayPeriodProcess:
    """Poisson arrivals of short reception collapses on a link.

    Onsets arrive at rate ``rate_per_s``; each lasts an exponential
    duration with the configured mean.  Overlapping periods merge.

    Intervals are stored merged and sorted, queries answered by
    bisection, and intervals that ended before the latest query time are
    pruned (simulation time is monotone), so long runs stay O(log n)
    per query instead of scanning the full history.
    """

    def __init__(self, rate_per_s, mean_duration_s, rng, horizon_hint_s=1200.0):
        self.rate = float(rate_per_s)
        self.mean_duration = float(mean_duration_s)
        self.rng = rng
        # Parallel arrays of merged, disjoint intervals sorted by start.
        # ``_low`` is the prune head: entries below it ended at or
        # before the latest query time and are compacted away lazily.
        self._starts = []
        self._ends = []
        self._low = 0
        self._generated_until = 0.0
        self._horizon_step = float(horizon_hint_s)

    def _append(self, start, end):
        if self._ends and start <= self._ends[-1]:
            # Overlapping or touching periods merge.
            if end > self._ends[-1]:
                self._ends[-1] = end
        else:
            self._starts.append(start)
            self._ends.append(end)

    def _generate_until(self, t):
        while self._generated_until <= t:
            start = self._generated_until
            end = start + self._horizon_step
            if self.rate > 0:
                expected = self.rate * (end - start)
                count = self.rng.poisson(expected)
                onsets = sorted(self.rng.uniform(start, end, size=count))
                for onset in onsets:
                    duration = self.rng.exponential(self.mean_duration)
                    self._append(onset, onset + duration)
            self._generated_until = end

    #: Pruning slack (seconds): intervals are only dropped once they
    #: ended this far before the latest query, so the slightly
    #: out-of-order queries the medium makes (frames are resolved in
    #: end-time order but evaluated at their start times, a few
    #: milliseconds of reordering) never lose a just-expired period.
    _PRUNE_SLACK_S = 1.0

    def in_gray(self, t):
        """True when time *t* falls inside a gray period.

        Queries are expected to be roughly monotone in *t* (reordering
        within ``_PRUNE_SLACK_S`` is fine); a query drops intervals
        that ended more than the slack before it, so a query further in
        the past may miss already-pruned periods.
        """
        self._generate_until(t)
        starts, ends, low = self._starts, self._ends, self._low
        cutoff = t - self._PRUNE_SLACK_S
        while low < len(ends) and ends[low] <= cutoff:
            low += 1
        if low > 256:
            del starts[:low]
            del ends[:low]
            low = 0
        self._low = low
        idx = bisect.bisect_right(starts, t, lo=low) - 1
        return idx >= low and ends[idx] > t


class LinkModel:
    """A directed radio link: mean reception probability over time.

    Combines path loss between the two endpoints' (possibly moving)
    positions, shadowing, and gray periods.  The model is *directional*
    in use but built symmetrically: callers typically create one model
    per unordered pair and share it for both directions, matching the
    paper's symmetric trace methodology, or create two with independent
    shadowing for asymmetry studies.

    Args:
        profile: the :class:`RadioProfile`.
        position_a / position_b: callables ``t -> (x, y)``.
        shadowing: a :class:`Shadowing` instance or ``None``.
        gray: a :class:`GrayPeriodProcess` or ``None``.
        spatial: a :class:`SpatialField` evaluated at endpoint *b*'s
            position (conventionally the moving endpoint), or ``None``.
    """

    def __init__(self, profile, position_a, position_b, shadowing=None,
                 gray=None, spatial=None):
        self.profile = profile
        self.position_a = position_a
        self.position_b = position_b
        self.shadowing = shadowing
        self.gray = gray
        self.spatial = spatial

    def distance(self, t):
        ax, ay = self.position_a(t)
        bx, by = self.position_b(t)
        return math.hypot(ax - bx, ay - by)

    def rssi(self, t):
        """Instantaneous RSSI including shadowing (dBm)."""
        ax, ay = self.position_a(t)
        bx, by = self.position_b(t)
        value = self.profile.mean_rssi(math.hypot(ax - bx, ay - by))
        if self.shadowing is not None:
            value += self.shadowing.value_db(t)
        if self.spatial is not None:
            value += self.spatial.value_db(bx, by)
        return value

    def reception_prob(self, t):
        """Mean packet reception probability at time *t*."""
        p = self.profile.reception_prob(self.rssi(t))
        if self.gray is not None and self.gray.in_gray(t):
            p = min(p, self.profile.gray_residual_reception)
        return p

    def loss_prob(self, t):
        return 1.0 - self.reception_prob(t)


class LinkStateCache:
    """Memoizes a :class:`LinkModel`'s RSSI / reception per time quantum.

    Every frame on the medium asks the link model for its instantaneous
    loss probability, but the model's ingredients change slowly:
    shadowing interpolates on a 1 s lattice, the spatial field varies
    over tens of metres (several seconds of driving), and gray periods
    last seconds.  Quantizing the query time to ``quantum_s`` therefore
    barely changes the answer — the reception-probability error is
    bounded by the model's time derivative (lattice slope plus field
    gradient times vehicle speed, a few dB/s) times the quantum — while
    collapsing the many evaluations a busy medium makes inside one
    quantum into a single computation.

    Two properties make the cache safe:

    * **Monotone time** — simulation time never goes backwards, so
      entries never need invalidation; only the latest bucket is kept.
    * **Deterministic replay** — the underlying stochastic processes
      (shadowing lattice, gray periods) extend themselves lazily but
      deterministically, so skipping intermediate queries consumes
      exactly the same RNG stream as making them.

    With ``quantum_s=0`` the bucket is the exact query time: results
    are bit-for-bit identical to the uncached model, and the cache only
    collapses repeated queries at the same instant (e.g. the up- and
    down-direction loss processes of one link resolving the same
    frame).

    A cache may be a member of a :class:`LinkBank` (``bank`` /
    ``bank_index``): misses are then served from the bank's vectorized
    pass, which fills every member's bucket at once.  Banking only
    engages for a positive quantum — with ``quantum_s=0`` the scalar
    path runs unconditionally, preserving the bitwise guarantee.

    Args:
        link: the wrapped :class:`LinkModel`.
        quantum_s: time quantum in seconds (default 20 ms).
        bank: owning :class:`LinkBank`, or ``None`` for scalar misses.
        bank_index: this link's row in the bank's arrays.
    """

    #: Default time quantum (seconds) used by the testbed fast paths.
    DEFAULT_QUANTUM_S = 0.02

    __slots__ = ("link", "quantum", "bank", "bank_index", "_rssi_key",
                 "_rssi", "_prob_key", "_prob")

    def __init__(self, link, quantum_s=DEFAULT_QUANTUM_S, bank=None,
                 bank_index=None):
        self.link = link
        self.quantum = float(quantum_s)
        self.bank = bank if self.quantum > 0.0 else None
        self.bank_index = bank_index
        self._rssi_key = None
        self._rssi = 0.0
        self._prob_key = None
        self._prob = 0.0

    @property
    def profile(self):
        return self.link.profile

    def distance(self, t):
        return self.link.distance(t)

    def rssi(self, t):
        """Instantaneous RSSI (dBm), recomputed once per quantum."""
        key = t if self.quantum <= 0.0 else int(t / self.quantum)
        if key != self._rssi_key:
            if self.bank is not None:
                self._rssi = self.bank.rssi_at(self.bank_index, key, t)
            else:
                self._rssi = self.link.rssi(t)
            self._rssi_key = key
        return self._rssi

    def reception_prob(self, t):
        """Mean reception probability, recomputed once per quantum."""
        key = t if self.quantum <= 0.0 else int(t / self.quantum)
        if key != self._prob_key:
            link = self.link
            if self.bank is not None:
                self._prob = self.bank.prob_at(self.bank_index, key, t)
                self._prob_key = key
                return self._prob
            if key != self._rssi_key:
                self._rssi = link.rssi(t)
                self._rssi_key = key
            p = link.profile.reception_prob(self._rssi)
            if link.gray is not None and link.gray.in_gray(t):
                p = min(p, link.profile.gray_residual_reception)
            self._prob = p
            self._prob_key = key
        return self._prob

    def loss_prob(self, t):
        return 1.0 - self.reception_prob(t)


class LinkBank:
    """Vectorized evaluation of many links sharing one moving endpoint.

    When the vehicle transmits, every basestation link needs its
    RSSI / reception probability at the same instant; when any BS
    transmits, the vehicle link needs them moments later inside the
    same time quantum.  Evaluating those N cache misses one by one
    repeats the same work N times: one position lookup, N scalar
    path-loss evaluations, N spatial-field cosine sums, N shadowing
    interpolations.  The bank runs it as one pass:

    * the per-BS spatial-field Fourier coefficients are stacked into
      ``(N, T)`` numpy matrices — every field's value at the vehicle
      position is one ``cos`` / row-sum pass, behind the same
      position-quantized cache the scalar fields use (evaluated at the
      quantized cell centre, so banked and scalar lookups agree to
      float arithmetic);
    * path loss, shadowing interpolation, and the decode logistic run
      as a tight scalar loop over the stacked geometry and lattice
      references, sharing the position lookup and per-second lattice
      extension — at bank sizes around a testbed's ~11 BSes this beats
      elementwise numpy dispatch while mirroring the scalar
      :class:`LinkModel` expressions term for term;
    * gray periods stay per-link (a bisection per bucket — cheap, and
      the Poisson realizations are untouched); links already at or
      below the gray residual skip the query, which is safe because
      the processes extend deterministically.

    The bank computes one bucket at a time (simulation time is
    monotone) and member :class:`LinkStateCache` objects read their row
    from it, so the N scalar misses of one quantum collapse into a
    single pass.  The underlying stochastic processes extend
    themselves lazily but deterministically, so banked and scalar
    evaluation consume identical RNG streams and agree to float
    tolerance (the banked spatial row-sum may differ from the scalar
    field's sum in the last ulp).

    **Sampling conventions.**  ``sampling`` picks where inside a time
    bucket the bank evaluates the propagation stack:

    * ``"first-query"`` — at the first query time any member makes
      inside the bucket (the historical behaviour, kept verbatim).
      The value therefore depends on *when* the bucket was first
      touched, so buckets cannot be computed ahead of time.
    * ``"centre"`` (default) — at the bucket's centre instant
      ``(key + 0.5) * quantum_s``: the value is a **pure function of
      (link, bucket)**.  Buckets are then computed in chunk-aligned
      vectorized passes (:attr:`_CHUNK` buckets per pass — one numpy
      pipeline over the chunk's quantized vehicle positions instead of
      per-bucket scalar loops), whole trips can be prefilled at build
      time (:meth:`prefill`), and one prefilled bank can be shared
      read-only across every seed/policy run of a sweep: the same
      (testbed, trip, quantum) always reproduces the same bank.
      Lazy and prefilled fills run the *identical* chunk pipeline over
      the identical chunk boundaries, so they are bit-for-bit equal
      and consume the same RNG (the lattice/gray extensions are
      deterministic).

    Both conventions are one sample from inside the bucket, with the
    same quantum error bound; they differ in realization, not in
    distribution.  ``quantum_s=0`` disables banking entirely (members
    stay bitwise-scalar) under either convention.

    Requirements: every link shares the same :class:`RadioProfile` and
    the same moving-endpoint callable (``position_b``); the static
    endpoints (``position_a``) must not move; spatial fields, when
    present, must share term count and cache quantum.

    Args:
        links: :class:`LinkModel` instances satisfying the above.
        quantum_s: time quantum handed to the member caches.
        spatial_cache_size: maximum cached vehicle positions for the
            banked spatial-field pass (LRU eviction).
        sampling: ``"centre"`` or ``"first-query"`` (see above).
    """

    #: Buckets computed per vectorized fill pass in centre mode.  Lazy
    #: fills and :meth:`prefill` both compute whole chunk-aligned
    #: ranges, so the two fill orders produce identical chunks.
    _CHUNK = 256

    def __init__(self, links, quantum_s=LinkStateCache.DEFAULT_QUANTUM_S,
                 spatial_cache_size=1024, sampling="centre"):
        if sampling not in ("centre", "first-query"):
            raise ValueError(f"unknown sampling convention {sampling!r}")
        self.sampling = sampling
        links = list(links)
        if not links:
            raise ValueError("LinkBank needs at least one link")
        profile = links[0].profile
        position = links[0].position_b
        for link in links:
            if link.profile is not profile:
                raise ValueError("banked links must share a RadioProfile")
            if link.position_b is not position:
                raise ValueError(
                    "banked links must share the moving endpoint"
                )
        self.links = links
        self.profile = profile
        self.quantum = float(quantum_s)
        self._position = position
        n = len(links)
        # Static endpoint geometry (sampled once; banked links must
        # have stationary A endpoints).
        ax, ay = zip(*(link.position_a(0.0) for link in links))
        self._ax = [float(v) for v in ax]
        self._ay = [float(v) for v in ay]
        # Shadowing lattices; value lists are read directly per pass.
        self._shadowings = [link.shadowing for link in links]
        # Spatial fields, banked into (N, T) coefficient matrices.
        fields = [(i, link.spatial) for i, link in enumerate(links)
                  if link.spatial is not None]
        if fields:
            terms = {f._fx.shape[0] for _, f in fields}
            quanta = {f.cache_quantum for _, f in fields}
            if len(terms) != 1 or len(quanta) != 1:
                raise ValueError(
                    "banked spatial fields must share term count and "
                    "cache quantum"
                )
            self._sp_rows = np.asarray([i for i, _ in fields])
            self._sp_fx = np.stack([f._fx for _, f in fields])
            self._sp_fy = np.stack([f._fy for _, f in fields])
            self._sp_ph = np.stack([f._phases for _, f in fields])
            self._sp_amp = np.asarray([f._amp for _, f in fields])
            self._sp_quantum = fields[0][1].cache_quantum
            self._sp_cache = {}
            self._sp_cache_size = int(spatial_cache_size)
            if len(fields) != n:
                raise ValueError(
                    "banked links must all have a spatial field or none"
                )
        else:
            self._sp_rows = None
        self._grays = [link.gray for link in links]
        # One bucket of results at a time; python lists so member reads
        # never pay numpy scalar boxing.
        self._key = None
        self._rssi_list = [0.0] * n
        self._prob_list = [0.0] * n
        self._indices = range(n)
        # Centre-mode chunk store: chunk index -> (rssi, prob) float64
        # matrices of shape (n, _CHUNK).  Append-only and a pure
        # function of (links, quantum), so a prefilled bank can be
        # shared read-only across runs (fork workers inherit the
        # pages; sequential runs in one process reuse them directly).
        self._chunks = {}
        self._centre_column = None
        #: Simulated horizon (seconds) covered by :meth:`prefill`.
        self.prefilled_until = 0.0
        #: Wall seconds spent in :meth:`prefill` (tracked so benchmark
        #: harnesses can report build cost separately from run cost).
        self.prefill_wall_s = 0.0

    def wrap(self):
        """Member :class:`LinkStateCache` objects, one per banked link."""
        return [
            LinkStateCache(link, quantum_s=self.quantum, bank=self,
                           bank_index=i)
            for i, link in enumerate(self.links)
        ]

    # -- banked passes ---------------------------------------------------

    def _spatial_values(self, x, y):
        """All fields' offsets at ``(x, y)`` as a python list."""
        quantum = self._sp_quantum
        if quantum > 0.0:
            key = (round(x / quantum), round(y / quantum))
            cache = self._sp_cache
            values = cache.get(key)
            if values is None:
                # Same cell-centre convention as the scalar fields: the
                # cached vector is a pure function of the key.
                cx, cy = key[0] * quantum, key[1] * quantum
                values = (self._sp_amp * np.cos(
                    self._sp_fx * cx + self._sp_fy * cy + self._sp_ph
                ).sum(axis=1)).tolist()
                if len(cache) >= self._sp_cache_size:
                    del cache[next(iter(cache))]
                cache[key] = values
            return values
        return (self._sp_amp * np.cos(
            self._sp_fx * x + self._sp_fy * y + self._sp_ph
        ).sum(axis=1)).tolist()

    def _refresh(self, key, t):
        """One pass filling every link's bucket at time *t*.

        The (N, T)-term spatial cosine matrix is the only numpy work
        (amortized by its position cache); the per-link combine runs as
        a tight scalar loop, which beats elementwise numpy dispatch at
        bank sizes around a testbed's ~11 BSes and mirrors the scalar
        :class:`LinkModel` expressions term for term.
        """
        profile = self.profile
        x, y = self._position(t)
        spatial = self._spatial_values(x, y) if self._sp_rows is not None \
            else None
        k = int(t)
        frac = t - k
        inv_frac = 1.0 - frac
        tx_power = profile.tx_power_dbm
        ref_loss = profile.ref_loss_db
        pl_exp10 = 10.0 * profile.path_loss_exponent
        mid = profile.decode_mid_dbm
        width = profile.decode_width_db
        max_r = profile.max_reception
        floor = profile.noise_floor_dbm
        residual = profile.gray_residual_reception
        rssi_list = self._rssi_list
        prob_list = self._prob_list
        ax, ay = self._ax, self._ay
        shadowings, grays = self._shadowings, self._grays
        hypot, log10, exp = math.hypot, math.log10, math.exp
        for i in self._indices:
            d = hypot(ax[i] - x, ay[i] - y)
            if d < 1.0:
                d = 1.0
            r = tx_power - (ref_loss + pl_exp10 * log10(d))
            shadow = shadowings[i]
            if shadow is not None:
                values = shadow._values
                if len(values) <= k + 1:
                    shadow._extend_to(k)
                    values = shadow._values
                r += inv_frac * values[k] + frac * values[k + 1]
            if spatial is not None:
                r += spatial[i]
            rssi_list[i] = r
            if r <= floor:
                p = 0.0
            else:
                arg = (r - mid) / width
                if arg > 30:
                    p = max_r
                elif arg < -30:
                    p = 0.0
                else:
                    p = max_r / (1.0 + exp(-arg))
            # Gray periods only matter when they would actually lower
            # the probability; the processes extend deterministically,
            # so skipping the query changes nothing downstream.
            if p > residual:
                gray = grays[i]
                if gray is not None and gray.in_gray(t):
                    p = residual
            prob_list[i] = p
        self._key = key

    # -- centre-mode chunk pipeline --------------------------------------

    def _spatial_matrix(self, px, py):
        """All fields' offsets at the chunk positions, shape (N, C).

        Served through the same cell-centre position cache as
        :meth:`_spatial_values`, with the identical per-cell
        expression, so chunked, per-bucket, and first-query lookups of
        one location always agree bit for bit.
        """
        quantum = self._sp_quantum
        columns = []
        if quantum > 0.0:
            cache = self._sp_cache
            for x, y in zip(px, py):
                key = (round(x / quantum), round(y / quantum))
                values = cache.get(key)
                if values is None:
                    cx, cy = key[0] * quantum, key[1] * quantum
                    values = (self._sp_amp * np.cos(
                        self._sp_fx * cx + self._sp_fy * cy + self._sp_ph
                    ).sum(axis=1)).tolist()
                    if len(cache) >= self._sp_cache_size:
                        del cache[next(iter(cache))]
                    cache[key] = values
                columns.append(values)
        else:
            for x, y in zip(px, py):
                columns.append((self._sp_amp * np.cos(
                    self._sp_fx * x + self._sp_fy * y + self._sp_ph
                ).sum(axis=1)).tolist())
        return np.asarray(columns, dtype=np.float64).T

    def _fill_chunk(self, chunk):
        """Compute centre-sampled buckets ``[chunk*_CHUNK, ...)``.

        One vectorized pipeline per chunk: stacked path loss over the
        chunk's vehicle positions, lattice-interpolated shadowing rows,
        the banked spatial matrix, the decode logistic, and a
        searchsorted gray-period overlay.  Every value is evaluated at
        its bucket-centre instant, so the result depends only on
        (links, quantum, chunk) — never on query order.
        """
        profile = self.profile
        quantum = self.quantum
        size = self._CHUNK
        k0 = chunk * size
        tc = (np.arange(k0, k0 + size, dtype=np.float64) + 0.5) * quantum
        position = self._position
        px = [0.0] * size
        py = [0.0] * size
        for j in range(size):
            px[j], py[j] = position(tc[j])
        pxa = np.asarray(px)
        pya = np.asarray(py)
        ax = np.asarray(self._ax)[:, None]
        ay = np.asarray(self._ay)[:, None]
        d = np.hypot(ax - pxa[None, :], ay - pya[None, :])
        np.maximum(d, 1.0, out=d)
        rssi = profile.tx_power_dbm - (
            profile.ref_loss_db
            + 10.0 * profile.path_loss_exponent * np.log10(d)
        )
        # Shadowing: extend each lattice deterministically to the chunk
        # end, then interpolate the whole chunk in one expression.
        k_lo = int(tc[0])
        k_hi = int(tc[-1])
        kk = tc.astype(np.int64)
        frac = tc - kk
        inv_frac = 1.0 - frac
        rel = kk - k_lo
        for i, shadow in enumerate(self._shadowings):
            if shadow is None:
                continue
            if len(shadow._values) <= k_hi + 1:
                shadow._extend_to(k_hi)
            vals = np.asarray(shadow._values[k_lo:k_hi + 2])
            rssi[i] += inv_frac * vals[rel] + frac * vals[rel + 1]
        if self._sp_rows is not None:
            rssi += self._spatial_matrix(px, py)
        # Decode logistic with the scalar clamps applied vectorized.
        arg = (rssi - profile.decode_mid_dbm) / profile.decode_width_db
        prob = profile.max_reception / (
            1.0 + np.exp(-np.clip(arg, -30.0, 30.0))
        )
        prob[arg > 30.0] = profile.max_reception
        prob[arg < -30.0] = 0.0
        prob[rssi <= profile.noise_floor_dbm] = 0.0
        # Gray periods: generate deterministically to the chunk end and
        # overlay by bisection over the merged intervals; as in the
        # scalar pass, links already at or below the residual skip the
        # query (the processes extend deterministically either way).
        residual = profile.gray_residual_reception
        t_end = float(tc[-1])
        for i, gray in enumerate(self._grays):
            if gray is None:
                continue
            row = prob[i]
            mask = row > residual
            if not mask.any():
                continue
            gray._generate_until(t_end)
            starts = np.asarray(gray._starts, dtype=np.float64)
            if starts.size == 0:
                continue
            ends = np.asarray(gray._ends, dtype=np.float64)
            times = tc[mask]
            idx = np.searchsorted(starts, times, side="right") - 1
            in_gray = (idx >= 0) & (ends[np.maximum(idx, 0)] > times)
            if in_gray.any():
                sub = row[mask]
                sub[in_gray] = residual
                row[mask] = sub
        data = (rssi, prob)
        self._chunks[chunk] = data
        return data

    def _load_bucket(self, key, t):
        """Make bucket *key* current (centre or first-query path)."""
        if self.sampling == "first-query":
            self._refresh(key, t)
            return
        chunk, offset = divmod(key, self._CHUNK)
        data = self._chunks.get(chunk)
        if data is None:
            data = self._fill_chunk(chunk)
        # The RSSI column is extracted lazily: protocol runs read only
        # probabilities on the hot path.
        self._rssi_list = None
        self._prob_list = data[1][:, offset].tolist()
        self._centre_column = (data[0], offset)
        self._key = key

    def prefill(self, until_s):
        """Precompute every centre-mode bucket up to *until_s* seconds.

        A whole trip's buckets are filled in ``n_buckets / _CHUNK``
        vectorized passes at build time, so the run itself performs
        only array reads and the prefilled bank can be shared across
        the seeds/policies of a sweep.  Requires ``sampling="centre"``
        (first-query values depend on query times and cannot be
        precomputed).  Returns the bank for chaining.
        """
        if self.sampling != "centre":
            raise ValueError(
                "prefill requires sampling='centre' (first-query values "
                "depend on query order)"
            )
        if self.quantum <= 0.0:
            return self
        t0 = time.perf_counter()
        last_chunk = int(float(until_s) / self.quantum) // self._CHUNK
        for chunk in range(last_chunk + 1):
            if chunk not in self._chunks:
                self._fill_chunk(chunk)
        self.prefilled_until = max(self.prefilled_until, float(until_s))
        self.prefill_wall_s += time.perf_counter() - t0
        return self

    # -- member reads ----------------------------------------------------

    def rssi_at(self, index, key, t):
        """RSSI (dBm) of link *index* for bucket *key* queried at *t*."""
        if key != self._key:
            self._load_bucket(key, t)
        values = self._rssi_list
        if values is None:
            rssi, offset = self._centre_column
            values = self._rssi_list = rssi[:, offset].tolist()
        return values[index]

    def prob_at(self, index, key, t):
        """Reception probability of link *index* for bucket *key*."""
        if key != self._key:
            self._load_bucket(key, t)
        return self._prob_list[index]

    def prob_span(self, index, k0, k1):
        """Reception probabilities of link *index*, buckets *k0*..*k1*.

        Centre-sampled buckets are pure functions of ``(links,
        quantum, bucket)`` — chunks are computed through the same
        :meth:`_fill_chunk` pipeline whether read lazily, prefilled,
        or span-read here — so reading a span *ahead of time* yields
        exactly the values future :meth:`prob_at` calls will see.
        This is what lets the medium's interval pre-draw plane commit
        to a whole beacon interval's thresholds up front.

        Returns a read-only float64 vector of length ``k1 - k0 + 1``
        (possibly a view into the chunk store — do not mutate), or
        ``None`` under first-query sampling, whose bucket values
        depend on query times and cannot be read ahead.
        """
        if self.sampling != "centre" or self.quantum <= 0.0 or k0 < 0:
            return None
        size = self._CHUNK
        chunks = self._chunks
        c0 = k0 // size
        c1 = k1 // size
        if c0 == c1:
            data = chunks.get(c0)
            if data is None:
                data = self._fill_chunk(c0)
            base = c0 * size
            return data[1][index, k0 - base:k1 - base + 1]
        parts = []
        for chunk in range(c0, c1 + 1):
            data = chunks.get(chunk)
            if data is None:
                data = self._fill_chunk(chunk)
            lo = k0 - chunk * size if chunk == c0 else 0
            hi = k1 - chunk * size + 1 if chunk == c1 else size
            parts.append(data[1][index, lo:hi])
        return np.concatenate(parts)
