"""Radio propagation: path loss, shadowing, gray periods, RSSI.

The VanLAN measurement study found that vehicular connectivity "is often
marred by gray periods where connection quality drops sharply" and
"occur even close to BSes" (Section 3.3).  Our link model therefore has
three layers:

1. **Log-distance path loss** sets the mean received power as a
   function of distance.
2. **Lognormal shadowing**, temporally correlated through an AR(1)
   (Ornstein-Uhlenbeck) process updated once per second, models the
   slowly varying obstruction environment as the vehicle moves.
3. **Gray periods**: a Poisson process of short windows during which
   the reception probability collapses regardless of distance —
   reproducing the unpredictable sharp drops the paper measured.

Received power maps to packet reception probability through a logistic
curve calibrated for 500-byte frames at 1 Mbps (the paper's fixed rate,
Section 5.1).

Link evaluation is the hottest path of a protocol run (every frame asks
every in-range receiver for its instantaneous loss probability), so this
module also provides the fast path: :class:`SpatialField` evaluates its
random-Fourier sum vectorized with numpy behind a position-quantized LRU
cache, :class:`GrayPeriodProcess` answers queries by bisection over
merged intervals and prunes expired ones, and :class:`LinkStateCache`
memoizes a link's RSSI / reception probability per time quantum (safe
because shadowing interpolates on a 1 s lattice and mobility is smooth;
``quantum_s=0`` degenerates to exact-time memoization and is bitwise
identical to the uncached model).
"""

import bisect
import math

import numpy as np

__all__ = [
    "GrayPeriodProcess",
    "LinkModel",
    "LinkStateCache",
    "RadioProfile",
    "Shadowing",
    "SpatialField",
]


class RadioProfile:
    """Static radio parameters shared by a deployment.

    Attributes:
        tx_power_dbm: transmit power.
        path_loss_exponent: log-distance exponent (3.2 suits suburban
            outdoor non-line-of-sight).
        ref_loss_db: path loss at the 1 m reference distance.
        shadowing_sigma_db: lognormal shadowing standard deviation.
        shadowing_tau_s: shadowing decorrelation time constant.
        decode_mid_dbm: RSSI at which half the frames decode.
        decode_width_db: logistic width of the decode curve.
        max_reception: ceiling on the decode probability.  Outdoor
            vehicular links never reach wired-like reliability — the
            paper's measured reception probabilities top out around
            0.67-0.75 even for chosen BS pairs (Figure 6b) — so the
            logistic curve is scaled by this cap.
        noise_floor_dbm: floor below which nothing is ever received.
        gray_rate_per_s: Poisson rate of gray-period onsets per link.
        gray_duration_s: mean gray-period duration.
        gray_residual_reception: reception probability inside a gray
            period (close to zero).
    """

    def __init__(self, tx_power_dbm=18.0, path_loss_exponent=3.2,
                 ref_loss_db=41.0, shadowing_sigma_db=5.5,
                 shadowing_tau_s=12.0, decode_mid_dbm=-88.0,
                 decode_width_db=3.5, max_reception=1.0,
                 noise_floor_dbm=-100.0,
                 gray_rate_per_s=1.0 / 45.0, gray_duration_s=2.5,
                 gray_residual_reception=0.05):
        self.tx_power_dbm = tx_power_dbm
        self.path_loss_exponent = path_loss_exponent
        self.ref_loss_db = ref_loss_db
        self.shadowing_sigma_db = shadowing_sigma_db
        self.shadowing_tau_s = shadowing_tau_s
        self.decode_mid_dbm = decode_mid_dbm
        self.decode_width_db = decode_width_db
        self.max_reception = max_reception
        self.noise_floor_dbm = noise_floor_dbm
        self.gray_rate_per_s = gray_rate_per_s
        self.gray_duration_s = gray_duration_s
        self.gray_residual_reception = gray_residual_reception

    def mean_rssi(self, distance_m):
        """Mean RSSI (dBm) at *distance_m* via log-distance path loss."""
        d = max(float(distance_m), 1.0)
        loss = self.ref_loss_db + 10.0 * self.path_loss_exponent * math.log10(d)
        return self.tx_power_dbm - loss

    def reception_prob(self, rssi_dbm):
        """Frame decode probability at a given RSSI (logistic curve)."""
        if rssi_dbm <= self.noise_floor_dbm:
            return 0.0
        x = (rssi_dbm - self.decode_mid_dbm) / self.decode_width_db
        # Clamp to avoid overflow in exp for extreme arguments.
        if x > 30:
            return self.max_reception
        if x < -30:
            return 0.0
        return self.max_reception / (1.0 + math.exp(-x))


class Shadowing:
    """AR(1) lognormal shadowing sampled on a one-second lattice.

    The process satisfies ``s[k+1] = a * s[k] + sqrt(1-a^2) * sigma * w``
    with ``a = exp(-1/tau)``, giving an exponentially decaying
    autocorrelation with time constant ``tau`` seconds and a stationary
    standard deviation ``sigma`` dB.  Values between lattice points are
    linearly interpolated so RSSI varies smoothly.
    """

    def __init__(self, sigma_db, tau_s, rng):
        self.sigma = float(sigma_db)
        self.a = math.exp(-1.0 / max(float(tau_s), 1e-9))
        self.rng = rng
        self._values = [self.rng.normal(0.0, self.sigma)]

    def _extend_to(self, k):
        innov = math.sqrt(max(1.0 - self.a * self.a, 0.0)) * self.sigma
        while len(self._values) <= k + 1:
            prev = self._values[-1]
            self._values.append(self.a * prev + self.rng.normal(0.0, innov))

    def value_db(self, t):
        """Shadowing offset in dB at time *t* (t >= 0)."""
        if t < 0:
            raise ValueError("shadowing queried before time zero")
        k = int(t)
        values = self._values
        if len(values) <= k + 1:
            self._extend_to(k)
        frac = t - k
        return (1.0 - frac) * values[k] + frac * values[k + 1]


class SpatialField:
    """A static, spatially correlated shadowing field (dB).

    Obstructions like buildings and trees give each *location* a
    persistent quality offset relative to free-space prediction; this is
    what makes history-based BS selection work (the paper's History
    policy, after MobiSteer, predicts per-location performance from the
    previous day).  We synthesize a zero-mean Gaussian-process-like
    field as a sum of random-frequency cosines (random Fourier
    features), which is smooth over the given correlation length and
    deterministic for a given stream.

    The cosine sum is evaluated vectorized (one numpy expression over
    all terms) behind a small LRU cache keyed on the quantized query
    position.  With ``cache_quantum_m=0`` (the default) the key is the
    exact position, so caching is invisible: it only collapses repeated
    queries at the same point (each transmission queries the field once
    per direction and once for the RSSI report).  A positive quantum
    trades accuracy for hit rate; the error is bounded by the field's
    gradient (of order ``sigma / correlation_m`` dB per metre) times the
    quantum.

    Args:
        sigma_db: stationary standard deviation of the field.
        correlation_m: spatial correlation length in metres.
        rng: stream used to draw frequencies/phases (one-shot).
        n_terms: number of cosine terms; more terms make the field
            closer to Gaussian.
        cache_quantum_m: position quantization of the cache key in
            metres; 0 keys on exact positions.
        cache_size: maximum cached positions (LRU eviction).
    """

    def __init__(self, sigma_db, correlation_m, rng, n_terms=48,
                 cache_quantum_m=0.0, cache_size=1024):
        self.sigma = float(sigma_db)
        scale = 1.0 / max(float(correlation_m), 1e-9)
        self._freqs = rng.normal(0.0, scale, size=(n_terms, 2))
        self._phases = rng.uniform(0.0, 2.0 * math.pi, size=n_terms)
        self._amp = self.sigma * math.sqrt(2.0 / n_terms)
        self._fx = np.ascontiguousarray(self._freqs[:, 0])
        self._fy = np.ascontiguousarray(self._freqs[:, 1])
        self.cache_quantum = float(cache_quantum_m)
        self._cache = {}
        self._cache_size = int(cache_size)

    def _evaluate(self, x, y):
        total = np.cos(self._fx * x + self._fy * y + self._phases).sum()
        return self._amp * float(total)

    def value_db(self, x, y):
        """Field value at position ``(x, y)``."""
        quantum = self.cache_quantum
        if quantum > 0.0:
            key = (round(x / quantum), round(y / quantum))
        else:
            key = (x, y)
        cache = self._cache
        value = cache.get(key)
        if value is None:
            if quantum > 0.0:
                # Evaluate at the cell centre so the cached value is a
                # pure function of the key: the same location always
                # reads the same offset regardless of query order or
                # LRU eviction history.
                value = self._evaluate(key[0] * quantum, key[1] * quantum)
            else:
                value = self._evaluate(x, y)
            if len(cache) >= self._cache_size:
                # Evict the oldest entry (dicts preserve insertion
                # order); approximate LRU is plenty for a smooth field.
                del cache[next(iter(cache))]
            cache[key] = value
        return value


class GrayPeriodProcess:
    """Poisson arrivals of short reception collapses on a link.

    Onsets arrive at rate ``rate_per_s``; each lasts an exponential
    duration with the configured mean.  Overlapping periods merge.

    Intervals are stored merged and sorted, queries answered by
    bisection, and intervals that ended before the latest query time are
    pruned (simulation time is monotone), so long runs stay O(log n)
    per query instead of scanning the full history.
    """

    def __init__(self, rate_per_s, mean_duration_s, rng, horizon_hint_s=1200.0):
        self.rate = float(rate_per_s)
        self.mean_duration = float(mean_duration_s)
        self.rng = rng
        # Parallel arrays of merged, disjoint intervals sorted by start.
        # ``_low`` is the prune head: entries below it ended at or
        # before the latest query time and are compacted away lazily.
        self._starts = []
        self._ends = []
        self._low = 0
        self._generated_until = 0.0
        self._horizon_step = float(horizon_hint_s)

    def _append(self, start, end):
        if self._ends and start <= self._ends[-1]:
            # Overlapping or touching periods merge.
            if end > self._ends[-1]:
                self._ends[-1] = end
        else:
            self._starts.append(start)
            self._ends.append(end)

    def _generate_until(self, t):
        while self._generated_until <= t:
            start = self._generated_until
            end = start + self._horizon_step
            if self.rate > 0:
                expected = self.rate * (end - start)
                count = self.rng.poisson(expected)
                onsets = sorted(self.rng.uniform(start, end, size=count))
                for onset in onsets:
                    duration = self.rng.exponential(self.mean_duration)
                    self._append(onset, onset + duration)
            self._generated_until = end

    #: Pruning slack (seconds): intervals are only dropped once they
    #: ended this far before the latest query, so the slightly
    #: out-of-order queries the medium makes (frames are resolved in
    #: end-time order but evaluated at their start times, a few
    #: milliseconds of reordering) never lose a just-expired period.
    _PRUNE_SLACK_S = 1.0

    def in_gray(self, t):
        """True when time *t* falls inside a gray period.

        Queries are expected to be roughly monotone in *t* (reordering
        within ``_PRUNE_SLACK_S`` is fine); a query drops intervals
        that ended more than the slack before it, so a query further in
        the past may miss already-pruned periods.
        """
        self._generate_until(t)
        starts, ends, low = self._starts, self._ends, self._low
        cutoff = t - self._PRUNE_SLACK_S
        while low < len(ends) and ends[low] <= cutoff:
            low += 1
        if low > 256:
            del starts[:low]
            del ends[:low]
            low = 0
        self._low = low
        idx = bisect.bisect_right(starts, t, lo=low) - 1
        return idx >= low and ends[idx] > t


class LinkModel:
    """A directed radio link: mean reception probability over time.

    Combines path loss between the two endpoints' (possibly moving)
    positions, shadowing, and gray periods.  The model is *directional*
    in use but built symmetrically: callers typically create one model
    per unordered pair and share it for both directions, matching the
    paper's symmetric trace methodology, or create two with independent
    shadowing for asymmetry studies.

    Args:
        profile: the :class:`RadioProfile`.
        position_a / position_b: callables ``t -> (x, y)``.
        shadowing: a :class:`Shadowing` instance or ``None``.
        gray: a :class:`GrayPeriodProcess` or ``None``.
        spatial: a :class:`SpatialField` evaluated at endpoint *b*'s
            position (conventionally the moving endpoint), or ``None``.
    """

    def __init__(self, profile, position_a, position_b, shadowing=None,
                 gray=None, spatial=None):
        self.profile = profile
        self.position_a = position_a
        self.position_b = position_b
        self.shadowing = shadowing
        self.gray = gray
        self.spatial = spatial

    def distance(self, t):
        ax, ay = self.position_a(t)
        bx, by = self.position_b(t)
        return math.hypot(ax - bx, ay - by)

    def rssi(self, t):
        """Instantaneous RSSI including shadowing (dBm)."""
        ax, ay = self.position_a(t)
        bx, by = self.position_b(t)
        value = self.profile.mean_rssi(math.hypot(ax - bx, ay - by))
        if self.shadowing is not None:
            value += self.shadowing.value_db(t)
        if self.spatial is not None:
            value += self.spatial.value_db(bx, by)
        return value

    def reception_prob(self, t):
        """Mean packet reception probability at time *t*."""
        p = self.profile.reception_prob(self.rssi(t))
        if self.gray is not None and self.gray.in_gray(t):
            p = min(p, self.profile.gray_residual_reception)
        return p

    def loss_prob(self, t):
        return 1.0 - self.reception_prob(t)


class LinkStateCache:
    """Memoizes a :class:`LinkModel`'s RSSI / reception per time quantum.

    Every frame on the medium asks the link model for its instantaneous
    loss probability, but the model's ingredients change slowly:
    shadowing interpolates on a 1 s lattice, the spatial field varies
    over tens of metres (several seconds of driving), and gray periods
    last seconds.  Quantizing the query time to ``quantum_s`` therefore
    barely changes the answer — the reception-probability error is
    bounded by the model's time derivative (lattice slope plus field
    gradient times vehicle speed, a few dB/s) times the quantum — while
    collapsing the many evaluations a busy medium makes inside one
    quantum into a single computation.

    Two properties make the cache safe:

    * **Monotone time** — simulation time never goes backwards, so
      entries never need invalidation; only the latest bucket is kept.
    * **Deterministic replay** — the underlying stochastic processes
      (shadowing lattice, gray periods) extend themselves lazily but
      deterministically, so skipping intermediate queries consumes
      exactly the same RNG stream as making them.

    With ``quantum_s=0`` the bucket is the exact query time: results
    are bit-for-bit identical to the uncached model, and the cache only
    collapses repeated queries at the same instant (e.g. the up- and
    down-direction loss processes of one link resolving the same
    frame).

    Args:
        link: the wrapped :class:`LinkModel`.
        quantum_s: time quantum in seconds (default 20 ms).
    """

    #: Default time quantum (seconds) used by the testbed fast paths.
    DEFAULT_QUANTUM_S = 0.02

    __slots__ = ("link", "quantum", "_rssi_key", "_rssi", "_prob_key",
                 "_prob")

    def __init__(self, link, quantum_s=DEFAULT_QUANTUM_S):
        self.link = link
        self.quantum = float(quantum_s)
        self._rssi_key = None
        self._rssi = 0.0
        self._prob_key = None
        self._prob = 0.0

    @property
    def profile(self):
        return self.link.profile

    def distance(self, t):
        return self.link.distance(t)

    def rssi(self, t):
        """Instantaneous RSSI (dBm), recomputed once per quantum."""
        key = t if self.quantum <= 0.0 else int(t / self.quantum)
        if key != self._rssi_key:
            self._rssi = self.link.rssi(t)
            self._rssi_key = key
        return self._rssi

    def reception_prob(self, t):
        """Mean reception probability, recomputed once per quantum."""
        key = t if self.quantum <= 0.0 else int(t / self.quantum)
        if key != self._prob_key:
            link = self.link
            if key != self._rssi_key:
                self._rssi = link.rssi(t)
                self._rssi_key = key
            p = link.profile.reception_prob(self._rssi)
            if link.gray is not None and link.gray.in_gray(t):
                p = min(p, link.profile.gray_residual_reception)
            self._prob = p
            self._prob_key = key
        return self._prob

    def loss_prob(self, t):
        return 1.0 - self.reception_prob(t)
