"""The shared broadcast wireless medium.

All nodes (vehicle and basestations) share one 802.11 channel, as in the
paper's experiments ("All nodes were set to the same 802.11 channel",
Section 2.1).  The medium implements:

* **Broadcast transmission** at a fixed bitrate (1 Mbps, Section 5.1)
  with PLCP preamble overhead; every attached node is a potential
  receiver of every frame.
* **Per-link loss**: each ordered pair of nodes has a
  :class:`~repro.net.channel.LossProcess` in a :class:`LinkTable`;
  missing links never deliver (nodes out of range).
* **Carrier sense with random backoff**: ViFi uses broadcast frames,
  which disables 802.11's exponential backoff; "to reduce collisions,
  our implementation relies on carrier sense" (Section 4.8).  We model
  a single collision domain: a sender defers until the medium is idle,
  waits DIFS plus a uniform backoff, and transmits.  Frames whose
  airtimes overlap collide and are lost at every receiver.
* **Single pending frame per node**: the implementation "ensures that
  there is no more than one packet pending at the interface"
  (Section 4.8); additional frames queue in FIFO order.

The medium also keeps transmission counters per node and frame kind so
the efficiency analysis (Figure 12) can count every transmission on the
vehicle-BS channel.

**Fast path.**  Delivery resolution used to evaluate the loss process
of *every* attached node for every frame, even for pairs far out of
radio range.  The :class:`LinkTable` now maintains a per-transmitter
reachability index (links whose expected loss rate is strictly below
1.0), refreshed lazily on a coarse timer, so :meth:`WirelessMedium`
only runs the stochastic channel for receivers that could possibly
decode; known-unreachable receivers are recorded as losses without
touching their loss process.  Transmission and delivery accounting use
:class:`collections.Counter` with O(1) aggregate views instead of
rescanning all keys.

Fast paths riding on top:

* **Batched outcomes** — processes exposing ``loss_eps(t)`` (state
  advance separated from the coin flip) have their per-receiver
  uniforms drawn from one medium-owned RNG block instead of N private
  buffered streams; the per-link *state* randomness (burst chains,
  traces) keeps its own streams, so runs stay deterministic for a
  seed, but the realization differs from draw-per-process code the
  same way PR 1's in-process batching did.  ``outcome_batch=0``
  restores per-process draws.
* **Merged transmissions** — when a broadcast send meets an idle
  medium with no contender in backoff, the attempt/transmit/resolve
  triple collapses into a single heap event at the frame's end time:
  the channel is claimed immediately (``busy_until``), so later
  senders defer exactly as if the attempt event had fired.  Only
  genuinely contended frames pay the classic two-event path.
* **Array resolve kernel** (``kernel="array"``) — per-transmitter
  resolve rows are kept as struct-of-arrays (numpy vectors of
  ``loss_eps`` thresholds, per-row validity windows from
  ``loss_eps_window``, and per-row state codes), cached against the
  reachability index's expiry.  Resolving a frame is then one
  vectorized compare of a pre-drawn uniform block against the eps
  vector plus a short scalar loop over only the hits (deliveries).
  The kernel consumes the *same* outcome stream in the same order as
  the scalar loop, so ``kernel="scalar"`` (the PR 2 code path, kept
  verbatim) and ``kernel="array"`` produce bitwise-identical runs.
* **Backoff-freezing CSMA** (``csma="freeze"``) — contenders draw one
  backoff when they start contending, freeze the remainder while the
  channel is busy, and resume on release, instead of redrawing and
  rescheduling an attempt event on every busy period (the defer
  cascade of ``csma="defer"``).  Each busy period costs O(1) counter
  arithmetic per contender and each broadcast frame costs exactly one
  heap event (the merged resolve), contended or not, which removes the
  wide-slot penalty of beacon batching.  ``defer_count`` stays 0 under
  the freeze model; ``csma="defer"`` keeps the PR 2 cascade bitwise.
* **Slot-batch resolve** (``slot_batch=True``) — whole co-scheduled
  broadcast batches (a beacon slot's emissions, handed over by the
  :class:`~repro.core.node.BeaconSlotter`) claim consecutive airtimes
  up front when the medium is idle and every emitter free: the batch
  costs a *single* heap event and its loss outcomes resolve in one
  stacked numpy pass over the frames' concatenated eps thresholds —
  the (frames x receivers) batch sizes where the vectorized compare
  decisively beats per-frame python dispatch.  Ineligible batches
  fall back to per-frame sends bitwise; receivers observe an accepted
  batch at its last frame's end (at most one slot late, the bound
  beacon slotting already accepts on the emission side).
* **Interval-level outcome pre-draw** (``interval_predraw=True``) —
  bucket-centre propagation banks make loss thresholds pure functions
  of (link, time bucket), so at a beacon interval's first resolve a
  transmitter's whole interval of eps vectors is already determined:
  the medium commits them once per interval per transmitter (via
  ``loss_eps_span``) and pre-draws the interval's uniforms in one RNG
  call, turning every later resolve in the interval into a bucket
  lookup plus a pre-sliced vector compare — no per-frame window
  refreshes, no per-frame RNG refills.  Intervals a loss process
  cannot commit to (pending burst flip, trace-second edge inside the
  window, callable steering target) fall back to the per-frame path
  for that interval only.  ``interval_predraw=False`` keeps the PR 5
  per-frame refresh/draw order verbatim (digest-anchored).
"""

import math
from collections import Counter, deque

import numpy as np

__all__ = ["LinkTable", "MediumObserver", "WirelessMedium"]

_EMPTY = {}


class LinkTable:
    """Loss processes for ordered node pairs.

    Links may be registered explicitly with :meth:`set_link` or created
    on demand by a factory ``(src, dst) -> LossProcess | None``.  A
    ``None`` process means the pair is out of range: frames are never
    delivered.

    Args:
        factory: optional on-demand link factory.
        reach_refresh_s: how long a transmitter's cached reachable-
            neighbor set stays valid (seconds).  A link whose expected
            loss rate is exactly 1.0 at refresh time is treated as
            unreachable until the next refresh, so a link coming back
            into range is noticed at most this much late.  Set to 0 to
            disable the reachability index (every frame then evaluates
            every registered link, as the pre-fast-path medium did).
    """

    #: The propagation :class:`~repro.net.propagation.LinkBank` behind
    #: this table's vehicle links, when a testbed built one (set by the
    #: builders; ``None`` for hand-assembled tables).  Exposed so
    #: benchmark harnesses can report prefill/build cost separately.
    link_bank = None

    def __init__(self, factory=None, reach_refresh_s=0.25):
        self._links = {}
        self._factory = factory
        self._by_src = {}
        #: Bumped on every registration so callers caching derived
        #: state (the medium's resolve-entry rows) notice new links.
        self.version = 0
        self.reach_refresh_s = float(reach_refresh_s)
        # src -> (expires_at, frozenset(reachable ids),
        #         ((dst, process), ...) sorted by dst)
        self._reach = {}
        # src -> (always-reachable static pairs, dynamic pairs): links
        # with a constant loss rate are classified once; only dynamic
        # links are re-evaluated on each refresh.
        self._reach_split = {}

    def _register(self, src, dst, process):
        self._links[(src, dst)] = process
        if process is not None:
            self._by_src.setdefault(src, {})[dst] = process
        # The transmitter's neighborhood changed; recompute on next use.
        self._reach.pop(src, None)
        self._reach_split.pop(src, None)
        self.version += 1

    def set_link(self, src, dst, process, symmetric=False):
        """Register the loss process for ``src -> dst``.

        With ``symmetric=True`` the same process object also serves
        ``dst -> src``, mirroring the paper's symmetric trace
        methodology (Section 5.1).
        """
        self._register(src, dst, process)
        if symmetric:
            self._register(dst, src, process)

    def get(self, src, dst):
        """Return the loss process for ``src -> dst`` or ``None``."""
        key = (src, dst)
        if key not in self._links:
            if self._factory is None:
                return None
            self._register(src, dst, self._factory(src, dst))
        return self._links[key]

    def loss_rate(self, src, dst, t):
        """Expected loss probability on ``src -> dst`` at time *t*.

        Unreachable pairs report 1.0.
        """
        process = self.get(src, dst)
        if process is None:
            return 1.0
        return process.loss_rate(t)

    def pairs(self):
        """Iterate over registered ``(src, dst)`` pairs.

        Returns a live view of the keys (no copy); do not register new
        links while iterating.
        """
        return iter(self._links.keys())

    def known_receivers(self, src):
        """Mapping ``dst -> process`` of registered links out of *src*."""
        return self._by_src.get(src, _EMPTY)

    def _reach_entry(self, src, t):
        entry = self._reach.get(src)
        if entry is None or t >= entry[0]:
            split = self._reach_split.get(src)
            if split is None:
                static, dynamic = [], []
                for dst, process in self._by_src.get(src, _EMPTY).items():
                    # getattr: duck-typed processes (tests, ad-hoc
                    # models) need not declare staticness.
                    rate = getattr(process, "static_loss_rate", None)
                    if rate is None:
                        dynamic.append((dst, process))
                    elif rate < 1.0:
                        static.append((dst, process))
                split = (static, dynamic)
                self._reach_split[src] = split
            static, dynamic = split
            in_range = list(static)
            for pair in dynamic:
                if pair[1].loss_rate(t) < 1.0:
                    in_range.append(pair)
            in_range.sort()
            entry = (
                t + self.reach_refresh_s,
                frozenset(dst for dst, _ in in_range),
                tuple(in_range),
            )
            self._reach[src] = entry
        return entry

    def reachable_from(self, src, t):
        """The set of receivers of *src* currently in radio range.

        A receiver is *reachable* when its link's expected loss rate is
        strictly below 1.0; the set is cached for ``reach_refresh_s``
        seconds (queries must be monotone in *t*, as simulation time
        is).  Returns ``None`` when the index is disabled.
        """
        if self.reach_refresh_s <= 0.0:
            return None
        return self._reach_entry(src, t)[1]

    def reachable_links(self, src, t):
        """``((dst, process), ...)`` pairs in range, sorted by dst.

        ``None`` when the index is disabled; same caching/monotonicity
        contract as :meth:`reachable_from`.
        """
        if self.reach_refresh_s <= 0.0:
            return None
        return self._reach_entry(src, t)[2]


class MediumObserver:
    """Optional hook interface for logging medium activity.

    Subclass and override any subset; the default methods ignore the
    events.  Observers power the PerfectRelay estimation (Section 5.4)
    and the Table 1 coordination statistics, both of which are derived
    from packet-level logs of the live protocol.
    """

    def on_transmit(self, transmitter_id, frame, start_time, end_time):
        """Called when a frame's airtime begins."""

    def on_deliver(self, transmitter_id, receiver_id, frame, time):
        """Called when a receiver correctly decodes a frame."""

    def on_loss(self, transmitter_id, receiver_id, frame, time, collided):
        """Called when a reachable receiver fails to decode a frame."""


class _ResolveRows:
    """Struct-of-arrays resolve rows for one transmitter.

    One row per in-range receiver, in sorted receiver-id order (the
    reproducible delivery order).  The numpy eps column backs the array
    kernel's vectorized compare; the object columns back the short
    scalar loop over hits.  A row's per-frame loss probability comes
    from its ``window_fns`` entry when the process supplies
    ``loss_eps_window`` (the stored threshold is then reused until
    ``valid_until``), else from re-evaluating ``eps_fns`` every frame;
    rows without ``loss_eps`` at all force ``all_eps=False`` and the
    whole transmitter takes the per-row fallback loop (mixed-order
    draws cannot be vectorized without changing the stream).
    """

    __slots__ = ("ids", "receive", "eps_fns", "window_fns", "span_fns",
                 "procs", "eps", "valid_until", "min_valid", "n",
                 "all_eps", "finite_rows", "row_vec", "row_q",
                 "row_k0", "row_hi", "plan_until", "plan_q",
                 "plan_k0", "plan_cols", "plan_u", "plan_u_i",
                 "plan_fail_until", "plan_arm_until")

    def __init__(self, pairs, transmitter_id, nodes_by_id):
        ids, receive, eps_fns, window_fns, span_fns, procs = \
            [], [], [], [], [], []
        row_vec, row_q, row_k0, row_hi = [], [], [], []
        all_eps = True
        for receiver_id, process in pairs:
            if receiver_id == transmitter_id:
                continue
            node = nodes_by_id.get(receiver_id)
            if node is None:
                continue
            eps_fn = getattr(process, "loss_eps", None)
            window_fn = getattr(process, "loss_eps_window", None)
            if eps_fn is None:
                all_eps = False
            ids.append(receiver_id)
            receive.append(node.on_receive)
            eps_fns.append(eps_fn)
            window_fns.append(window_fn)
            span_fns.append(getattr(process, "loss_eps_span", None))
            procs.append(process)
            # Re-adopt the process's stashed span read-ahead (pure
            # per-bucket data), so a reachability-driven rows rebuild
            # does not throw warm caches away.
            cache = getattr(process, "_span_readahead", None)
            if cache is None:
                row_vec.append(None)
                row_q.append(0.0)
                row_k0.append(0)
                row_hi.append(0.0)
            else:
                row_vec.append(cache[0])
                row_q.append(cache[1])
                row_k0.append(cache[2])
                row_hi.append(cache[3])
        self.ids = ids
        self.receive = receive
        self.eps_fns = eps_fns
        self.window_fns = window_fns
        self.span_fns = span_fns
        self.procs = procs
        self.n = len(ids)
        self.all_eps = all_eps
        self.eps = np.zeros(self.n, dtype=np.float64)
        # Validity bounds stay a python list (the refresh loop is
        # scalar anyway); ``min_valid`` gates the whole scan with one
        # float compare.  -inf forces a refresh on first use
        # (validity is t < bound).
        self.valid_until = [-math.inf] * self.n
        self.min_valid = -math.inf
        # Row indices whose validity bound is finite (can still lapse).
        # ``None`` until the first full refresh; an infinite bound
        # means the probability never changes again, so later
        # refreshes scan only the finite rows — on a BS transmitter
        # that is one dynamic vehicle row instead of the whole
        # static BS-BS neighborhood.
        self.finite_rows = None
        # Per-row span read-ahead: when a bucketed row lapses, one
        # ``loss_eps_span`` call caches its next stretch of per-bucket
        # thresholds (``row_vec`` over buckets ``row_k0 ..`` of width
        # ``row_q``, good until ``row_hi`` — the row's own next burst
        # flip or the read-ahead horizon).  Later lapses inside the
        # stretch are a list lookup instead of a window call.  The
        # cached values are bitwise the window path's (same bank
        # buckets, same scalar split), so this layer never changes a
        # realization.
        self.row_vec = row_vec
        self.row_q = row_q
        self.row_k0 = row_k0
        self.row_hi = row_hi
        # Interval pre-draw plane (see WirelessMedium._establish_plan):
        # while ``start < plan_until`` a resolve takes its whole eps
        # vector from ``plan_cols`` (one per time bucket of width
        # ``plan_q`` from bucket ``plan_k0``; a single column when the
        # interval is constant) and its uniforms from the pre-drawn
        # ``plan_u`` pool — no per-frame window refreshes, no per-frame
        # RNG calls.  ``plan_fail_until`` parks establishment attempts
        # until a horizon a process refused to commit past, and
        # ``plan_arm_until`` defers establishment to a transmitter's
        # *second* resolve inside an interval, so transmitters that
        # resolve once per interval (an idle BS's beacon) never pay
        # establishment for a single frame.
        self.plan_until = -math.inf
        self.plan_q = 0.0
        self.plan_k0 = 0
        self.plan_cols = None
        self.plan_u = None
        self.plan_u_i = 0
        self.plan_fail_until = -math.inf
        self.plan_arm_until = -math.inf


class WirelessMedium:
    """Single-channel broadcast medium with CSMA and per-link losses.

    Args:
        sim: the :class:`~repro.sim.engine.Simulator`.
        links: a :class:`LinkTable`.
        rng: random stream for backoff draws.
        bitrate_bps: channel bitrate (default 1 Mbps, as in the paper).
        plcp_overhead_s: preamble+PLCP header airtime (long preamble).
        difs_s: inter-frame space before backoff.
        slot_time_s: backoff slot duration.
        backoff_slots: contention window; backoff is uniform in
            ``[0, backoff_slots]`` slots.  Broadcast frames do not use
            exponential backoff (Section 4.8).
        mac_retry_limit: MAC retransmissions for *unicast* sends (the
            Section 5.1 ablation); broadcast frames never retry.
        max_cw_slots: exponential-backoff ceiling for unicast mode.
        outcome_rng: stream for the batched per-receiver loss draws;
            defaults to *rng*.
        outcome_batch: uniforms pre-drawn per block for the batched
            delivery outcomes; 0 restores per-process draws (and
            forces the scalar kernel, which owns that path).
        merge_uncontended: collapse the attempt/transmit/resolve triple
            of an uncontended broadcast send into one heap event.
        kernel: ``"array"`` resolves frames through the struct-of-
            arrays kernel (bitwise-identical outcomes, vectorized
            mechanics); ``"scalar"`` keeps the PR 2 per-row loop.
        csma: ``"freeze"`` keeps per-contender remaining backoff across
            busy periods (no defer events); ``"defer"`` redraws and
            reschedules on every busy period (the PR 2 cascade).
        slot_batch: accept whole co-scheduled broadcast batches through
            :meth:`send_slot_batch` (one heap event and one stacked
            numpy outcome pass per batch); ``False`` makes
            :meth:`send_slot_batch` fall back to per-frame sends,
            preserving the single-frame code paths bitwise.
        interval_predraw: plan whole beacon intervals ahead of time —
            at a transmitter's first array resolve inside an interval,
            commit every receiver row's eps thresholds for the rest of
            the interval (via ``loss_eps_span``) and pre-draw the
            interval's uniforms in one RNG call; subsequent resolves
            in the interval are a dictionary-free vector compare.
            Intervals a process cannot commit to (pending burst flip,
            trace-second edge, callable steering target) fall back to
            the per-frame window path for that interval.  ``False``
            keeps the per-frame refresh/draw order of the slot-batch
            code verbatim (the PR 5 realization).  Requires the array
            kernel and batched outcomes; forced off otherwise.
        predraw_interval_s: the planning horizon (the beacon interval;
            plans never cross an interval edge, so steady-state
            traffic patterns repeat per plan).
    """

    def __init__(self, sim, links, rng, bitrate_bps=1_000_000.0,
                 plcp_overhead_s=192e-6, difs_s=50e-6, slot_time_s=20e-6,
                 backoff_slots=31, mac_retry_limit=4, max_cw_slots=1023,
                 outcome_rng=None, outcome_batch=256,
                 merge_uncontended=True, kernel="array", csma="freeze",
                 slot_batch=True, interval_predraw=True,
                 predraw_interval_s=0.1):
        self.sim = sim
        self.links = links
        self.rng = rng
        self.bitrate = float(bitrate_bps)
        self.plcp_overhead = float(plcp_overhead_s)
        self.difs = float(difs_s)
        self.slot_time = float(slot_time_s)
        self.backoff_slots = int(backoff_slots)
        self.mac_retry_limit = int(mac_retry_limit)
        self.max_cw_slots = int(max_cw_slots)
        if kernel not in ("array", "scalar"):
            raise ValueError(f"unknown resolve kernel {kernel!r}")
        if csma not in ("freeze", "defer"):
            raise ValueError(f"unknown csma model {csma!r}")
        # The array kernel rides the batched-outcome stream; without it
        # the per-process draw path (owned by the scalar loop) is the
        # only correct one.
        self.kernel = kernel if int(outcome_batch) > 0 else "scalar"
        self.csma = csma

        self._nodes = {}
        self._queues = {}
        self._complete_cb = {}  # node_id -> on_transmit_complete or None
        self._attempt_pending = {}
        self._in_flight = {}  # merged frames claimed off their queue
        self._attempts_outstanding = 0
        self._cw = {}  # unicast contention window per node
        self._busy_until = 0.0
        # Latest airtime end seen so far; a transmission overlapping a
        # prior frame's airtime (start before that end) collides.  A
        # scalar suffices: the claim/attempt discipline never lets two
        # frames air at once, so the full in-air list always reduced to
        # its maximum.
        self._air_end = 0.0
        self.observers = []
        self._backoff_buf = None
        self._backoff_i = 0
        self.merge_uncontended = bool(merge_uncontended)
        self._outcome_rng = outcome_rng if outcome_rng is not None else rng
        self._outcome_block = max(int(outcome_batch), 0)
        self._outcome_buf = ()
        self._outcome_i = 0
        # src -> (reachability tuple, [(receiver_id, node, loss_eps,
        # process), ...]): node handles and eps accessors resolved once
        # per reachability refresh instead of per frame (scalar kernel).
        self._entry_cache = {}
        # src -> (expires, _ResolveRows, links.version): the array
        # kernel's struct-of-arrays rows, same expiry contract.
        self._row_cache = {}
        # Array-kernel outcome buffer: same stream and refill cadence
        # as the scalar kernel's list buffer, kept as a numpy vector.
        self._outcome_vec = np.empty(0, dtype=np.float64)
        self._outcome_vec_i = 0

        # Backoff-freezing CSMA state.  A contender record is
        # ``[backoff_left_s, seq, countdown_start, armed_token]``:
        # ``countdown_start`` is the absolute time its countdown
        # (re)started (None while frozen), ``armed_token`` matches the
        # fire-and-forget attempt event armed for it (None when none).
        self._contenders = {}
        self._cont_seq = 0
        self._freeze_token = 0
        self._armed = None  # (attempt_at, node_id) of the armed winner
        #: Defer-cascade reschedules (csma="defer" only; the freeze
        #: model never defers, which the CSMA tests assert).
        self.defer_count = 0
        #: Backoff freezes performed by the freeze model.
        self.freeze_count = 0

        # Slot-batch resolve: whole co-scheduled broadcast batches
        # (typically one beacon slot's emissions) claim consecutive
        # airtimes up front and resolve through one stacked numpy pass.
        self.slot_batch = bool(slot_batch)
        #: Batches accepted by :meth:`send_slot_batch` (not fallbacks).
        self.slot_batch_count = 0
        #: Frames carried by accepted batches.
        self.slot_batch_frames = 0

        # Interval-level outcome pre-draw (rides the array kernel's
        # batched-outcome stream; meaningless without it).
        self._interval_predraw = (bool(interval_predraw)
                                  and self.kernel == "array"
                                  and self._outcome_block > 0)
        if predraw_interval_s <= 0.0:
            raise ValueError("predraw_interval_s must be positive")
        self._predraw_interval = float(predraw_interval_s)
        #: Interval plans established (one per transmitter-interval).
        self.predraw_plans = 0
        #: Frames whose outcomes were served from an interval plan.
        self.predraw_planned_frames = 0
        #: Frames resolved per-frame while predraw was on (no plan
        #: covered them — establishment refused or frame outlived it).
        self.predraw_fallback_frames = 0
        #: Establishment attempts a loss process refused (the rest of
        #: that interval resolves per frame).
        self.predraw_failed_plans = 0

        # Counters: transmissions on the vehicle-BS channel, per node
        # and frame kind, for the Figure 12 efficiency accounting.
        # Aggregate views are maintained alongside so
        # :meth:`transmissions` never rescans the per-pair keys.
        self.tx_count = Counter()
        self.delivered_count = Counter()
        self._tx_by_kind = Counter()
        self._tx_by_node = Counter()
        self._tx_total = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def attach(self, node):
        """Attach *node*; it must expose ``node_id`` and ``on_receive``."""
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} already attached")
        self._nodes[node.node_id] = node
        self._queues[node.node_id] = deque()
        self._complete_cb[node.node_id] = getattr(
            node, "on_transmit_complete", None
        )
        self._attempt_pending[node.node_id] = False
        self._in_flight[node.node_id] = 0
        self._cw[node.node_id] = self.backoff_slots
        self._entry_cache.clear()
        self._row_cache.clear()

    def add_observer(self, observer):
        self.observers.append(observer)

    @property
    def node_ids(self):
        return list(self._nodes.keys())

    # ------------------------------------------------------------------
    # Transmission path
    # ------------------------------------------------------------------

    def airtime(self, size_bytes):
        """On-air duration of a frame of *size_bytes*."""
        return self.plcp_overhead + (size_bytes * 8.0) / self.bitrate

    def send(self, transmitter_id, frame, priority=False,
             unicast_to=None):
        """Queue *frame* for broadcast by *transmitter_id*.

        Priority frames (acknowledgments) jump the node's queue,
        mirroring 802.11's expedited access class for control traffic:
        an ack should never wait behind a backlog of data frames.

        With ``unicast_to`` set, the frame is sent 802.11-unicast
        style: if the named receiver fails to decode it, the MAC
        retries up to ``mac_retry_limit`` times, doubling the sender's
        contention window each time (reset on success).  Every
        receiver still overhears each attempt.  This models the
        standard behaviour the paper's broadcast-based framework
        deliberately avoids: "broadcast transmissions disable
        exponential backoff in response to losses" (Section 4.8), and
        immediate MAC retries tend to die inside the same loss burst
        (Section 4.3).
        """
        if transmitter_id not in self._nodes:
            raise KeyError(f"unknown transmitter {transmitter_id}")
        entry = (frame, unicast_to, 0)
        if priority:
            self._queues[transmitter_id].appendleft(entry)
        else:
            self._queues[transmitter_id].append(entry)
        self._schedule_attempt(transmitter_id)

    # ------------------------------------------------------------------
    # Slot-batch transmission path
    # ------------------------------------------------------------------

    def send_slot_batch(self, entries):
        """Broadcast a slot's co-scheduled frames as one medium batch.

        *entries* is a sequence of ``(transmitter_id, frame)`` pairs —
        typically every beacon a :class:`~repro.core.node.BeaconSlotter`
        slot emits — in emission order.  When the batch path is
        eligible (see :meth:`_slot_batch_ready`) the frames claim
        consecutive DIFS+backoff-separated airtimes up front, cost a
        **single** heap event, and resolve through one stacked numpy
        outcome pass in :meth:`_slot_batch_resolve`.  Otherwise every
        entry falls back to a plain :meth:`send`, which is
        bitwise-identical to never having offered the batch.

        Fidelity trade-offs of the batch path (documented in
        PERFORMANCE.md): frames air in emission order rather than
        re-contending per frame (same-window contenders could never
        collide, as with merged transmissions), and receivers observe
        every frame of the batch at the last frame's end time — at
        most one slot late, the same bound beacon slotting already
        accepts on the emission side.
        """
        if len(entries) < 2 or not self._slot_batch_ready(entries):
            for transmitter_id, frame in entries:
                self.send(transmitter_id, frame)
            return
        start = self.sim.now
        batch = []
        for transmitter_id, frame in entries:
            backoff = self._draw_backoff(self._cw[transmitter_id]) \
                * self.slot_time
            air_start = start + self.difs + backoff
            air_end = air_start + self.airtime(frame.size_bytes)
            self._in_flight[transmitter_id] += 1
            batch.append((transmitter_id, frame, air_start, air_end))
            start = air_end
        self._busy_until = start
        self.slot_batch_count += 1
        self.slot_batch_frames += len(batch)
        self.sim.schedule_fire_at(start, self._slot_batch_resolve, batch)

    def _slot_batch_ready(self, entries):
        """Whether a batch can claim the channel outright.

        The batch path needs the freeze CSMA model with merged
        transmissions and the batched outcome stream, an idle
        uncontended medium, the observer-free indexed fast path, and
        every transmitter distinct and completely idle (empty queue,
        nothing in flight, not contending) — otherwise per-node FIFO
        order would be violated.  The resolve kernel is *not* a
        condition: both kernels resolve batches over the same stream,
        so ``kernel`` never changes outcomes (the PR 3 bitwise
        guarantee extends to batched slots).
        """
        if not (self.slot_batch and self.csma == "freeze"
                and self.merge_uncontended
                and self._outcome_block > 0):
            return False
        links = self.links
        if links.reach_refresh_s <= 0.0 or self.observers \
                or links._factory is not None:
            return False
        if self.sim.now < self._busy_until or self._contenders \
                or self._armed is not None or self._attempts_outstanding:
            return False
        seen = set()
        nodes = self._nodes
        queues = self._queues
        in_flight = self._in_flight
        pending = self._attempt_pending
        for transmitter_id, frame in entries:
            if transmitter_id not in nodes or transmitter_id in seen:
                return False
            seen.add(transmitter_id)
            if queues[transmitter_id] or in_flight[transmitter_id] \
                    or pending[transmitter_id]:
                return False
        return True

    def _slot_batch_resolve(self, batch):
        """Single-event tail of a slot batch: stacked outcome resolve.

        Transmit accounting runs per frame; the loss outcomes of the
        whole batch are decided by one uniform slice compared against
        the frames' concatenated eps thresholds — the batch sizes
        (frames x receivers) are where the vectorized compare
        decisively beats per-frame python dispatch.  The uniform
        stream is consumed in frame order exactly as per-frame
        resolves would consume it, so batching adds no divergence of
        its own.
        """
        end = self.sim.now
        self._air_end = end
        tx_count = self.tx_count
        tx_by_kind = self._tx_by_kind
        tx_by_node = self._tx_by_node
        for transmitter_id, frame, air_start, air_end in batch:
            self._in_flight[transmitter_id] -= 1
            kind = frame.kind_value
            tx_count[(transmitter_id, kind)] += 1
            tx_by_kind[kind] += 1
            tx_by_node[transmitter_id] += 1
        self._tx_total += len(batch)
        delivered_count = self.delivered_count
        if self.kernel == "scalar":
            # Scalar-kernel batches resolve frame by frame through the
            # PR 2 row loop, consuming the shared outcome buffer in
            # the same per-frame order as the array path's stacked
            # slice — kernel choice never changes outcomes.
            buf = self._outcome_buf
            bi = self._outcome_i
            for transmitter_id, frame, air_start, air_end in batch:
                kind = frame.kind_value
                for receiver_id, node, eps_fn, process in \
                        self._resolve_entries(transmitter_id, air_start):
                    if eps_fn is not None:
                        if bi >= len(buf):
                            buf = self._outcome_buf = self._outcome_rng \
                                .random(self._outcome_block).tolist()
                            bi = 0
                        u = buf[bi]
                        bi += 1
                        if u < eps_fn(air_start):
                            continue
                    elif process.is_lost(air_start):
                        continue
                    delivered_count[(receiver_id, kind)] += 1
                    node.on_receive(frame, transmitter_id)
            self._outcome_i = bi
            self._slot_batch_finish(batch)
            return
        if self._interval_predraw:
            # Interval pre-draw: each frame takes its eps column and
            # uniform slice from its transmitter's interval plan (per
            # plan pool — the stacked single-draw below would
            # interleave pools).  The per-frame numpy compares stay
            # small, but the batch pays no window refreshes and no
            # per-batch RNG refills at all in the planned steady
            # state.
            metas = []
            all_vector = True
            for transmitter_id, frame, air_start, air_end in batch:
                rows = self._resolve_rows(transmitter_id, air_start)
                if not rows.all_eps:
                    all_vector = False
                metas.append((transmitter_id, frame, rows, air_start))
            if all_vector:
                for transmitter_id, frame, rows, air_start in metas:
                    n = rows.n
                    if not n:
                        continue
                    planned = self._plan_slice(rows, air_start)
                    if planned is not None:
                        eps, u = planned
                    else:
                        eps = rows.eps
                        if air_start >= rows.min_valid:
                            self._refresh_row_thresholds(rows, air_start)
                        u = self._draw_outcome_vector(n)
                    ids = rows.ids
                    receive = rows.receive
                    kind = frame.kind_value
                    for i, hit in enumerate((u >= eps).tolist()):
                        if hit:
                            delivered_count[(ids[i], kind)] += 1
                            receive[i](frame, transmitter_id)
            else:
                for transmitter_id, frame, rows, air_start in metas:
                    self._resolve_rows_outcomes(transmitter_id, frame,
                                                air_start, rows)
            self._slot_batch_finish(batch)
            return
        metas = []
        total = 0
        all_vector = True
        for transmitter_id, frame, air_start, air_end in batch:
            rows = self._resolve_rows(transmitter_id, air_start)
            if rows.all_eps:
                if rows.n and air_start >= rows.min_valid:
                    self._refresh_row_thresholds(rows, air_start)
            else:
                all_vector = False
            metas.append((transmitter_id, frame, rows, air_start))
            total += rows.n
        if all_vector and total:
            u = self._draw_outcome_vector(total)
            eps_stack = np.concatenate(
                [meta[2].eps for meta in metas if meta[2].n]
            )
            hits = (u >= eps_stack).tolist()
            offset = 0
            for transmitter_id, frame, rows, _ in metas:
                n = rows.n
                if not n:
                    continue
                ids = rows.ids
                receive = rows.receive
                kind = frame.kind_value
                for i in range(n):
                    if hits[offset + i]:
                        delivered_count[(ids[i], kind)] += 1
                        receive[i](frame, transmitter_id)
                offset += n
        elif not all_vector:
            # A duck-typed eps-less process is in play: resolve frame
            # by frame off the shared outcome buffer, preserving the
            # per-frame draw order.
            for transmitter_id, frame, rows, air_start in metas:
                self._resolve_rows_outcomes(transmitter_id, frame,
                                            air_start, rows)
        self._slot_batch_finish(batch)

    def _slot_batch_finish(self, batch):
        """Completion callbacks and channel release after a batch."""
        for transmitter_id, frame, air_start, air_end in batch:
            callback = self._complete_cb.get(transmitter_id)
            if callback is not None:
                callback(frame)
        if self._contenders:
            self._release_channel()
        for transmitter_id, frame, air_start, air_end in batch:
            self._freeze_contend(transmitter_id)

    def _resolve_rows_outcomes(self, transmitter_id, frame, start, rows):
        """Per-frame outcome pass over mixed (eps and eps-less) rows."""
        delivered_count = self.delivered_count
        kind = frame.kind_value
        ids = rows.ids
        receive = rows.receive
        eps_fns = rows.eps_fns
        procs = rows.procs
        for i in range(rows.n):
            eps_fn = eps_fns[i]
            if eps_fn is not None:
                if self._draw_outcome_vector(1)[0] < eps_fn(start):
                    continue
            elif procs[i].is_lost(start):
                continue
            delivered_count[(ids[i], kind)] += 1
            receive[i](frame, transmitter_id)

    def queue_length(self, transmitter_id):
        """Frames waiting, in backoff, or in the air at the given node.

        A frame claimed by the merged fast path leaves the python deque
        at claim time but still counts here until it resolves, so the
        one-frame-at-the-interface pacing (Section 4.8) is unchanged.
        """
        return len(self._queues[transmitter_id]) \
            + self._in_flight[transmitter_id]

    def _draw_backoff(self, window):
        """Backoff slot count, uniform in ``[0, window]``.

        Draws for the standard broadcast window are batched (bit-for-bit
        identical to scalar draws while only the standard window is in
        use); grown unicast windows fall back to scalar draws.
        """
        if window == self.backoff_slots:
            buf = self._backoff_buf
            if buf is None or self._backoff_i >= len(buf):
                buf = self._backoff_buf = self.rng.integers(
                    0, window + 1, size=64
                )
                self._backoff_i = 0
            value = int(buf[self._backoff_i])
            self._backoff_i += 1
            return value
        return int(self.rng.integers(0, window + 1))

    def _schedule_attempt(self, transmitter_id):
        if self.csma == "freeze":
            return self._freeze_contend(transmitter_id)
        if self._attempt_pending[transmitter_id]:
            return
        queue = self._queues[transmitter_id]
        if not queue:
            return
        now = self.sim.now
        if (self.merge_uncontended and self._attempts_outstanding == 0
                and now >= self._busy_until):
            # Nothing is in the air and nobody is in backoff: the
            # attempt's busy check is guaranteed to pass, so transmit
            # bookkeeping can ride the resolve event.  The channel is
            # claimed immediately — senders arriving during our DIFS +
            # backoff defer behind us instead of contending (a timing
            # ambiguity inside one contention window; collisions were
            # already impossible between these frames because the
            # later attempt would have seen the medium busy).
            frame, unicast_to, attempt = queue[0]
            if unicast_to is None:
                window = self._cw[transmitter_id]
                backoff = self._draw_backoff(window) * self.slot_time
                self._claim_merged(transmitter_id, now + self.difs
                                   + backoff)
                return
        self._attempt_pending[transmitter_id] = True
        self._attempts_outstanding += 1
        idle_at = max(now, self._busy_until)
        window = self._cw[transmitter_id]
        backoff = self._draw_backoff(window) * self.slot_time
        attempt_at = idle_at + self.difs + backoff
        self.sim.schedule_fire_at(attempt_at, self._attempt,
                                  transmitter_id)

    def _attempt(self, transmitter_id):
        self._attempt_pending[transmitter_id] = False
        self._attempts_outstanding -= 1
        if not self._queues[transmitter_id]:
            return
        now = self.sim.now
        if now < self._busy_until:
            # Medium became busy during our backoff; defer again.
            self.defer_count += 1
            self._schedule_attempt(transmitter_id)
            return
        frame, unicast_to, attempt = \
            self._queues[transmitter_id].popleft()
        self._transmit(transmitter_id, frame, unicast_to, attempt)
        # Next queued frame (if any) contends afresh.
        self._schedule_attempt(transmitter_id)

    # ------------------------------------------------------------------
    # Backoff-freezing CSMA (csma="freeze")
    # ------------------------------------------------------------------

    def _freeze_contend(self, transmitter_id):
        """Enter contention for the node's head-of-queue frame.

        One backoff is drawn per contention entry; the remainder
        persists across busy periods (frozen at claim, resumed at
        release) instead of being redrawn on every defer.
        """
        if self._attempt_pending[transmitter_id]:
            return
        queue = self._queues[transmitter_id]
        if not queue:
            return
        now = self.sim.now
        contenders = self._contenders
        idle = now >= self._busy_until
        if idle and not contenders:
            frame, unicast_to, attempt = queue[0]
            if self.merge_uncontended and unicast_to is None:
                # Same merged single-event path as the defer model.
                backoff = self._draw_backoff(self._cw[transmitter_id]) \
                    * self.slot_time
                self._claim_merged(transmitter_id, now + self.difs
                                   + backoff)
                return
        backoff = self._draw_backoff(self._cw[transmitter_id]) \
            * self.slot_time
        self._cont_seq += 1
        record = [backoff, self._cont_seq, None, None]
        contenders[transmitter_id] = record
        self._attempt_pending[transmitter_id] = True
        if not idle:
            return  # parked: the release at busy-period end resumes us
        armed = self._armed
        if armed is None:
            if len(contenders) > 1:
                # Idle instant inside a resolve: frozen contenders are
                # waiting for the release that runs right after the
                # in-flight resolve completes.  Park and let that
                # release arbitrate on remaining backoff.
                return
            # Truly uncontended but unmergeable (unicast frame, or
            # merging disabled): arm our own countdown.
            countdown_start = now + self.difs
            record[2] = countdown_start
            self._arm_winner(transmitter_id, record,
                             countdown_start + backoff)
            return
        # Idle with a winner armed: start counting down now; preempt
        # the armed winner only if our countdown finishes first (the
        # superseded winner keeps counting and freezes at our claim).
        countdown_start = now + self.difs
        record[2] = countdown_start
        attempt_at = countdown_start + backoff
        if attempt_at < armed[0]:
            old = contenders.get(armed[1])
            if old is not None:
                old[3] = None  # stale its armed event
            self._arm_winner(transmitter_id, record, attempt_at)

    def _claim_merged(self, transmitter_id, start):
        """Claim the channel for the node's head frame airing at *start*.

        The single-event tail of the merged path: the frame leaves the
        queue now (still counted by :meth:`queue_length` via
        ``_in_flight``), the channel is claimed through its end time,
        and one fire-and-forget resolve event covers transmit +
        delivery bookkeeping.
        """
        frame, _, _ = self._queues[transmitter_id].popleft()
        self._in_flight[transmitter_id] += 1
        end = start + self.airtime(frame.size_bytes)
        self._busy_until = end
        self.sim.schedule_fire_at(end, self._merged_resolve,
                                  transmitter_id, frame, start)

    def _arm_winner(self, transmitter_id, record, attempt_at):
        self._freeze_token += 1
        record[3] = self._freeze_token
        self._armed = (attempt_at, transmitter_id)
        self.sim.schedule_fire_at(attempt_at, self._freeze_fire,
                                  transmitter_id, self._freeze_token)

    def _freeze_fire(self, transmitter_id, token):
        """Armed countdown completed: transmit the head-of-queue frame."""
        record = self._contenders.get(transmitter_id)
        if record is None or record[3] != token:
            return  # superseded or frozen since arming
        if self.sim.now < self._busy_until:
            # Claimed since arming (tokens are cleared at claim; this
            # is belt-and-braces).
            record[3] = None
            return
        del self._contenders[transmitter_id]
        self._attempt_pending[transmitter_id] = False
        self._armed = None
        queue = self._queues[transmitter_id]
        if not queue:
            self._release_channel()
            return
        frame, unicast_to, attempt = queue.popleft()
        self._transmit(transmitter_id, frame, unicast_to, attempt)
        self._freeze_contend(transmitter_id)

    def _freeze_all(self, claim_time):
        """The channel was claimed: freeze every contender's countdown."""
        for record in self._contenders.values():
            countdown_start = record[2]
            if countdown_start is not None:
                elapsed = claim_time - countdown_start
                if elapsed > 0.0:
                    left = record[0] - elapsed
                    record[0] = left if left > 0.0 else 0.0
                record[2] = None
                self.freeze_count += 1
            record[3] = None
        self._armed = None

    def _release_channel(self):
        """A busy period ended: resume frozen countdowns, pick a winner.

        The winner is the contender with the least remaining backoff
        (ties broken by contention entry order, matching the defer
        model's same-instant seq order).  Broadcast winners ride the
        merged single-event path: the channel is claimed for them
        immediately, and the other contenders' remaining backoff drops
        by the winner's remainder — the idle slots they observed before
        the claim — in O(1) per contender.
        """
        contenders = self._contenders
        if not contenders:
            return
        now = self.sim.now
        if now < self._busy_until or self._armed is not None:
            return  # reclaimed already, or a winner is armed
        win_id = None
        win = None
        for node_id, record in contenders.items():
            if win is None or (record[0], record[1]) < (win[0], win[1]):
                win_id, win = node_id, record
        queue = self._queues[win_id]
        if not queue:  # defensive: contenders always have a frame
            del contenders[win_id]
            self._attempt_pending[win_id] = False
            return self._release_channel()
        backoff_left = win[0]
        countdown_start = now + self.difs
        frame, unicast_to, attempt = queue[0]
        if self.merge_uncontended and unicast_to is None:
            del contenders[win_id]
            self._attempt_pending[win_id] = False
            for record in contenders.values():
                left = record[0] - backoff_left
                record[0] = left if left > 0.0 else 0.0
                record[2] = None
                record[3] = None
                self.freeze_count += 1
            self._claim_merged(win_id, countdown_start + backoff_left)
            return
        # Two-event path (unicast frames, or merging disabled): arm the
        # winner and let every contender count down until the claim.
        for record in contenders.values():
            record[2] = countdown_start
            record[3] = None
        self._arm_winner(win_id, win, countdown_start + backoff_left)

    def _merged_resolve(self, transmitter_id, frame, start):
        """Single-event tail of a merged (claim-at-schedule) transmission."""
        self._in_flight[transmitter_id] -= 1
        end = self.sim.now
        # Claim invariants: the medium was idle when the claim was
        # made, and ``busy_until`` blocked every later sender, so no
        # frame can overlap ours.
        self._air_end = end
        kind = frame.kind_value
        self.tx_count[(transmitter_id, kind)] += 1
        self._tx_by_kind[kind] += 1
        self._tx_by_node[transmitter_id] += 1
        self._tx_total += 1
        for obs in self.observers:
            obs.on_transmit(transmitter_id, frame, start, end)
        self._resolve(transmitter_id, frame, start, False)
        if self.csma == "freeze":
            if self._contenders:
                self._release_channel()
            self._freeze_contend(transmitter_id)
        else:
            self._schedule_attempt(transmitter_id)

    def _transmit(self, transmitter_id, frame, unicast_to=None,
                  attempt=0):
        start = self.sim.now
        end = start + self.airtime(frame.size_bytes)
        # Collision bookkeeping: any concurrently airing frame (an end
        # time past our start) overlaps.
        collided = self._air_end > start
        if end > self._air_end:
            self._air_end = end
        self._busy_until = max(self._busy_until, end)
        if self.csma == "freeze" and self._contenders:
            self._freeze_all(start)

        kind = frame.kind_value
        self.tx_count[(transmitter_id, kind)] += 1
        self._tx_by_kind[kind] += 1
        self._tx_by_node[transmitter_id] += 1
        self._tx_total += 1
        for obs in self.observers:
            obs.on_transmit(transmitter_id, frame, start, end)

        if collided:
            # The earlier overlapping frames are retroactively corrupted
            # at receivers whose delivery has not resolved yet; for
            # simplicity (and because carrier sense makes overlap rare)
            # we corrupt this frame only.  The earlier frame's
            # deliveries were decided at its start.
            pass
        if self.csma == "freeze":
            self.sim.schedule_fire_at(end, self._resolve_event,
                                      transmitter_id, frame, start,
                                      collided, unicast_to, attempt)
        else:
            self.sim.schedule_fire_at(end, self._resolve, transmitter_id,
                                      frame, start, collided, unicast_to,
                                      attempt)

    def _resolve_event(self, transmitter_id, frame, start, collided,
                       unicast_to=None, attempt=0):
        """Resolve-event wrapper for the freeze model: release after."""
        self._resolve(transmitter_id, frame, start, collided, unicast_to,
                      attempt)
        if self._contenders:
            self._release_channel()

    def _resolve_entries(self, transmitter_id, t):
        """Per-transmitter ``(receiver_id, node, loss_eps, process)``
        rows for the current reachability refresh, resolved once.

        The rows piggyback on the reachability entry's expiry, so the
        per-frame cost is one dict lookup and a float compare; node
        handles and eps accessors are re-resolved only when the index
        refreshes.  (Scalar-kernel row cache; the array kernel keeps
        its struct-of-arrays twin in :meth:`_resolve_rows`.)
        """
        links = self.links
        cached = self._entry_cache.get(transmitter_id)
        if cached is not None and t < cached[0] \
                and cached[2] == links.version:
            return cached[1]
        expires, _, pairs = links._reach_entry(transmitter_id, t)
        nodes = self._nodes
        use_eps = self._outcome_block > 0
        entries = []
        for receiver_id, process in pairs:
            if receiver_id == transmitter_id:
                continue
            node = nodes.get(receiver_id)
            if node is None:
                continue
            eps = getattr(process, "loss_eps", None) if use_eps else None
            entries.append((receiver_id, node, eps, process))
        self._entry_cache[transmitter_id] = (expires, entries,
                                             links.version)
        return entries

    def _resolve_rows(self, transmitter_id, t):
        """The array kernel's struct-of-arrays rows (same expiry).

        A reachability refresh that leaves the in-range membership
        unchanged (the common case between handoffs) keeps the existing
        rows object — its thresholds and validity windows carry over,
        since they are properties of the unchanged processes.
        """
        links = self.links
        cached = self._row_cache.get(transmitter_id)
        if cached is not None and t < cached[0] \
                and cached[2] == links.version:
            return cached[1]
        expires, _, pairs = links._reach_entry(transmitter_id, t)
        if cached is not None and cached[2] == links.version \
                and cached[3] == pairs:
            rows = cached[1]
        else:
            rows = _ResolveRows(pairs, transmitter_id, self._nodes)
        self._row_cache[transmitter_id] = (expires, rows, links.version,
                                           pairs)
        return rows

    # How far a lapsed row reads ahead through ``loss_eps_span``: a
    # couple of beacon intervals' worth of buckets per call.  Longer
    # stretches amortize better but waste work when the reachability
    # set churns (handoffs rebuild the rows).
    _ROW_READAHEAD_S = 0.2

    def _refresh_row_thresholds(self, rows, start):
        """Re-evaluate eps for rows whose validity window lapsed.

        Rows inside their ``loss_eps_window`` bound keep their stored
        threshold.  A lapsed row is served from its cached span
        read-ahead when one covers *start* (a list lookup); otherwise
        one ``loss_eps_span`` call refreshes it *and* caches the
        row's next stretch of per-bucket thresholds, falling back to
        the per-query ``loss_eps_window`` for processes that cannot
        commit ahead.  All three produce bitwise-identical thresholds
        (same bank buckets, same scalar split), a skipped no-flip
        state advance consumes no randomness, and a pending flip caps
        every horizon — so the layering never changes a realization.
        """
        valid_until = rows.valid_until
        eps_fns = rows.eps_fns
        window_fns = rows.window_fns
        span_fns = rows.span_fns
        row_vec = rows.row_vec
        row_q = rows.row_q
        row_k0 = rows.row_k0
        row_hi = rows.row_hi
        eps = rows.eps
        finite = rows.finite_rows
        indices = range(rows.n) if finite is None else finite
        rebuilt = [] if finite is None else None
        readahead = self._ROW_READAHEAD_S
        min_valid = math.inf
        for i in indices:
            bound = valid_until[i]
            if bound <= start:
                served = False
                vec = row_vec[i]
                if vec is not None:
                    hi = row_hi[i]
                    q = row_q[i]
                    key = int(start / q)
                    b = key - row_k0[i]
                    if start < hi and 0 <= b < len(vec):
                        # Same bucket-edge arithmetic as the window
                        # path; the horizon cap is conservative (an
                        # extra refresh, never a stale threshold).
                        bound = (key + 1.0) * q
                        if hi < bound:
                            bound = hi
                        eps[i] = vec[b]
                        valid_until[i] = bound
                        served = True
                    else:
                        row_vec[i] = None
                if not served:
                    span_fn = span_fns[i]
                    span = None if span_fn is None \
                        else span_fn(start, start + readahead)
                    if span is not None:
                        value, q, k, hi = span
                        if q > 0.0:
                            row_vec[i] = value
                            row_q[i] = q
                            row_k0[i] = k
                            row_hi[i] = hi
                            rows.procs[i]._span_readahead = span
                            bound = (k + 1.0) * q
                            if hi < bound:
                                bound = hi
                            value = value[0]
                        else:
                            bound = hi
                    else:
                        window_fn = window_fns[i]
                        if window_fn is not None:
                            value, bound = window_fn(start)
                        else:
                            # Valid at exactly this instant only.
                            value, bound = eps_fns[i](start), start
                    eps[i] = value
                    valid_until[i] = bound
            if bound < min_valid:
                min_valid = bound
            if rebuilt is not None and bound != math.inf:
                rebuilt.append(i)
        if rebuilt is not None:
            rows.finite_rows = rebuilt
        elif min_valid == math.inf:
            # Every scanned row crossed into the never-changes regime
            # (e.g. a trace ran out): nothing can lapse again.
            rows.finite_rows = []
        rows.min_valid = min_valid

    def _draw_outcome_vector(self, n):
        """*n* uniforms off the batched outcome stream, as a numpy view.

        Consumes the underlying generator exactly as the scalar
        kernel's per-draw loop does (same block size, same refill
        cadence), so the two kernels see identical outcome values.
        """
        buf = self._outcome_vec
        i = self._outcome_vec_i
        left = buf.shape[0] - i
        if n <= left:
            self._outcome_vec_i = i + n
            return buf[i:i + n]
        parts = [buf[i:]] if left else []
        need = n - left
        block = self._outcome_block
        while need > 0:
            fresh = self._outcome_rng.random(block)
            if need < block:
                self._outcome_vec = fresh
                self._outcome_vec_i = need
                parts.append(fresh[:need])
                need = 0
            else:
                self._outcome_vec = fresh
                self._outcome_vec_i = block
                parts.append(fresh)
                need -= block
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # Uniforms pre-drawn per plan pool: about one frame per 20 ms slot
    # of a 100 ms beacon interval, per receiver row.  Pools top up in
    # same-sized blocks when an interval carries more frames (data
    # bursts, retransmissions); leftovers are discarded at the next
    # plan, so every interval starts from fresh randomness.
    _PLAN_DRAW_FRAMES = 5
    # Plans shorter than this fraction of the interval are not worth
    # their establishment cost (span calls, column build, RNG call);
    # the few frames inside such a sliver resolve per frame and the
    # next frame past it re-plans.
    _PLAN_MIN_SPAN_FRAC = 0.05

    def _establish_plan(self, rows, start):
        """Commit *rows* as far into the current interval as possible.

        Bucket-centre banks make eps thresholds pure functions of
        (link, time bucket), so at a resolve every later threshold is
        already known up to the earliest instant some process cannot
        see past (its next burst flip or trace edge): ask each row's
        process for a ``loss_eps_span`` over ``[start, t1)`` (t1 = the
        next interval edge), cap the plan at the earliest per-row
        commitment horizon, assemble per-bucket eps column vectors,
        and pre-draw the horizon's uniforms in one RNG call.  Rows
        whose stored ``loss_eps_window`` bound already covers the
        interval are constant by contract and skip the span query
        entirely — on a BS transmitter that is the whole static BS-BS
        neighborhood in the common no-flip case.  Plans never cross
        an interval edge, so each interval re-plans at least once.

        A refusal (callable steering target, no window support) or a
        horizon too close to *start* aborts: establishment parks until
        the horizon (a new attempt past the flip can commit again) and
        the sliver's frames resolve per frame.  Rows whose spans did
        resolve keep their refreshed thresholds — identical to what a
        window refresh at *start* would have stored — so the fallback
        path continues from a coherent state.  Returns True when a
        plan is in place.
        """
        interval = self._predraw_interval
        t1 = (math.floor(start / interval) + 1.0) * interval
        n = rows.n
        eps = rows.eps
        valid_until = rows.valid_until
        span_fns = rows.span_fns
        row_vec = rows.row_vec
        row_q = rows.row_q
        row_k0 = rows.row_k0
        row_hi = rows.row_hi
        readahead = self._ROW_READAHEAD_S
        quantum = 0.0
        plan_until = t1
        bucketed = None  # row index -> per-bucket list (row cache)
        for i in range(n):
            if valid_until[i] >= t1:
                continue  # stored threshold outlives the interval
            vec = row_vec[i]
            if vec is None or not start < row_hi[i]:
                # Cold row: one read-ahead span call, cached in the
                # same per-row slots the refresh path serves from.
                span_fn = span_fns[i]
                span = None if span_fn is None \
                    else span_fn(start, start + readahead)
                if span is None:
                    rows.plan_fail_until = t1
                    self.predraw_failed_plans += 1
                    return False
                value, q, k, hi = span
                if q == 0.0:
                    eps[i] = value
                    valid_until[i] = hi
                    if hi < plan_until:
                        plan_until = hi
                    continue
                row_vec[i] = vec = value
                row_q[i] = q
                row_k0[i] = k
                row_hi[i] = hi
                rows.procs[i]._span_readahead = span
            else:
                q = row_q[i]
                hi = row_hi[i]
            if hi < plan_until:
                plan_until = hi
            if quantum == 0.0:
                quantum = q
            elif q != quantum:
                # Mixed bucket geometry in one row set: give up
                # rather than resample anything.
                rows.plan_fail_until = t1
                self.predraw_failed_plans += 1
                return False
            if bucketed is None:
                bucketed = {}
            bucketed[i] = vec
        if plan_until - start < interval * self._PLAN_MIN_SPAN_FRAC:
            rows.plan_fail_until = plan_until
            self.predraw_failed_plans += 1
            return False
        if bucketed is None:
            # Every row constant across the horizon: one column.
            cols = [np.array(eps, dtype=np.float64)]
            k0 = 0
            quantum = 0.0
        else:
            k0 = int(start / quantum)
            nb = int(plan_until / quantum) - k0 + 1
            stack = np.empty((nb, n), dtype=np.float64)
            stack[:] = eps  # broadcast constants down the buckets
            for i, vec in bucketed.items():
                lo = k0 - row_k0[i]
                stack[:, i] = vec[lo:lo + nb]
            cols = list(stack)
        rows.plan_q = quantum
        rows.plan_k0 = k0
        rows.plan_cols = cols
        rows.plan_until = plan_until
        rows.plan_u = self._outcome_rng.random(n * self._PLAN_DRAW_FRAMES)
        rows.plan_u_i = 0
        self.predraw_plans += 1
        return True

    def _plan_slice(self, rows, start):
        """``(eps_vector, uniforms)`` for a planned frame, or ``None``.

        Establishment is *armed* by a transmitter's first resolve in
        an interval and performed at its second — a transmitter that
        resolves once per interval never plans, one that bursts
        (vehicle data, anchor acks) plans from its second frame and
        serves the rest of the burst from the plan.  ``None`` sends
        the caller down the per-frame window path (plans never touch
        ``rows.eps`` other than through window-identical refreshes,
        so the fallback resumes soundly mid-interval).
        """
        if start >= rows.plan_until:
            if start < rows.plan_fail_until:
                self.predraw_fallback_frames += 1
                return None
            if start >= rows.plan_arm_until:
                interval = self._predraw_interval
                rows.plan_arm_until = \
                    (math.floor(start / interval) + 1.0) * interval
                self.predraw_fallback_frames += 1
                return None
            if not self._establish_plan(rows, start):
                self.predraw_fallback_frames += 1
                return None
        cols = rows.plan_cols
        q = rows.plan_q
        if q > 0.0:
            b = int(start / q) - rows.plan_k0
            if not 0 <= b < len(cols):
                # Defensive: a resolve outside the planned buckets
                # (cannot happen while start < plan_until, since the
                # bucket index is the same floor-division the span
                # used) falls back rather than misreads a column.
                self.predraw_fallback_frames += 1
                return None
            col = cols[b]
        else:
            col = cols[0]
        n = rows.n
        u = rows.plan_u
        i = rows.plan_u_i
        if i + n > u.shape[0]:
            u = rows.plan_u = self._outcome_rng.random(
                n * self._PLAN_DRAW_FRAMES)
            i = 0
        rows.plan_u_i = i + n
        self.predraw_planned_frames += 1
        return col, u[i:i + n]

    def _resolve_array(self, transmitter_id, frame, start, unicast_to,
                       attempt, rows):
        """Array kernel: vectorized outcome compare over the SoA rows.

        One uniform block slice is compared against the eps vector;
        only rows whose validity window lapsed re-evaluate their
        ``loss_eps``, and only the hits (deliveries) run python code.
        """
        unicast_delivered = False
        n = rows.n
        if n:
            planned = self._plan_slice(rows, start) \
                if self._interval_predraw else None
            if planned is not None:
                eps, u = planned
            else:
                eps = rows.eps
                if start >= rows.min_valid:
                    # At least one row's validity window lapsed:
                    # refresh those thresholds (the only python-per-row
                    # work the kernel ever does on the loss side).
                    self._refresh_row_thresholds(rows, start)
                u = self._draw_outcome_vector(n)
            ids = rows.ids
            receive = rows.receive
            delivered_count = self.delivered_count
            kind = frame.kind_value
            for i, hit in enumerate((u >= eps).tolist()):
                if not hit:
                    continue
                receiver_id = ids[i]
                if receiver_id == unicast_to:
                    unicast_delivered = True
                delivered_count[(receiver_id, kind)] += 1
                receive[i](frame, transmitter_id)
        return self._finish_resolve(transmitter_id, frame, unicast_to,
                                    attempt, unicast_delivered)

    def _resolve(self, transmitter_id, frame, start, collided,
                 unicast_to=None, attempt=0):
        unicast_delivered = False
        links = self.links
        observers = self.observers
        delivered_count = self.delivered_count
        kind = frame.kind_value
        now = self.sim.now
        if links.reach_refresh_s > 0.0 and not observers \
                and links._factory is None:
            # Fast path: no observers to notify about losses and no
            # factory that could supply unindexed links, so only the
            # in-range receivers need any work at all.  Receivers are
            # visited in sorted id order for reproducible delivery
            # order.  Loss outcomes for eps-capable processes come
            # from one batched medium-owned uniform block; a collided
            # frame never consumes draws (mirroring the scalar
            # short-circuit).
            if collided:
                return self._finish_resolve(transmitter_id, frame,
                                            unicast_to, attempt, False)
            if self.kernel == "array":
                rows = self._resolve_rows(transmitter_id, start)
                if rows.all_eps:
                    return self._resolve_array(transmitter_id, frame,
                                               start, unicast_to,
                                               attempt, rows)
                # Mixed rows (some processes lack loss_eps): per-row
                # loop, but eps draws still come off the kernel's
                # vector buffer — an array-kernel run consumes the
                # outcome stream through exactly one buffer, so the
                # (frame, receiver) -> uniform assignment matches the
                # scalar kernel's and the bitwise guarantee holds for
                # mixed tables too.
                ids = rows.ids
                receive = rows.receive
                eps_fns = rows.eps_fns
                procs = rows.procs
                for i in range(rows.n):
                    eps_fn = eps_fns[i]
                    if eps_fn is not None:
                        if self._draw_outcome_vector(1)[0] \
                                < eps_fn(start):
                            continue
                    elif procs[i].is_lost(start):
                        continue
                    receiver_id = ids[i]
                    if receiver_id == unicast_to:
                        unicast_delivered = True
                    delivered_count[(receiver_id, kind)] += 1
                    receive[i](frame, transmitter_id)
                return self._finish_resolve(transmitter_id, frame,
                                            unicast_to, attempt,
                                            unicast_delivered)
            buf = self._outcome_buf
            bi = self._outcome_i
            for receiver_id, node, eps_fn, process in \
                    self._resolve_entries(transmitter_id, start):
                if eps_fn is not None:
                    if bi >= len(buf):
                        buf = self._outcome_buf = self._outcome_rng \
                            .random(self._outcome_block).tolist()
                        bi = 0
                    u = buf[bi]
                    bi += 1
                    if u < eps_fn(start):
                        continue
                elif process.is_lost(start):
                    continue
                if receiver_id == unicast_to:
                    unicast_delivered = True
                delivered_count[(receiver_id, kind)] += 1
                node.on_receive(frame, transmitter_id)
            self._outcome_i = bi
            return self._finish_resolve(transmitter_id, frame,
                                        unicast_to, attempt,
                                        unicast_delivered)
        reachable = links.reachable_from(transmitter_id, start)
        known = links.known_receivers(transmitter_id) \
            if reachable is not None else None
        for receiver_id, node in self._nodes.items():
            if receiver_id == transmitter_id:
                continue
            if reachable is not None:
                if receiver_id in reachable:
                    process = known[receiver_id]
                    lost = collided or process.is_lost(start)
                elif receiver_id in known:
                    # Registered link, but out of range at the last
                    # reachability refresh: lost without running the
                    # stochastic channel.
                    lost = True
                else:
                    # Not in the index; a factory may still supply it.
                    process = links.get(transmitter_id, receiver_id)
                    if process is None:
                        continue
                    lost = collided or process.is_lost(start)
            else:
                process = links.get(transmitter_id, receiver_id)
                if process is None:
                    continue
                lost = collided or process.is_lost(start)
            if lost:
                for obs in observers:
                    obs.on_loss(transmitter_id, receiver_id, frame,
                                now, collided)
                continue
            if receiver_id == unicast_to:
                unicast_delivered = True
            delivered_count[(receiver_id, kind)] += 1
            for obs in observers:
                obs.on_deliver(transmitter_id, receiver_id, frame, now)
            node.on_receive(frame, transmitter_id)
        self._finish_resolve(transmitter_id, frame, unicast_to, attempt,
                             unicast_delivered)

    def _finish_resolve(self, transmitter_id, frame, unicast_to, attempt,
                        unicast_delivered):
        """Unicast retry bookkeeping and sender completion callback."""
        if unicast_to is not None:
            if unicast_delivered:
                self._cw[transmitter_id] = self.backoff_slots
            elif attempt < self.mac_retry_limit:
                # MAC retry: double the contention window and put the
                # frame back at the head of the queue.
                self._cw[transmitter_id] = min(
                    2 * self._cw[transmitter_id] + 1, self.max_cw_slots
                )
                self._queues[transmitter_id].appendleft(
                    (frame, unicast_to, attempt + 1)
                )
                self._schedule_attempt(transmitter_id)
                return  # completion deferred until MAC gives up
            else:
                # Retry budget exhausted; reset for the next frame.
                self._cw[transmitter_id] = self.backoff_slots
        callback = self._complete_cb.get(transmitter_id)
        if callback is not None:
            callback(frame)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def transmissions(self, kind=None, node_id=None):
        """Total transmissions, optionally filtered by kind / node.

        O(1): served from the Counter-backed aggregate views.
        """
        if kind is None and node_id is None:
            return self._tx_total
        if node_id is None:
            return self._tx_by_kind[kind]
        if kind is None:
            return self._tx_by_node[node_id]
        return self.tx_count[(node_id, kind)]
