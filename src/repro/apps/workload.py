"""Flow routing and the CBR probe workload.

:class:`FlowRouter` multiplexes multiple application flows over one
:class:`~repro.core.protocol.ViFiSimulation` (whose sinks are single
callbacks) by dispatching on ``flow_id``.

:class:`CbrWorkload` reproduces the link-layer measurement workload of
Sections 3.1 and 5.2: "the van and a remote computer attached to the
wired network send a 500-byte packet to each other every 100 ms."  Its
output feeds the session analysis of Figure 7.
"""

import numpy as np

__all__ = ["CbrWorkload", "FlowRouter"]


class FlowRouter:
    """Dispatch per-flow delivery callbacks over a protocol run."""

    #: Side constants for handler registration.
    VEHICLE = "vehicle"
    WIRED = "wired"

    def __init__(self, protocol):
        self.protocol = protocol
        self._vehicle_handlers = {}
        self._wired_handlers = {}
        protocol.set_downstream_sink(self._on_vehicle_delivery)
        protocol.set_upstream_sink(self._on_wired_delivery)

    def register(self, flow_id, side, handler):
        """Route deliveries of *flow_id* on *side* to *handler*.

        The handler signature is ``handler(packet, delivered_at)``.
        """
        table = self._table_for(side)
        if flow_id in table:
            raise ValueError(f"flow {flow_id} already registered on {side}")
        table[flow_id] = handler

    def unregister(self, flow_id, side):
        self._table_for(side).pop(flow_id, None)

    def _table_for(self, side):
        if side == self.VEHICLE:
            return self._vehicle_handlers
        if side == self.WIRED:
            return self._wired_handlers
        raise ValueError(f"unknown side {side!r}")

    def _on_vehicle_delivery(self, packet, delivered_at):
        handler = self._vehicle_handlers.get(packet.flow_id)
        if handler is not None:
            handler(packet, delivered_at)

    def _on_wired_delivery(self, packet, delivered_at):
        handler = self._wired_handlers.get(packet.flow_id)
        if handler is not None:
            handler(packet, delivered_at)


class CbrWorkload:
    """Bidirectional constant-bit-rate probes over a protocol run.

    Args:
        protocol: a started (or startable) ViFiSimulation.
        router: the shared :class:`FlowRouter`.
        interval_s: packet spacing (paper: 0.1 s).
        size_bytes: packet size (paper: 500).
        flow_base: two flow ids are used: ``flow_base`` (upstream) and
            ``flow_base + 1`` (downstream).
    """

    def __init__(self, protocol, router, interval_s=0.1, size_bytes=500,
                 flow_base=10):
        self.protocol = protocol
        self.interval = float(interval_s)
        self.size_bytes = int(size_bytes)
        self.up_flow = flow_base
        self.down_flow = flow_base + 1
        self._seq = 0
        self.sent_times = {}
        self.up_deliveries = {}   # seq -> delivered_at
        self.down_deliveries = {}
        self._started_at = None
        self._stopped_at = None
        router.register(self.up_flow, FlowRouter.WIRED, self._up_delivered)
        router.register(self.down_flow, FlowRouter.VEHICLE,
                        self._down_delivered)

    # -- driving ---------------------------------------------------------

    def start(self, at_time):
        self._started_at = float(at_time)
        self.protocol.sim.schedule_at(self._started_at, self._tick)

    def stop(self, at_time):
        self._stopped_at = float(at_time)

    def _tick(self):
        now = self.protocol.sim.now
        if self._stopped_at is not None and now >= self._stopped_at:
            return
        seq = self._seq
        self._seq += 1
        self.sent_times[seq] = now
        self.protocol.send_upstream(("cbr-up", seq), self.size_bytes,
                                    flow_id=self.up_flow, seq=seq)
        self.protocol.send_downstream(("cbr-down", seq), self.size_bytes,
                                      flow_id=self.down_flow, seq=seq)
        self.protocol.sim.schedule(self.interval, self._tick)

    def _up_delivered(self, packet, delivered_at):
        self.up_deliveries.setdefault(packet.seq, delivered_at)

    def _down_delivered(self, packet, delivered_at):
        self.down_deliveries.setdefault(packet.seq, delivered_at)

    # -- analysis ----------------------------------------------------------

    @property
    def packets_sent(self):
        return self._seq

    def window_reception_ratio(self, window_s=1.0, deadline_s=None):
        """Combined per-window reception ratio, as in the trace study.

        A packet counts toward the window in which it was *sent*; with
        ``deadline_s`` set, deliveries later than the deadline do not
        count (interactive traffic has no use for stale packets).

        Returns:
            Float array of per-window combined reception ratios.
        """
        if self._started_at is None or self._seq == 0:
            return np.zeros(0)
        per_window = int(round(window_s / self.interval))
        n_windows = self._seq // per_window
        ratios = np.zeros(n_windows)
        for w in range(n_windows):
            delivered = 0
            for seq in range(w * per_window, (w + 1) * per_window):
                sent = self.sent_times[seq]
                for table in (self.up_deliveries, self.down_deliveries):
                    arrival = table.get(seq)
                    if arrival is None:
                        continue
                    if deadline_s is not None and arrival - sent > deadline_s:
                        continue
                    delivered += 1
            ratios[w] = delivered / (2.0 * per_window)
        return ratios

    def delivery_rate(self):
        """Fraction of probes delivered, pooled over both directions."""
        if self._seq == 0:
            return 0.0
        delivered = len(self.up_deliveries) + len(self.down_deliveries)
        return delivered / (2.0 * self._seq)
