"""Application models (Section 5.3): VoIP and short TCP transfers.

* :mod:`repro.apps.mos` — the Cole-Rosenbluth R-factor / Mean Opinion
  Score model the paper uses to judge VoIP quality, plus interruption
  detection (MoS < 2 sustained for three seconds).
* :mod:`repro.apps.voip` — a G.729 voice stream (20-byte packets every
  20 ms, both directions) driven over a protocol run, with the paper's
  delay budget.
* :mod:`repro.apps.tcp` — a compact TCP implementation (slow start,
  AIMD, RTO, fast retransmit) used for repeated 10 KB transfers with a
  ten-second no-progress abort, plus session accounting.
* :mod:`repro.apps.workload` — flow routing over a
  :class:`~repro.core.protocol.ViFiSimulation` and the CBR probe
  workload used for link-layer experiments.
"""

from repro.apps.mos import (
    MosConfig,
    interruption_windows,
    mos_from_r,
    r_factor,
    voip_sessions,
)
from repro.apps.tcp import TcpConfig, TcpWorkload
from repro.apps.voip import VoipConfig, VoipStream
from repro.apps.workload import CbrWorkload, FlowRouter

__all__ = [
    "CbrWorkload",
    "FlowRouter",
    "MosConfig",
    "TcpConfig",
    "TcpWorkload",
    "VoipConfig",
    "VoipStream",
    "interruption_windows",
    "mos_from_r",
    "r_factor",
    "voip_sessions",
]
