"""A G.729 VoIP stream over a protocol run (Section 5.3.2).

"Per the codec, we generate 20-byte packets every 20 ms" in both
directions.  Quality is judged per three-second window from the pooled
loss fraction (network losses plus late arrivals beyond the 52 ms
wireless budget) and the mouth-to-ear delay, via the R-factor model in
:mod:`repro.apps.mos`.
"""

import math

from repro.apps.mos import MosConfig, mos_score, voip_sessions
from repro.apps.workload import FlowRouter

__all__ = ["VoipConfig", "VoipStream"]


class VoipConfig:
    """Stream parameters (paper defaults)."""

    def __init__(self, packet_interval_s=0.02, packet_size_bytes=20,
                 mos=None):
        self.packet_interval_s = float(packet_interval_s)
        self.packet_size_bytes = int(packet_size_bytes)
        self.mos = mos or MosConfig()

    def cache_token(self):
        """Store-key identity: every parameter that shapes a result.

        A plain class tokenizes by this hook (not per-field like a
        dataclass), so any new ``__init__`` parameter must be added
        here or the STORE-TOKEN contract is violated silently.
        """
        return ("voip-config", self.packet_interval_s,
                self.packet_size_bytes, self.mos)


class VoipStream:
    """Bidirectional voice stream with per-window MoS accounting.

    Args:
        protocol: the ViFiSimulation to ride on.
        router: the shared :class:`FlowRouter`.
        config: a :class:`VoipConfig`.
        flow_base: uses ``flow_base`` (upstream leg) and
            ``flow_base + 1`` (downstream leg).
    """

    def __init__(self, protocol, router, config=None, flow_base=20):
        self.protocol = protocol
        self.config = config or VoipConfig()
        self.up_flow = flow_base
        self.down_flow = flow_base + 1
        self._seq = 0
        self.sent_times = {}
        self.up_deliveries = {}
        self.down_deliveries = {}
        self._started_at = None
        self._stopped_at = None
        router.register(self.up_flow, FlowRouter.WIRED, self._up_delivered)
        router.register(self.down_flow, FlowRouter.VEHICLE,
                        self._down_delivered)

    # -- driving -----------------------------------------------------------

    def start(self, at_time):
        self._started_at = float(at_time)
        self.protocol.sim.schedule_at(self._started_at, self._tick)

    def stop(self, at_time):
        self._stopped_at = float(at_time)

    def _tick(self):
        now = self.protocol.sim.now
        if self._stopped_at is not None and now >= self._stopped_at:
            return
        seq = self._seq
        self._seq += 1
        self.sent_times[seq] = now
        self.protocol.send_upstream(("voice-up", seq),
                                    self.config.packet_size_bytes,
                                    flow_id=self.up_flow, seq=seq)
        self.protocol.send_downstream(("voice-down", seq),
                                      self.config.packet_size_bytes,
                                      flow_id=self.down_flow, seq=seq)
        self.protocol.sim.schedule(self.config.packet_interval_s, self._tick)

    def _up_delivered(self, packet, delivered_at):
        self.up_deliveries.setdefault(packet.seq, delivered_at)

    def _down_delivered(self, packet, delivered_at):
        self.down_deliveries.setdefault(packet.seq, delivered_at)

    # -- quality analysis -------------------------------------------------------

    def window_quality(self):
        """Per-3-second-window ``(mos, loss_fraction, delay_ms)`` tuples.

        A packet is effectively lost when undelivered or when its
        wireless one-way delay exceeds the 52 ms budget; on-time
        packets contribute their wireless delay to the window's
        mouth-to-ear estimate (fixed components + mean wireless delay).
        """
        mos_cfg = self.config.mos
        if self._started_at is None or self._seq == 0:
            return []
        budget_s = mos_cfg.wireless_budget_ms / 1000.0
        per_window = int(round(
            mos_cfg.window_s / self.config.packet_interval_s
        ))
        n_windows = self._seq // per_window
        windows = []
        for w in range(n_windows):
            total = 0
            lost = 0
            delays = []
            for seq in range(w * per_window, (w + 1) * per_window):
                sent = self.sent_times[seq]
                for table in (self.up_deliveries, self.down_deliveries):
                    total += 1
                    arrival = table.get(seq)
                    if arrival is None or (arrival - sent) > budget_s:
                        lost += 1
                    else:
                        delays.append((arrival - sent) * 1000.0)
            loss_fraction = lost / total if total else 1.0
            wireless_ms = (
                math.fsum(delays) / len(delays) if delays
                else mos_cfg.wireless_budget_ms
            )
            delay_ms = mos_cfg.fixed_delay_ms + wireless_ms
            windows.append(
                (mos_score(delay_ms, loss_fraction), loss_fraction, delay_ms)
            )
        return windows

    def session_lengths(self):
        """Uninterrupted-session lengths (seconds), per the paper's rule."""
        mos_values = [m for m, _, _ in self.window_quality()]
        return voip_sessions(
            mos_values,
            window_s=self.config.mos.window_s,
            threshold=self.config.mos.interruption_mos,
        )

    def mean_mos(self):
        """Average of the per-window MoS scores."""
        quality = self.window_quality()
        if not quality:
            return 1.0
        return math.fsum(m for m, _, _ in quality) / len(quality)
