"""VoIP quality: R-factor, Mean Opinion Score, interruptions.

The paper (Section 5.3.2) follows Cole & Rosenbluth's E-model
simplification for the G.729 codec:

``R = 94.2 - 0.024 d - 0.11 (d - 177.3) H(d - 177.3) - 11
     - 40 ln(1 + 10 e)``

where *d* is the mouth-to-ear delay in milliseconds, *e* the total
loss fraction (network losses plus late arrivals), and *H* the
Heaviside step.  The ``11`` and ``40 ln(1 + 10 e)`` terms are the
G.729 equipment impairment; note the logarithm is *natural* — with a
base-10 log the loss impairment could never push MoS below 2 even at
100% loss, contradicting the paper's interruption threshold.

MoS is estimated from R as: 1 if R < 0; 4.5 if R > 100; otherwise
``1 + 0.035 R + 7e-6 R (R - 60)(100 - R)``.

The paper deems a VoIP call *interrupted* "when the MoS value drops
below 2 for a three-second period".
"""

import math
from dataclasses import dataclass

__all__ = [
    "MosConfig",
    "interruption_windows",
    "mos_from_r",
    "mos_score",
    "r_factor",
    "voip_sessions",
]


@dataclass
class MosConfig:
    """The paper's G.729 delay budget and interruption rule.

    Mouth-to-ear delay = coding (25 ms) + wired segment (40 ms) +
    jitter buffer (60 ms) + wireless segment.  "Aiming for a
    mouth-to-ear delay of 177 ms ... means that packets that take more
    than 52 ms in the wireless part should be considered lost."
    """

    coding_delay_ms: float = 25.0
    wired_delay_ms: float = 40.0
    jitter_buffer_ms: float = 60.0
    target_mouth_to_ear_ms: float = 177.0
    window_s: float = 3.0
    interruption_mos: float = 2.0

    @property
    def fixed_delay_ms(self):
        return (self.coding_delay_ms + self.wired_delay_ms
                + self.jitter_buffer_ms)

    @property
    def wireless_budget_ms(self):
        """Wireless delay beyond which a packet counts as lost."""
        return self.target_mouth_to_ear_ms - self.fixed_delay_ms


def r_factor(delay_ms, loss_fraction):
    """Cole-Rosenbluth R-factor for G.729 (A = 0, Is folded into 94.2)."""
    if not 0.0 <= loss_fraction <= 1.0:
        raise ValueError(f"loss fraction {loss_fraction} outside [0, 1]")
    if delay_ms < 0:
        raise ValueError("delay cannot be negative")
    r = 94.2 - 0.024 * delay_ms
    if delay_ms > 177.3:
        r -= 0.11 * (delay_ms - 177.3)
    r -= 11.0
    r -= 40.0 * math.log(1.0 + 10.0 * loss_fraction)
    return r


def mos_from_r(r):
    """Map an R-factor to the 1-4.5 MoS scale.

    The E-model cubic dips marginally below 1 for small positive R
    (e.g. R = 5 gives 0.992), so the result is clamped to [1, 4.5] as
    is conventional.
    """
    if r < 0.0:
        return 1.0
    if r > 100.0:
        return 4.5
    raw = 1.0 + 0.035 * r + 7.0e-6 * r * (r - 60.0) * (100.0 - r)
    return min(max(raw, 1.0), 4.5)


def mos_score(delay_ms, loss_fraction):
    """Convenience: MoS directly from delay and loss."""
    return mos_from_r(r_factor(delay_ms, loss_fraction))


def interruption_windows(window_mos, threshold=2.0):
    """Boolean interruption flags per window (True = interrupted)."""
    return [m < threshold for m in window_mos]


def voip_sessions(window_mos, window_s=3.0, threshold=2.0):
    """Uninterrupted-session lengths from per-window MoS values.

    A session is a maximal run of consecutive windows at or above the
    MoS threshold; its length is the run duration in seconds.

    Returns:
        List of session lengths (seconds).
    """
    sessions = []
    run = 0
    for m in window_mos:
        if m >= threshold:
            run += 1
        elif run:
            sessions.append(run * window_s)
            run = 0
    if run:
        sessions.append(run * window_s)
    return sessions
