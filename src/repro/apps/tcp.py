"""A compact TCP for short transfers (Section 5.3.1).

The paper's workload: "The vehicle repeatedly fetches a 10 KB file from
a machine connected to the wired network and the machine does the same
in the other direction.  Transfers that make no progress for ten
seconds are terminated and started afresh."  Two performance measures:
the time to complete a transfer, and the number of completed transfers
per session, "where a session is a period of time in which no transfer
attempt was terminated due to a lack of progress."

The implementation is a single-flow TCP with the mechanisms that matter
at this scale: connection setup via a retransmitted request, slow
start / congestion avoidance, duplicate-ack fast retransmit, an RTO
with Karn's rule and exponential backoff (minimum one second — the
basis for ViFi's salvage threshold), and immediate acks.  Segments ride
the ViFi (or BRR) link layer, which retransmits each frame at most
``max_retx`` times underneath.
"""

import math
from dataclasses import dataclass, field

from repro.apps.workload import FlowRouter

__all__ = ["TcpConfig", "TcpTransfer", "TcpWorkload", "TransferResult"]


@dataclass
class TcpConfig:
    """Transfer and congestion-control parameters."""

    file_size_bytes: int = 10 * 1024
    mss: int = 1400
    header_bytes: int = 40
    request_bytes: int = 60
    init_cwnd_segments: int = 2
    init_ssthresh_bytes: int = 65536
    min_rto_s: float = 1.0
    max_rto_s: float = 16.0
    dupack_threshold: int = 3
    stall_timeout_s: float = 10.0


@dataclass
class TransferResult:
    """Outcome of one transfer attempt."""

    direction: str
    started_at: float
    finished_at: float
    completed: bool

    @property
    def duration(self):
        return self.finished_at - self.started_at


class _RtoEstimator:
    """RFC 6298 smoothed RTT with Karn's rule and a 1 s floor."""

    def __init__(self, min_rto, max_rto):
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt = None
        self.rttvar = None
        self.backoff = 1.0

    def sample(self, rtt):
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.backoff = 1.0

    def on_timeout(self):
        self.backoff = min(self.backoff * 2.0, 64.0)

    def rto(self):
        if self.srtt is None:
            base = self.min_rto
        else:
            base = self.srtt + max(4.0 * self.rttvar, 0.01)
        return min(max(base * self.backoff, self.min_rto), self.max_rto)


class _Sender:
    """Window-managed byte-stream sender half of a transfer."""

    def __init__(self, transfer, send, config, sim):
        self.transfer = transfer
        self.send = send  # callable(payload, size_bytes)
        self.config = config
        self.sim = sim
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = config.init_cwnd_segments * config.mss
        self.ssthresh = config.init_ssthresh_bytes
        self.dupacks = 0
        self.rto = _RtoEstimator(config.min_rto_s, config.max_rto_s)
        self._send_times = {}  # offset -> (time, retransmitted)
        self._rto_event = None
        self.done = False

    def pump(self):
        cfg = self.config
        while (not self.done
               and self.snd_nxt < cfg.file_size_bytes
               and self.snd_nxt - self.snd_una + cfg.mss <= self.cwnd):
            length = min(cfg.mss, cfg.file_size_bytes - self.snd_nxt)
            self._transmit(self.snd_nxt, length, retransmit=False)
            self.snd_nxt += length
        self._arm_rto()

    def _transmit(self, offset, length, retransmit):
        previous = self._send_times.get(offset)
        self._send_times[offset] = (
            self.sim.now, retransmit or (previous is not None
                                         and previous[1]),
        )
        if retransmit and previous is not None:
            self._send_times[offset] = (self.sim.now, True)
        self.send(("data", offset, length),
                  self.config.header_bytes + length)

    def on_ack(self, cum_bytes):
        cfg = self.config
        if cum_bytes > self.snd_una:
            entry = self._send_times.get(self.snd_una)
            if entry is not None and not entry[1]:
                self.rto.sample(self.sim.now - entry[0])
            # Retire timing state for fully acked segments.
            for offset in [o for o in self._send_times if o < cum_bytes]:
                del self._send_times[offset]
            self.snd_una = cum_bytes
            self.dupacks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd += cfg.mss  # slow start
            else:
                self.cwnd += max(cfg.mss * cfg.mss // self.cwnd, 1)
            self.transfer.on_progress()
            if self.snd_una >= cfg.file_size_bytes:
                self.done = True
                self._cancel_rto()
                return
            self.pump()
        elif cum_bytes == self.snd_una and self.snd_nxt > self.snd_una:
            self.dupacks += 1
            if self.dupacks == cfg.dupack_threshold:
                flight = self.snd_nxt - self.snd_una
                self.ssthresh = max(flight // 2, 2 * cfg.mss)
                self.cwnd = self.ssthresh + cfg.dupack_threshold * cfg.mss
                length = min(cfg.mss, cfg.file_size_bytes - self.snd_una)
                self._transmit(self.snd_una, length, retransmit=True)
                self._arm_rto()

    def _arm_rto(self):
        self._cancel_rto()
        if self.done or self.snd_nxt == self.snd_una:
            return
        self._rto_event = self.sim.schedule(self.rto.rto(), self._on_rto)

    def _cancel_rto(self):
        if self._rto_event is not None and self._rto_event.active:
            self._rto_event.cancel()
        self._rto_event = None

    def _on_rto(self):
        if self.done or self.transfer.finished:
            return
        cfg = self.config
        flight = self.snd_nxt - self.snd_una
        self.ssthresh = max(flight // 2, 2 * cfg.mss)
        self.cwnd = cfg.mss
        self.dupacks = 0
        self.rto.on_timeout()
        length = min(cfg.mss, cfg.file_size_bytes - self.snd_una)
        self._transmit(self.snd_una, length, retransmit=True)
        self._arm_rto()


class _Receiver:
    """Reassembling receiver half; acks every arriving segment."""

    def __init__(self, transfer, send_ack, config):
        self.transfer = transfer
        self.send_ack = send_ack  # callable(payload, size_bytes)
        self.config = config
        self.rcv_next = 0
        self._out_of_order = {}
        self.done = False

    def on_data(self, offset, length):
        if offset == self.rcv_next:
            self.rcv_next += length
            while self.rcv_next in self._out_of_order:
                self.rcv_next += self._out_of_order.pop(self.rcv_next)
            self.transfer.on_progress()
        elif offset > self.rcv_next:
            self._out_of_order.setdefault(offset, length)
        self.send_ack(("ack", self.rcv_next), self.config.header_bytes)
        if self.rcv_next >= self.config.file_size_bytes and not self.done:
            self.done = True
            self.transfer.on_receiver_complete()


class TcpTransfer:
    """One 10 KB transfer attempt over a protocol run.

    Args:
        protocol: the ViFiSimulation.
        router: shared :class:`FlowRouter`.
        flow_id: unique flow id for this attempt.
        direction: ``"download"`` (wired -> vehicle) or ``"upload"``.
        config: a :class:`TcpConfig`.
        on_done: callable ``(TransferResult) -> None``.
    """

    def __init__(self, protocol, router, flow_id, direction, config,
                 on_done):
        if direction not in ("download", "upload"):
            raise ValueError(f"unknown direction {direction!r}")
        self.protocol = protocol
        self.router = router
        self.flow_id = flow_id
        self.direction = direction
        self.config = config
        self.on_done = on_done
        self.started_at = None
        self.finished = False
        self.last_progress = None
        self._request_event = None
        self._stall_event = None
        self.sender = None
        self.receiver = None

        if direction == "download":
            data_send = self._send_downstream
            ack_send = self._send_upstream
            data_side, ack_side = FlowRouter.VEHICLE, FlowRouter.WIRED
        else:
            data_send = self._send_upstream
            ack_send = self._send_downstream
            data_side, ack_side = FlowRouter.WIRED, FlowRouter.VEHICLE

        self._data_send = data_send
        self._ack_send = ack_send
        self.receiver = _Receiver(self, ack_send, config)
        self.sender = _Sender(self, data_send, config, protocol.sim)
        router.register(flow_id, data_side, self._on_data_side)
        router.register(flow_id, ack_side, self._on_ack_side)
        self._data_side, self._ack_side = data_side, ack_side

    # -- plumbing -------------------------------------------------------------

    def _send_upstream(self, payload, size):
        self.protocol.send_upstream(payload, size, flow_id=self.flow_id)

    def _send_downstream(self, payload, size):
        self.protocol.send_downstream(payload, size, flow_id=self.flow_id)

    def _on_data_side(self, packet, delivered_at):
        """Deliveries on the side that receives file data."""
        kind = packet.payload[0]
        if kind == "data":
            _, offset, length = packet.payload
            self.receiver.on_data(offset, length)

    def _on_ack_side(self, packet, delivered_at):
        """Deliveries on the side that sends file data."""
        kind = packet.payload[0]
        if kind == "req":
            if self.sender.snd_nxt == 0:
                self.on_progress()
                self.sender.pump()
        elif kind == "ack":
            self.sender.on_ack(packet.payload[1])

    # -- lifecycle --------------------------------------------------------------

    def start(self):
        now = self.protocol.sim.now
        self.started_at = now
        self.last_progress = now
        self._send_request()
        self._stall_event = self.protocol.sim.schedule(
            1.0, self._check_stall
        )

    def _send_request(self):
        if self.finished or self.sender.snd_nxt > 0:
            return
        # The request travels opposite to the data.
        self._ack_send(("req",), self.config.request_bytes)
        self._request_event = self.protocol.sim.schedule(
            self.config.min_rto_s, self._send_request
        )

    def on_progress(self):
        self.last_progress = self.protocol.sim.now

    def on_receiver_complete(self):
        self._finish(completed=True)

    def _check_stall(self):
        if self.finished:
            return
        now = self.protocol.sim.now
        if now - self.last_progress >= self.config.stall_timeout_s:
            self._finish(completed=False)
            return
        self._stall_event = self.protocol.sim.schedule(
            1.0, self._check_stall
        )

    def _finish(self, completed):
        if self.finished:
            return
        self.finished = True
        for event in (self._request_event, self._stall_event):
            if event is not None and event.active:
                event.cancel()
        self.sender.done = True
        self.sender._cancel_rto()
        self.router.unregister(self.flow_id, self._data_side)
        self.router.unregister(self.flow_id, self._ack_side)
        self.on_done(TransferResult(
            direction=self.direction,
            started_at=self.started_at,
            finished_at=self.protocol.sim.now,
            completed=completed,
        ))


class TcpWorkload:
    """Back-to-back transfers with session accounting (Figures 9/10).

    Args:
        protocol: the ViFiSimulation.
        router: shared :class:`FlowRouter`.
        config: :class:`TcpConfig`.
        directions: cycle of transfer directions (paper runs both).
        flow_base: first flow id; each attempt uses the next id.
    """

    def __init__(self, protocol, router, config=None,
                 directions=("download", "upload"), flow_base=1000):
        self.protocol = protocol
        self.router = router
        self.config = config or TcpConfig()
        self.directions = tuple(directions)
        self._next_flow = flow_base
        self._direction_index = 0
        self.results = []
        self._stopped_at = None
        self._started_at = None

    def start(self, at_time):
        self._started_at = float(at_time)
        self.protocol.sim.schedule_at(at_time, self._launch_next)

    def stop(self, at_time):
        self._stopped_at = float(at_time)

    def _launch_next(self):
        now = self.protocol.sim.now
        if self._stopped_at is not None and now >= self._stopped_at:
            return
        direction = self.directions[
            self._direction_index % len(self.directions)
        ]
        self._direction_index += 1
        flow_id = self._next_flow
        self._next_flow += 1
        transfer = TcpTransfer(
            self.protocol, self.router, flow_id, direction, self.config,
            on_done=self._on_done,
        )
        transfer.start()

    def _on_done(self, result):
        self.results.append(result)
        self._launch_next()

    # -- metrics --------------------------------------------------------------

    @property
    def completed(self):
        return [r for r in self.results if r.completed]

    @property
    def aborted(self):
        return [r for r in self.results if not r.completed]

    def median_transfer_time(self):
        """Median completion time in seconds (Figure 9a)."""
        times = sorted(r.duration for r in self.completed)
        if not times:
            return math.inf
        return times[len(times) // 2]

    def transfers_per_session(self):
        """Mean completed transfers per session (Figure 9b).

        Sessions are delimited by aborted attempts; the trailing open
        session counts when it contains at least one completion.
        """
        sessions = []
        current = 0
        for result in self.results:
            if result.completed:
                current += 1
            else:
                sessions.append(current)
                current = 0
        if current:
            sessions.append(current)
        if not sessions:
            return 0.0
        return math.fsum(sessions) / len(sessions)

    def transfers_per_second(self):
        """Completed transfers per elapsed second (Figure 10)."""
        if self._started_at is None or self._stopped_at is None:
            return 0.0
        elapsed = self._stopped_at - self._started_at
        if elapsed <= 0:
            return 0.0
        return len(self.completed) / elapsed
