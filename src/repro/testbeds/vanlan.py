"""The synthetic VanLAN testbed.

VanLAN (Section 2.1) consists of eleven basestations deployed across
five buildings on the Microsoft campus in Redmond, bounded by an
828 x 559 m region, and vehicles that "provide a shuttle service around
the town, moving within a speed limit of about 40 Km/h", visiting the
region about ten times a day.

This module rebuilds that environment synthetically:

* eleven BSes clustered on five "buildings" inside the paper's bounding
  box;
* a shuttle loop passing the buildings at 40 km/h with short stops;
* a layered radio model per (trip, BS) pair: log-distance path loss, a
  *static spatial field* (persistent per-location obstruction effects
  that make History-style prediction possible), per-trip temporal
  shadowing, gray periods, and Gilbert-Elliott burst losses.

Its products are the paper's two artifact types: probe traces
(Section 3.1 methodology) and beacon logs, plus a live
:class:`~repro.net.medium.LinkTable` for deployment-style protocol runs.
"""

import numpy as np

from repro.net.channel import SteeredGilbertElliott
from repro.net.medium import LinkTable
from repro.net.mobility import Route, VehicleMotion
from repro.net.propagation import (
    GrayPeriodProcess,
    LinkBank,
    LinkModel,
    LinkStateCache,
    RadioProfile,
    Shadowing,
    SpatialField,
)
from repro.sim.rng import RngRegistry
from repro.testbeds.layout import Deployment
from repro.testbeds.traces import BeaconLog, ProbeTrace

__all__ = ["VEHICLE_ID", "VanLanTestbed", "default_vanlan_deployment"]

#: Node id used for the vehicle in generated traces and simulations.
VEHICLE_ID = 0

#: BS placements: eleven radios across five buildings (id -> (x, y)).
#: The geometry spans the paper's 828 x 559 m bounding box (Figure 1).
_DEFAULT_BS_POSITIONS = {
    1: (140.0, 150.0),   # building A
    2: (185.0, 185.0),   # building A
    3: (420.0, 110.0),   # building B
    4: (470.0, 150.0),   # building B
    5: (690.0, 170.0),   # building C
    6: (740.0, 200.0),   # building C
    7: (720.0, 135.0),   # building C
    8: (600.0, 420.0),   # building D
    9: (650.0, 460.0),   # building D
    10: (240.0, 420.0),  # building E
    11: (290.0, 455.0),  # building E
}

#: Shuttle loop waypoints (metres); passes every building cluster.
_DEFAULT_ROUTE_WAYPOINTS = [
    (40.0, 90.0),
    (400.0, 55.0),
    (640.0, 80.0),
    (790.0, 160.0),
    (780.0, 330.0),
    (660.0, 505.0),
    (430.0, 520.0),
    (180.0, 500.0),
    (55.0, 340.0),
    (40.0, 90.0),
]


def default_vanlan_deployment():
    """The eleven-BS VanLAN deployment used throughout the benchmarks."""
    return Deployment("VanLAN", _DEFAULT_BS_POSITIONS, bounds=(828.0, 559.0))


class VanLanTestbed:
    """Synthetic VanLAN: geometry, radio environment, trace generation.

    Args:
        seed: root seed; fixes the spatial fields and, combined with a
            trip index, every stochastic process of a trip.
        profile: a :class:`~repro.net.propagation.RadioProfile`; the
            default is calibrated so Figure 5/6 statistics land in the
            paper's regime.
        deployment: alternative BS layout (default: the 11-BS layout).
        speed_mps: shuttle cruise speed (default 40 km/h).
        probes_per_second: probe/beacon broadcast rate (paper: 10/s).
    """

    def __init__(self, seed=0, profile=None, interbs_profile=None,
                 deployment=None, speed_mps=11.1, probes_per_second=10):
        self.seed = int(seed)
        self.rngs = RngRegistry(seed)
        # Vehicle-BS: street-level, obstructed propagation.  The
        # shadowing and gray-period parameters are calibrated so the
        # Section 3 phenomenology holds: sharp unpredictable drops even
        # near BSes, bursty losses, and hard-handoff disruptions that
        # macrodiversity can mask (see EXPERIMENTS.md for the checks).
        self.profile = profile or RadioProfile(
            path_loss_exponent=3.0,
            decode_mid_dbm=-89.0,
            shadowing_sigma_db=7.0,
            shadowing_tau_s=9.0,
            max_reception=0.85,
            gray_rate_per_s=1.0 / 25.0,
            gray_duration_s=4.0,
            gray_residual_reception=0.02,
        )
        # BS-BS: rooftop omnis with near line of sight; a friendlier
        # exponent so nearby BSes overhear each other (Section 4.1)
        # while distant pairs remain out of range (Section 2.1).
        self.interbs_profile = interbs_profile or RadioProfile(
            path_loss_exponent=2.5,
            decode_mid_dbm=-89.0,
        )
        self.deployment = deployment or default_vanlan_deployment()
        self.speed_mps = float(speed_mps)
        self.probes_per_second = int(probes_per_second)
        # Static per-BS spatial fields: the persistent part of the
        # environment (buildings, trees).  Keyed by the testbed seed
        # only, so every trip and every day shares them.
        # The 1 m cache quantum is 1/70th of the correlation length:
        # the lookup error (< 0.1 dB) is far below the 4 dB field
        # sigma, while consecutive 20 ms link-cache queries of the
        # moving vehicle (~0.2 m apart) mostly coalesce.
        self._spatial = {
            bs: SpatialField(
                sigma_db=4.0,
                correlation_m=70.0,
                rng=self.rngs.fresh("spatial", bs),
                cache_quantum_m=1.0,
            )
            for bs in self.deployment.bs_ids
        }

    def cache_token(self):
        """Identity for content-addressed caching (see repro.store).

        Everything stochastic in a trip is a pure function of this
        identity plus the trip index, so results and memoized physics
        keyed by it are safe to share across processes and runs.
        """
        return ("VanLanTestbed", self.seed, self.speed_mps,
                self.probes_per_second, self.profile,
                self.interbs_profile, self.deployment)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def make_route(self, n_loops=1):
        """The shuttle route: *n_loops* circuits of the campus loop."""
        waypoints = list(_DEFAULT_ROUTE_WAYPOINTS)
        for _ in range(int(n_loops) - 1):
            waypoints.extend(_DEFAULT_ROUTE_WAYPOINTS[1:])
        return Route(waypoints, speed_mps=self.speed_mps,
                     stop_durations={0: 5.0})

    def vehicle_motion(self, n_loops=1, depart_at=0.0):
        return VehicleMotion(self.make_route(n_loops), depart_at=depart_at)

    # ------------------------------------------------------------------
    # Radio links
    # ------------------------------------------------------------------

    def link_model(self, trip, bs_id, vehicle_position):
        """The (slow-fading) link model between a BS and the vehicle.

        Shadowing and gray periods are drawn per (trip, BS): a new trip
        sees a new realization of the time-varying environment, but the
        same spatial field.
        """
        trip_rngs = self.rngs.spawn("trip", trip)
        shadowing = Shadowing(
            sigma_db=self.profile.shadowing_sigma_db,
            tau_s=self.profile.shadowing_tau_s,
            rng=trip_rngs.stream("shadow", bs_id),
        )
        gray = GrayPeriodProcess(
            rate_per_s=self.profile.gray_rate_per_s,
            mean_duration_s=self.profile.gray_duration_s,
            rng=trip_rngs.stream("gray", bs_id),
        )
        return LinkModel(
            profile=self.profile,
            position_a=self.deployment.position_of(bs_id),
            position_b=vehicle_position,
            shadowing=shadowing,
            gray=gray,
            spatial=self._spatial[bs_id],
        )

    def interbs_reception(self, bs_a, bs_b):
        """Static mean reception probability between two BSes."""
        distance = self.deployment.distance(bs_a, bs_b)
        profile = self.interbs_profile
        return profile.reception_prob(profile.mean_rssi(distance))

    # ------------------------------------------------------------------
    # Trace generation (Section 3.1 methodology)
    # ------------------------------------------------------------------

    def generate_probe_trace(self, trip, n_loops=1, rssi_noise_db=1.0,
                             max_seconds=None):
        """Generate the broadcast-probe trace for one trip.

        Every node broadcasts a 500-byte probe every 100 ms; the trace
        records which probes were decoded in each direction and the
        RSSI of decoded BS probes (used as beacons by the policies).
        ``max_seconds`` truncates the trip (smoke tests and quick
        demos); the generated prefix is identical to the full trace's.
        """
        motion = self.vehicle_motion(n_loops)
        duration = motion.route.duration
        if max_seconds is not None:
            duration = min(duration, float(max_seconds))
        slot_dt = 1.0 / self.probes_per_second
        n_slots = int(duration / slot_dt)
        bs_ids = self.deployment.bs_ids
        n_bs = len(bs_ids)

        trip_rngs = self.rngs.spawn("trip", trip)
        up = np.zeros((n_slots, n_bs), dtype=bool)
        down = np.zeros((n_slots, n_bs), dtype=bool)
        rssi = np.full((n_slots, n_bs), np.nan)
        positions = np.zeros((n_slots, 2))

        times = np.arange(n_slots) * slot_dt
        for t_idx, t in enumerate(times):
            positions[t_idx] = motion(t)

        for j, bs in enumerate(bs_ids):
            # quantum 0: exact-time memoization only, so the up and
            # down draws (and the RSSI report) at one slot share a
            # single propagation evaluation without changing anything.
            link = LinkStateCache(
                self.link_model(trip, bs, motion), quantum_s=0.0
            )
            up_proc = SteeredGilbertElliott(
                link.loss_prob, rng=trip_rngs.stream("fast-up", bs)
            )
            down_proc = SteeredGilbertElliott(
                link.loss_prob, rng=trip_rngs.stream("fast-down", bs)
            )
            noise = trip_rngs.stream("rssi-noise", bs)
            for t_idx, t in enumerate(times):
                up[t_idx, j] = not up_proc.is_lost(t)
                received = not down_proc.is_lost(t)
                down[t_idx, j] = received
                if received:
                    rssi[t_idx, j] = link.rssi(t) + noise.normal(
                        0.0, rssi_noise_db
                    )
        return ProbeTrace(bs_ids, slot_dt, up, down, rssi, positions)

    def generate_day(self, day, n_trips=10, n_loops=1):
        """Generate the probe traces of one day of shuttle service.

        Trips are indexed globally as ``day * 1000 + trip`` so distinct
        days never share temporal randomness.
        """
        return [
            self.generate_probe_trace(day * 1000 + trip, n_loops=n_loops)
            for trip in range(n_trips)
        ]

    def beacon_log_from_trace(self, trace):
        """Reduce a probe trace to a DieselNet-style beacon log.

        BS probes double as beacons (everything is broadcast), so the
        per-second count of decoded downstream probes is the beacon
        count.
        """
        sps = trace.slots_per_second
        n_secs = trace.n_slots // sps
        down = trace.down[: n_secs * sps].reshape(n_secs, sps, trace.n_bs)
        heard = down.sum(axis=1).astype(int)
        return BeaconLog(trace.bs_ids, heard, expected=sps)

    # ------------------------------------------------------------------
    # Live link table (deployment-style protocol runs)
    # ------------------------------------------------------------------

    def build_link_bank(self, trip, vehicle_position, bs_ids=None,
                        cache_quantum_s=LinkStateCache.DEFAULT_QUANTUM_S,
                        sampling="centre", prefill_s=None):
        """The banked vehicle-BS propagation stack of one trip.

        The bank is a pure function of ``(testbed seed, trip,
        cache_quantum_s, sampling)``: under ``sampling="centre"`` every
        bucket value is sampled at its bucket-centre instant, so a bank
        prefilled to the trip duration can be built once and shared
        read-only across every protocol seed / policy variant that
        replays the same trip (see
        :func:`repro.experiments.common.build_shared_banks`).

        Args:
            trip: trip index (fixes shadowing/gray realizations).
            vehicle_position: callable ``t -> (x, y)``.
            bs_ids: participating BSes (default: the full deployment).
            cache_quantum_s: member-cache time quantum (must be > 0).
            sampling: bucket sampling convention (see
                :class:`~repro.net.propagation.LinkBank`).
            prefill_s: when set, prefill the bank's buckets up to this
                simulated horizon at build time (centre sampling only).
        """
        if not cache_quantum_s or cache_quantum_s <= 0.0:
            raise ValueError("a LinkBank needs a positive cache quantum")
        bs_ids = list(bs_ids if bs_ids is not None
                      else self.deployment.bs_ids)
        links = [self.link_model(trip, bs, vehicle_position)
                 for bs in bs_ids]
        bank = LinkBank(links, quantum_s=cache_quantum_s,
                        sampling=sampling)
        # Provenance, so adopting the bank elsewhere can verify it
        # really is the (testbed, trip, BS set) it claims to be.
        bank.testbed_seed = self.seed
        bank.trip = int(trip)
        bank.bs_ids = tuple(bs_ids)
        if prefill_s is not None:
            bank.prefill(prefill_s)
        return bank

    def build_link_table(self, trip, vehicle_position, bs_ids=None,
                         vehicle_id=VEHICLE_ID,
                         cache_quantum_s=LinkStateCache.DEFAULT_QUANTUM_S,
                         sampling="centre", prefill_s=None, bank=None):
        """Link table for a packet-level protocol run of one trip.

        Vehicle-BS links use the full layered radio model with
        independent burst processes per direction; BS-BS links (used
        for ack overhearing) use static distance-based means with
        burstiness.

        Args:
            cache_quantum_s: time quantum of the per-link
                :class:`~repro.net.propagation.LinkStateCache` that
                memoizes the propagation stack between the two
                directions of a link.  ``0`` caches at exact query
                times only (bitwise identical to the uncached model);
                ``None`` disables the cache entirely.  Positive quanta
                additionally bank all vehicle links into one
                :class:`~repro.net.propagation.LinkBank`, so the N
                per-link misses of a quantum collapse into a single
                vectorized pass.
            sampling: bank bucket sampling convention —
                ``"centre"`` (pure-function buckets, prefillable and
                shareable) or ``"first-query"`` (the historical
                convention, kept bitwise).
            prefill_s: optional prefill horizon (centre sampling only).
            bank: a prebuilt (typically shared, prefilled)
                :class:`~repro.net.propagation.LinkBank` from
                :meth:`build_link_bank` for this same ``(trip,
                bs_ids)``; the vehicle links then wrap the shared bank
                instead of rebuilding the propagation stack.

        The built (or adopted) bank is exposed as ``table.link_bank``
        (``None`` when no bank is in play) so harnesses can report
        prefill cost and sharing separately from run cost.
        """
        bs_ids = list(bs_ids if bs_ids is not None else self.deployment.bs_ids)
        trip_rngs = self.rngs.spawn("trip", trip)
        table = LinkTable()
        if bank is not None:
            provenance = (getattr(bank, "testbed_seed", self.seed),
                          getattr(bank, "trip", trip),
                          tuple(getattr(bank, "bs_ids", bs_ids)))
            if provenance != (self.seed, int(trip), tuple(bs_ids)):
                raise ValueError(
                    f"shared bank was built for (testbed_seed, trip, "
                    f"bs_ids) = {provenance}, not "
                    f"({self.seed}, {int(trip)}, {tuple(bs_ids)})"
                )
            if len(bank.links) != len(bs_ids):
                raise ValueError(
                    "shared bank covers a different basestation set"
                )
            caches = bank.wrap()
        elif cache_quantum_s is None:
            caches = [self.link_model(trip, bs, vehicle_position)
                      for bs in bs_ids]
        elif cache_quantum_s > 0.0:
            bank = self.build_link_bank(
                trip, vehicle_position, bs_ids=bs_ids,
                cache_quantum_s=cache_quantum_s, sampling=sampling,
                prefill_s=prefill_s,
            )
            caches = bank.wrap()
        else:
            caches = [LinkStateCache(self.link_model(trip, bs,
                                                     vehicle_position),
                                     quantum_s=cache_quantum_s)
                      for bs in bs_ids]
        table.link_bank = bank
        for bs, link in zip(bs_ids, caches):
            table.set_link(vehicle_id, bs, SteeredGilbertElliott(
                link.loss_prob, rng=trip_rngs.stream("live-up", bs)))
            table.set_link(bs, vehicle_id, SteeredGilbertElliott(
                link.loss_prob, rng=trip_rngs.stream("live-down", bs)))
        for a in bs_ids:
            for b in bs_ids:
                if a >= b:
                    continue
                loss = 1.0 - self.interbs_reception(a, b)
                table.set_link(a, b, SteeredGilbertElliott(
                    loss, rng=trip_rngs.stream("live-bsbs", a, b)))
                table.set_link(b, a, SteeredGilbertElliott(
                    loss, rng=trip_rngs.stream("live-bsbs", b, a)))
        return table
