"""Beacon logs to link loss rates: the Section 5.1 trace-driven mapping.

The paper's trace-driven simulations instantiate loss rates from beacon
logs as follows:

* "The beacon loss ratio from a BS to the vehicle in each one-second
  interval is used as the packet loss rate from that BS to the vehicle
  and from the vehicle to the BS" — symmetric vehicle links.
* "For inter-BS loss rates, we assume that BS pairs that are never
  simultaneously within the range of a bus cannot reach one another.
  For other pairs, we assign loss ratios between 0 and 1 uniformly at
  random."

This module reproduces that mapping, with an optional burstiness mode
(:class:`~repro.net.channel.SteeredGilbertElliott` steered by the
per-second series) for studies of the i.i.d.-within-a-second assumption
the paper acknowledges.
"""

from repro.net.channel import (
    BernoulliLoss,
    SteeredGilbertElliott,
    TraceDrivenLoss,
)
from repro.net.medium import LinkTable

__all__ = [
    "build_link_table_from_log",
    "interbs_loss_rates",
    "loss_rate_series",
]


def loss_rate_series(log, bs_id):
    """Per-second loss-rate series for one BS from a beacon log."""
    column = log.bs_ids.index(bs_id)
    return log.loss_ratio()[:, column]


def interbs_loss_rates(log, rng, min_heard=1):
    """Inter-BS loss rates per the paper's rule.

    Pairs never co-visible from the vehicle get loss 1.0 (unreachable);
    other pairs draw a uniform loss in [0, 1].  The matrix is symmetric.

    Returns:
        dict mapping ordered pair ``(a, b)`` to loss rate.
    """
    covis = log.covisibility(min_heard=min_heard)
    rates = {}
    ids = log.bs_ids
    for i, a in enumerate(ids):
        for j, b in enumerate(ids):
            if i >= j:
                continue
            loss = rng.uniform(0.0, 1.0) if covis[i, j] else 1.0
            rates[(a, b)] = loss
            rates[(b, a)] = loss
    return rates


def build_link_table_from_log(log, rngs, vehicle_id=0, bursty=False,
                              out_of_range_rate=1.0):
    """Build the packet-level :class:`LinkTable` from a beacon log.

    Args:
        log: a :class:`~repro.testbeds.traces.BeaconLog`.
        rngs: an :class:`~repro.sim.rng.RngRegistry` supplying the
            per-link packet-draw streams and the inter-BS uniform draws.
        vehicle_id: node id of the vehicle.
        bursty: when False (default, the paper's literal methodology)
            vehicle links are i.i.d. within each second; when True the
            per-second series steers a Gilbert-Elliott chain instead.
        out_of_range_rate: loss applied outside the trace span.

    Returns:
        A :class:`~repro.net.medium.LinkTable` covering vehicle<->BS
        links (independent streams per direction, identical rate
        series) and BS<->BS links per the covisibility rule.
    """
    table = LinkTable()
    for bs in log.bs_ids:
        rates = loss_rate_series(log, bs)
        for direction, name in ((vehicle_id, "up"), (bs, "down")):
            rng = rngs.stream("trace-link", bs, name)
            if bursty:
                series = rates.copy()

                def mean_loss(t, series=series):
                    idx = int(t)
                    if 0 <= idx < len(series):
                        return float(series[idx])
                    return out_of_range_rate

                process = SteeredGilbertElliott(mean_loss, rng=rng)
            else:
                process = TraceDrivenLoss(
                    rates, rng=rng, out_of_range_rate=out_of_range_rate
                )
            if name == "up":
                table.set_link(vehicle_id, bs, process)
            else:
                table.set_link(bs, vehicle_id, process)
    pair_rates = interbs_loss_rates(log, rngs.stream("interbs-draws"))
    for (a, b), loss in pair_rates.items():
        table.set_link(a, b, BernoulliLoss(
            min(loss, 1.0), rngs.stream("trace-bsbs", a, b)))
    return table
