"""Testbed environments: VanLAN, DieselNet, and their trace formats.

The paper's results come from two vehicular testbeds: VanLAN (eleven
basestations on the Microsoft campus in Redmond; live deployment) and
DieselNet (buses in Amherst logging beacons from town basestations;
trace-driven simulation).  We do not have the physical testbeds or the
original traces, so this package provides *synthetic* equivalents built
on the radio substrate, generating the same artifacts the paper's
pipeline consumes:

* **probe traces** (:class:`~repro.testbeds.traces.ProbeTrace`) — the
  Section 3.1 methodology: every node broadcasts a 500-byte packet at
  1 Mbps every 100 ms, and all receptions are logged;
* **beacon logs** (:class:`~repro.testbeds.traces.BeaconLog`) — the
  DieselNet methodology: a vehicle logs beacons heard from every
  basestation, reduced to per-second reception counts.

See DESIGN.md section 2 for why this substitution preserves the
behaviours the paper measures.
"""

from repro.testbeds.dieselnet import DieselNetTestbed
from repro.testbeds.layout import Deployment
from repro.testbeds.lossmap import (
    build_link_table_from_log,
    interbs_loss_rates,
    loss_rate_series,
)
from repro.testbeds.traces import BeaconLog, ProbeTrace
from repro.testbeds.vanlan import VanLanTestbed

__all__ = [
    "BeaconLog",
    "Deployment",
    "DieselNetTestbed",
    "ProbeTrace",
    "VanLanTestbed",
    "build_link_table_from_log",
    "interbs_loss_rates",
    "loss_rate_series",
]
