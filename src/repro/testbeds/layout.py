"""Deployment geometry: basestation placements and bounds."""

import math

from repro.net.mobility import StationaryPosition

__all__ = ["Deployment"]


class Deployment:
    """A set of named basestations in a bounded planar region.

    Attributes:
        name: human-readable deployment name.
        bs_positions: mapping bs_id -> (x, y) in metres.
        bounds: (width, height) of the region in metres.
    """

    def __init__(self, name, bs_positions, bounds):
        self.name = name
        self.bs_positions = {int(k): (float(x), float(y))
                             for k, (x, y) in bs_positions.items()}
        self.bounds = (float(bounds[0]), float(bounds[1]))

    def cache_token(self):
        """Identity for content-addressed caching (see repro.store)."""
        return ("Deployment", self.name,
                sorted(self.bs_positions.items()), self.bounds)

    @property
    def bs_ids(self):
        return sorted(self.bs_positions.keys())

    @property
    def n_bs(self):
        return len(self.bs_positions)

    def position_of(self, bs_id):
        """Return a position callable for the given basestation."""
        x, y = self.bs_positions[bs_id]
        return StationaryPosition(x, y)

    def distance(self, bs_a, bs_b):
        """Distance between two basestations, metres."""
        xa, ya = self.bs_positions[bs_a]
        xb, yb = self.bs_positions[bs_b]
        return math.hypot(xa - xb, ya - yb)

    def subset(self, bs_ids):
        """A new deployment restricted to the given basestations."""
        missing = set(bs_ids) - set(self.bs_positions)
        if missing:
            raise KeyError(f"unknown basestations: {sorted(missing)}")
        positions = {b: self.bs_positions[b] for b in bs_ids}
        return Deployment(f"{self.name}/subset{len(positions)}", positions,
                          self.bounds)

    def __repr__(self):
        w, h = self.bounds
        return (f"Deployment({self.name!r}, {self.n_bs} BSes, "
                f"{w:.0f}x{h:.0f} m)")
