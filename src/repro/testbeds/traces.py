"""Trace record formats and (de)serialization.

Two artifact types drive every experiment in the paper:

* :class:`ProbeTrace` — the Section 3.1 broadcast-probe methodology on
  VanLAN: "each BS and vehicle broadcasts a 500-byte packet at 1 Mbps
  every 100 ms ... nodes log all correctly decoded packets and
  beacons."  A probe trace records, per 100 ms slot and per BS, whether
  the vehicle's probe reached the BS (upstream), whether the BS's probe
  reached the vehicle (downstream), and the RSSI of received beacons.
* :class:`BeaconLog` — the DieselNet methodology (Section 2.2): a
  vehicle logs beacons heard from nearby BSes; the analysis uses
  per-second reception counts per BS.

Both formats serialize to ``.npz`` so generated traces can be reused
across experiments, mirroring the paper's published trace archive
(traces.cs.umass.edu).
"""

import numpy as np

__all__ = ["BeaconLog", "ProbeTrace"]


class ProbeTrace:
    """Broadcast-probe reception trace for one vehicle trip.

    Attributes:
        bs_ids: list of basestation ids, defining column order.
        slot_dt: probe interval in seconds (0.1 in the paper).
        up: bool array ``[n_slots, n_bs]``; ``up[t, j]`` is True when
            the vehicle's probe in slot *t* was decoded by BS *j*.
        down: bool array, same shape, for the BS-to-vehicle direction.
        rssi: float array, RSSI (dBm) of the beacon the vehicle decoded
            from BS *j* in slot *t*; ``nan`` when nothing was decoded.
        positions: float array ``[n_slots, 2]`` of vehicle coordinates.
        t0: absolute start time of the trip (seconds).
    """

    def __init__(self, bs_ids, slot_dt, up, down, rssi, positions, t0=0.0):
        self.bs_ids = [int(b) for b in bs_ids]
        self.slot_dt = float(slot_dt)
        self.up = np.asarray(up, dtype=bool)
        self.down = np.asarray(down, dtype=bool)
        self.rssi = np.asarray(rssi, dtype=float)
        self.positions = np.asarray(positions, dtype=float)
        self.t0 = float(t0)
        n_slots, n_bs = self.up.shape
        if self.down.shape != (n_slots, n_bs):
            raise ValueError("up/down shape mismatch")
        if self.rssi.shape != (n_slots, n_bs):
            raise ValueError("rssi shape mismatch")
        if len(self.bs_ids) != n_bs:
            raise ValueError("bs_ids length does not match columns")
        if self.positions.shape != (n_slots, 2):
            raise ValueError("positions shape mismatch")

    @property
    def n_slots(self):
        return self.up.shape[0]

    @property
    def n_bs(self):
        return self.up.shape[1]

    @property
    def duration(self):
        return self.n_slots * self.slot_dt

    @property
    def slots_per_second(self):
        return int(round(1.0 / self.slot_dt))

    def column(self, bs_id):
        """Column index of a basestation id."""
        return self.bs_ids.index(bs_id)

    def subset(self, bs_ids):
        """Trace restricted to the given basestations (column slice)."""
        cols = [self.column(b) for b in bs_ids]
        return ProbeTrace(
            bs_ids=[self.bs_ids[c] for c in cols],
            slot_dt=self.slot_dt,
            up=self.up[:, cols],
            down=self.down[:, cols],
            rssi=self.rssi[:, cols],
            positions=self.positions,
            t0=self.t0,
        )

    def per_second_reception(self):
        """Per-second reception ratios.

        Returns:
            ``(up_rr, down_rr)`` — float arrays ``[n_secs, n_bs]`` of
            per-second reception ratios; trailing partial seconds are
            dropped.
        """
        sps = self.slots_per_second
        n_secs = self.n_slots // sps
        up = self.up[: n_secs * sps].reshape(n_secs, sps, self.n_bs)
        down = self.down[: n_secs * sps].reshape(n_secs, sps, self.n_bs)
        return up.mean(axis=1), down.mean(axis=1)

    def per_second_rssi(self):
        """Per-second mean RSSI of decoded beacons (nan when none)."""
        sps = self.slots_per_second
        n_secs = self.n_slots // sps
        rssi = self.rssi[: n_secs * sps].reshape(n_secs, sps, self.n_bs)
        with np.errstate(invalid="ignore"):
            return np.nanmean(rssi, axis=1)

    def save(self, path):
        np.savez_compressed(
            path,
            bs_ids=np.asarray(self.bs_ids),
            slot_dt=self.slot_dt,
            up=self.up,
            down=self.down,
            rssi=self.rssi,
            positions=self.positions,
            t0=self.t0,
        )

    @classmethod
    def load(cls, path):
        with np.load(path) as data:
            return cls(
                bs_ids=data["bs_ids"].tolist(),
                slot_dt=float(data["slot_dt"]),
                up=data["up"],
                down=data["down"],
                rssi=data["rssi"],
                positions=data["positions"],
                t0=float(data["t0"]),
            )

    def __repr__(self):
        return (f"ProbeTrace({self.n_bs} BSes, {self.n_slots} slots, "
                f"{self.duration:.0f} s)")


class BeaconLog:
    """Per-second beacon reception counts for one vehicle run.

    Attributes:
        bs_ids: basestation ids defining column order.
        heard: int array ``[n_secs, n_bs]`` — beacons decoded.
        expected: beacons each BS nominally sent per second.
        t0: absolute start time of the log (seconds).
    """

    def __init__(self, bs_ids, heard, expected, t0=0.0):
        self.bs_ids = [int(b) for b in bs_ids]
        self.heard = np.asarray(heard, dtype=int)
        self.expected = int(expected)
        self.t0 = float(t0)
        if self.heard.ndim != 2 or self.heard.shape[1] != len(self.bs_ids):
            raise ValueError("heard array shape mismatch")
        if self.expected <= 0:
            raise ValueError("expected beacons per second must be positive")
        if (self.heard < 0).any() or (self.heard > self.expected).any():
            raise ValueError("beacon counts outside [0, expected]")

    @property
    def n_secs(self):
        return self.heard.shape[0]

    @property
    def n_bs(self):
        return self.heard.shape[1]

    def reception_ratio(self):
        """Per-second beacon reception ratio, ``[n_secs, n_bs]``."""
        return self.heard / float(self.expected)

    def loss_ratio(self):
        """Per-second beacon loss ratio (the Section 5.1 quantity)."""
        return 1.0 - self.reception_ratio()

    def visible_counts(self, min_ratio=None):
        """Number of BSes heard per second.

        Args:
            min_ratio: when ``None``, a BS counts if at least one beacon
                was heard (Figure 5a); otherwise it counts when at least
                ``min_ratio`` of its beacons were heard (Figure 5b uses
                0.5).
        """
        if min_ratio is None:
            return (self.heard >= 1).sum(axis=1)
        return (self.reception_ratio() >= min_ratio).sum(axis=1)

    def covisibility(self, min_heard=1):
        """Boolean matrix: were two BSes ever heard in the same second?

        The paper uses this to decide inter-BS reachability: "BS pairs
        that are never simultaneously within the range of a bus cannot
        reach one another" (Section 5.1).
        """
        visible = self.heard >= min_heard
        return (visible[:, :, None] & visible[:, None, :]).any(axis=0)

    def save(self, path):
        np.savez_compressed(
            path,
            bs_ids=np.asarray(self.bs_ids),
            heard=self.heard,
            expected=self.expected,
            t0=self.t0,
        )

    @classmethod
    def load(cls, path):
        with np.load(path) as data:
            return cls(
                bs_ids=data["bs_ids"].tolist(),
                heard=data["heard"],
                expected=int(data["expected"]),
                t0=float(data["t0"]),
            )

    def __repr__(self):
        return f"BeaconLog({self.n_bs} BSes, {self.n_secs} s)"
