"""The synthetic DieselNet testbed.

DieselNet (Section 2.2) is a bus testbed in Amherst, MA.  The paper
profiles two 802.11 channels for three days each: the instrumented bus
logs every beacon heard from nearby basestations, and the analysis is
restricted to BSes in the core of town that are visible on all three
days — 10 BSes on Channel 1 and 14 on Channel 6, roughly half belonging
to the town mesh and half to shops.

We regenerate that artifact: a town-core street grid, BSes split
between a planned mesh (spread out) and shop clusters (along the main
street), bus routes crossing the core, and per-second beacon logs
produced by the same layered radio model as VanLAN.  The output is a
:class:`~repro.testbeds.traces.BeaconLog` per profiling day, which the
trace-driven pipeline (:mod:`repro.testbeds.lossmap`) turns into link
loss rates exactly as Section 5.1 prescribes.
"""

import numpy as np

from repro.net.mobility import Route, VehicleMotion
from repro.net.propagation import (
    GrayPeriodProcess,
    LinkModel,
    RadioProfile,
    Shadowing,
    SpatialField,
)
from repro.sim.rng import RngRegistry
from repro.testbeds.layout import Deployment
from repro.testbeds.traces import BeaconLog
from repro.testbeds.vanlan import VEHICLE_ID

__all__ = ["DieselNetTestbed", "dieselnet_deployment"]

#: Town-core bounds, metres.
_BOUNDS = (900.0, 700.0)

#: Channel 1: 10 BSes (5 mesh spread over the core + 5 shops downtown).
_CH1_POSITIONS = {
    1: (150.0, 180.0),   # mesh
    2: (420.0, 160.0),   # mesh
    3: (700.0, 200.0),   # mesh
    4: (300.0, 420.0),   # mesh
    5: (620.0, 470.0),   # mesh
    6: (380.0, 300.0),   # shop (main street)
    7: (430.0, 310.0),   # shop
    8: (490.0, 295.0),   # shop
    9: (545.0, 305.0),   # shop
    10: (600.0, 290.0),  # shop
}

#: Channel 6: 14 BSes (7 mesh + 7 shops).
_CH6_POSITIONS = {
    1: (120.0, 150.0),   # mesh
    2: (350.0, 130.0),   # mesh
    3: (610.0, 150.0),   # mesh
    4: (820.0, 250.0),   # mesh
    5: (180.0, 430.0),   # mesh
    6: (450.0, 520.0),   # mesh
    7: (720.0, 480.0),   # mesh
    8: (330.0, 290.0),   # shop (main street)
    9: (385.0, 305.0),   # shop
    10: (440.0, 290.0),  # shop
    11: (500.0, 310.0),  # shop
    12: (560.0, 295.0),  # shop
    13: (615.0, 305.0),  # shop
    14: (665.0, 290.0),  # shop
}

#: Bus tour through the core: main street out, side streets back.
_BUS_WAYPOINTS = [
    (30.0, 300.0),
    (250.0, 295.0),
    (500.0, 305.0),
    (750.0, 295.0),
    (870.0, 300.0),
    (860.0, 500.0),
    (600.0, 520.0),
    (300.0, 510.0),
    (120.0, 480.0),
    (60.0, 320.0),
    (150.0, 150.0),
    (450.0, 120.0),
    (760.0, 160.0),
    (870.0, 300.0),
]


def dieselnet_deployment(channel):
    """The core-of-town deployment for a profiling channel (1 or 6)."""
    if channel == 1:
        return Deployment("DieselNet-Ch1", _CH1_POSITIONS, _BOUNDS)
    if channel == 6:
        return Deployment("DieselNet-Ch6", _CH6_POSITIONS, _BOUNDS)
    raise ValueError(f"DieselNet was profiled on channels 1 and 6, "
                     f"not {channel}")


class DieselNetTestbed:
    """Synthetic DieselNet: bus tours and per-second beacon logs.

    Args:
        channel: 1 or 6 (selects the BS population, as in the paper).
        seed: root seed for all stochastic processes.
        profile: radio profile; the default uses slightly stronger
            shadowing than VanLAN (a town with street canyons, not a
            campus).
        bus_speed_mps: cruise speed (buses: ~30 km/h with stops).
        beacons_per_second: nominal AP beacon rate (10/s ~= the 802.11
            102.4 ms beacon interval).
    """

    def __init__(self, channel=1, seed=0, profile=None, bus_speed_mps=8.3,
                 beacons_per_second=10):
        self.channel = int(channel)
        self.seed = int(seed)
        self.rngs = RngRegistry(seed).spawn("dieselnet", channel)
        self.deployment = dieselnet_deployment(channel)
        # Calibrated so the Table 2 coordination statistics land in the
        # paper's regime (auxiliary overhearing A2 ~ 2.5-3.5, ViFi
        # false negatives ~ 15%); see EXPERIMENTS.md.
        self.profile = profile or RadioProfile(
            path_loss_exponent=2.9,
            decode_mid_dbm=-90.0,
            shadowing_sigma_db=6.0,
            max_reception=0.9,
            gray_rate_per_s=1.0 / 40.0,
        )
        self.bus_speed_mps = float(bus_speed_mps)
        self.beacons_per_second = int(beacons_per_second)
        self._spatial = {
            bs: SpatialField(
                sigma_db=4.5,
                correlation_m=60.0,
                rng=self.rngs.fresh("spatial", bs),
            )
            for bs in self.deployment.bs_ids
        }

    def cache_token(self):
        """Identity for content-addressed caching (see repro.store)."""
        return ("DieselNetTestbed", self.channel, self.seed,
                self.bus_speed_mps, self.beacons_per_second,
                self.profile, self.deployment)

    def make_route(self, n_tours=1):
        """A bus tour (optionally repeated) with stops on main street."""
        waypoints = list(_BUS_WAYPOINTS)
        for _ in range(int(n_tours) - 1):
            waypoints.extend(_BUS_WAYPOINTS[1:])
        return Route(waypoints, speed_mps=self.bus_speed_mps,
                     stop_durations={1: 8.0, 3: 8.0})

    def bus_motion(self, n_tours=1):
        return VehicleMotion(self.make_route(n_tours))

    def link_model(self, day, bs_id, vehicle_position):
        """Layered link model for one profiling day."""
        day_rngs = self.rngs.spawn("day", day)
        shadowing = Shadowing(
            sigma_db=self.profile.shadowing_sigma_db,
            tau_s=self.profile.shadowing_tau_s,
            rng=day_rngs.stream("shadow", bs_id),
        )
        gray = GrayPeriodProcess(
            rate_per_s=self.profile.gray_rate_per_s,
            mean_duration_s=self.profile.gray_duration_s,
            rng=day_rngs.stream("gray", bs_id),
        )
        return LinkModel(
            profile=self.profile,
            position_a=self.deployment.position_of(bs_id),
            position_b=vehicle_position,
            shadowing=shadowing,
            gray=gray,
            spatial=self._spatial[bs_id],
        )

    def generate_beacon_log(self, day, n_tours=1):
        """One profiling day: per-second beacon counts per BS.

        The bus logs beacons on a fixed channel ("the profiling channel
        was fixed so that beacons are not lost while scanning",
        Section 2.2); each second's count is binomial in the nominal
        beacon rate with the instantaneous link reception probability.
        """
        motion = self.bus_motion(n_tours)
        n_secs = int(motion.route.duration)
        bs_ids = self.deployment.bs_ids
        heard = np.zeros((n_secs, len(bs_ids)), dtype=int)
        day_rngs = self.rngs.spawn("day", day)
        for j, bs in enumerate(bs_ids):
            link = self.link_model(day, bs, motion)
            rng = day_rngs.stream("beacons", bs)
            for sec in range(n_secs):
                p = link.reception_prob(sec + 0.5)
                heard[sec, j] = rng.binomial(self.beacons_per_second, p)
        return BeaconLog(bs_ids, heard, expected=self.beacons_per_second)

    def generate_profiling_days(self, n_days=3, n_tours=1):
        """The paper's three profiling days of beacon logs."""
        return [self.generate_beacon_log(day, n_tours=n_tours)
                for day in range(n_days)]

    @property
    def vehicle_id(self):
        return VEHICLE_ID
