"""A small deterministic discrete-event simulator.

The engine is a binary-heap scheduler.  Events scheduled for the same
instant fire in insertion order (a monotone sequence number breaks
ties), which keeps runs deterministic regardless of callback identity.

Typical use::

    sim = Simulator()
    sim.schedule(1.5, node.on_timer)
    sim.run(until=300.0)

Handles returned by :meth:`Simulator.schedule` can cancel a pending
event; cancellation is O(1) (the event is tombstoned and skipped when
popped), which suits protocols that arm and disarm many timers, such as
ViFi's retransmission and relay timers.  The simulator keeps a live
(non-cancelled) event count so :attr:`Simulator.pending` is O(1), and
compacts the heap whenever tombstones outnumber live events, so
cancel-heavy runs do not bloat the queue.

Hot paths that never cancel (frame attempts/resolutions, slotted
beacon batches) can use :meth:`Simulator.schedule_fire_at`, which skips
the handle allocation entirely and stores a raw tuple on the heap.
"""

import heapq
import itertools
import math

__all__ = ["EventHandle", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduling errors, e.g. scheduling into the past."""


class EventHandle:
    """Handle to a scheduled event; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_owner")

    def __init__(self, time, seq, callback, args, owner=None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._owner = owner

    def cancel(self):
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None and self.callback is not None:
            self._owner._on_cancel()

    @property
    def active(self):
        """True while the event is neither cancelled nor fired."""
        return not self.cancelled and self.callback is not None

    def __lt__(self, other):
        # Not used by the event loop (the heap orders raw (time, seq,
        # handle) tuples); kept so handles sort sensibly for callers.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic event loop with a floating-point clock (seconds)."""

    #: Heaps smaller than this are never compacted; below this size the
    #: rebuild costs more than the tombstones it reclaims.
    _COMPACT_MIN = 64

    def __init__(self, start_time=0.0):
        #: Current simulation time in seconds.  A plain attribute — the
        #: clock is read on every hot-path callback, and the property
        #: descriptor overhead was measurable; treat as read-only.
        self.now = float(start_time)
        # Heap of (time, seq, EventHandle): raw tuples keep heap sifts
        # in C (seq is unique, so the handle itself is never compared).
        self._queue = []
        self._seq = itertools.count()
        self._running = False
        self._live = 0
        self.events_processed = 0

    def schedule(self, delay, callback, *args):
        """Schedule *callback(*args)* to fire *delay* seconds from now.

        Returns an :class:`EventHandle` usable for cancellation.  A zero
        delay fires after currently queued same-time events.
        """
        if delay < 0 or not math.isfinite(delay):
            raise SimulationError(f"invalid delay {delay!r}")
        time = self.now + delay
        seq = next(self._seq)
        handle = EventHandle(time, seq, callback, args, owner=self)
        heapq.heappush(self._queue, (time, seq, handle))
        self._live += 1
        return handle

    def schedule_at(self, time, callback, *args):
        """Schedule *callback(*args)* at absolute simulation *time*."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, now is {self.now:.6f}"
            )
        time = float(time)
        seq = next(self._seq)
        handle = EventHandle(time, seq, callback, args, owner=self)
        heapq.heappush(self._queue, (time, seq, handle))
        self._live += 1
        return handle

    def schedule_fire_at(self, time, callback, *args):
        """Schedule a fire-and-forget event at absolute *time*.

        No :class:`EventHandle` is created, so the event cannot be
        cancelled — in exchange the hot paths that never cancel (frame
        attempts and resolutions, slotted beacon emissions) skip an
        object allocation per event.  The queue stores a raw
        ``(time, seq, None, callback, args)`` tuple; ``seq`` is unique,
        so heap ordering never compares past it.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, now is {self.now:.6f}"
            )
        heapq.heappush(
            self._queue,
            (float(time), next(self._seq), None, callback, args),
        )
        self._live += 1

    def schedule_fire(self, delay, callback, *args):
        """Relative-delay twin of :meth:`schedule_fire_at`.

        For periodic bookkeeping that never cancels (per-second node
        ticks, gateway wire latencies): the handle allocation of
        :meth:`schedule` is skipped; times, sequence numbers and firing
        order are identical to the handle-bearing call.
        """
        if delay < 0 or not math.isfinite(delay):
            raise SimulationError(f"invalid delay {delay!r}")
        heapq.heappush(
            self._queue,
            (self.now + delay, next(self._seq), None, callback, args),
        )
        self._live += 1

    def _on_cancel(self):
        """A queued event was tombstoned; compact if they dominate."""
        self._live -= 1
        queued = len(self._queue)
        if (queued >= self._COMPACT_MIN
                and queued - self._live > queued // 2):
            self._compact()

    def _compact(self):
        """Drop tombstoned events and rebuild the heap in O(n).

        Mutates the queue in place so references held by a running
        event loop stay valid.
        """
        self._queue[:] = [e for e in self._queue
                          if e[2] is None or not e[2].cancelled]
        heapq.heapify(self._queue)

    def run(self, until=None, max_events=None):
        """Run events in order until the queue drains or limits hit.

        Args:
            until: stop once the next event is strictly later than this
                time; the clock is then advanced to *until*.
            max_events: optional safety cap on processed events.

        Returns:
            Number of events processed during this call.
        """
        processed = 0
        self._running = True
        queue = self._queue  # _compact mutates in place; safe to hoist
        heappop = heapq.heappop
        try:
            while queue:
                if max_events is not None and processed >= max_events:
                    break
                item = queue[0]
                head = item[2]
                if head is not None and head.cancelled:
                    heappop(queue)
                    continue
                time = item[0]
                if until is not None and time > until:
                    break
                heappop(queue)
                self._live -= 1
                self.now = time
                if head is None:
                    callback = item[3]
                    args = item[4]
                else:
                    callback, args = head.callback, head.args
                    head.callback = None
                    head.args = None
                callback(*args)
                processed += 1
                self.events_processed += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = float(until)
        return processed

    def step(self):
        """Process exactly one pending event.  Returns False if idle."""
        while self._queue:
            item = heapq.heappop(self._queue)
            head = item[2]
            if head is not None and head.cancelled:
                continue
            self._live -= 1
            self.now = item[0]
            if head is None:
                callback = item[3]
                args = item[4]
            else:
                callback, args = head.callback, head.args
                head.callback = None
                head.args = None
            callback(*args)
            self.events_processed += 1
            return True
        return False

    @property
    def pending(self):
        """Number of queued, non-cancelled events.  O(1)."""
        return self._live

    def peek_time(self):
        """Time of the next live event, or ``None`` when idle."""
        queue = self._queue
        while queue and queue[0][2] is not None and queue[0][2].cancelled:
            heapq.heappop(queue)
        return queue[0][0] if queue else None

    def __repr__(self):
        return f"Simulator(now={self.now:.6f}, pending={self.pending})"
