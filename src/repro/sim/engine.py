"""A small deterministic discrete-event simulator.

The engine is a binary-heap scheduler.  Events scheduled for the same
instant fire in insertion order (a monotone sequence number breaks
ties), which keeps runs deterministic regardless of callback identity.

Typical use::

    sim = Simulator()
    sim.schedule(1.5, node.on_timer)
    sim.run(until=300.0)

Handles returned by :meth:`Simulator.schedule` can cancel a pending
event; cancellation is O(1) (the event is tombstoned and skipped when
popped), which suits protocols that arm and disarm many timers, such as
ViFi's retransmission and relay timers.
"""

import heapq
import itertools
import math

__all__ = ["EventHandle", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduling errors, e.g. scheduling into the past."""


class EventHandle:
    """Handle to a scheduled event; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time, seq, callback, args):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    @property
    def active(self):
        """True while the event is neither cancelled nor fired."""
        return not self.cancelled and self.callback is not None

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic event loop with a floating-point clock (seconds)."""

    def __init__(self, start_time=0.0):
        self._now = float(start_time)
        self._queue = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0

    @property
    def now(self):
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay, callback, *args):
        """Schedule *callback(*args)* to fire *delay* seconds from now.

        Returns an :class:`EventHandle` usable for cancellation.  A zero
        delay fires after currently queued same-time events.
        """
        if delay < 0 or not math.isfinite(delay):
            raise SimulationError(f"invalid delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time, callback, *args):
        """Schedule *callback(*args)* at absolute simulation *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, now is {self._now:.6f}"
            )
        handle = EventHandle(float(time), next(self._seq), callback, args)
        heapq.heappush(self._queue, handle)
        return handle

    def run(self, until=None, max_events=None):
        """Run events in order until the queue drains or limits hit.

        Args:
            until: stop once the next event is strictly later than this
                time; the clock is then advanced to *until*.
            max_events: optional safety cap on processed events.

        Returns:
            Number of events processed during this call.
        """
        processed = 0
        self._running = True
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = head.time
                callback, args = head.callback, head.args
                head.callback = None
                head.args = None
                callback(*args)
                processed += 1
                self.events_processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = float(until)
        return processed

    def step(self):
        """Process exactly one pending event.  Returns False if idle."""
        while self._queue:
            head = heapq.heappop(self._queue)
            if head.cancelled:
                continue
            self._now = head.time
            callback, args = head.callback, head.args
            head.callback = None
            head.args = None
            callback(*args)
            self.events_processed += 1
            return True
        return False

    @property
    def pending(self):
        """Number of queued, non-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def peek_time(self):
        """Time of the next live event, or ``None`` when idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def __repr__(self):
        return f"Simulator(now={self._now:.6f}, pending={self.pending})"
