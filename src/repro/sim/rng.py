"""Named, seeded random-number streams.

Every stochastic component in the reproduction (channel fades, shadowing,
relay coin flips, trace generation, ...) draws from its own named stream.
Streams are derived deterministically from a root seed and a string name,
so an experiment is reproducible bit-for-bit given its seed, and adding a
new consumer of randomness does not perturb existing streams.
"""

import hashlib

import numpy as np

__all__ = ["BufferedUniforms", "RngRegistry", "derive_seed"]


def derive_seed(root_seed, name):
    """Derive a child seed from *root_seed* and a string *name*.

    The derivation hashes the pair with SHA-256, so it is stable across
    Python versions and processes (unlike the builtin ``hash``).

    Args:
        root_seed: integer root seed of the experiment.
        name: stream name, e.g. ``"channel/bs3/vehicle"``.

    Returns:
        A non-negative integer suitable for :class:`numpy.random.SeedSequence`.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class BufferedUniforms:
    """Serve uniform [0, 1) draws from pre-drawn numpy blocks.

    A scalar ``Generator.random()`` call costs roughly a microsecond of
    numpy dispatch overhead; drawing a block and serving from it
    amortizes that across ``block`` draws.  For numpy's bit generators
    ``rng.random(n)`` consumes exactly the same underlying stream as
    ``n`` scalar calls, so buffering is bit-for-bit transparent —
    *provided the wrapped generator has no other consumers*.  When the
    generator is shared (e.g. a Gilbert-Elliott chain drawing holding
    times from the same stream), buffering reorders draws relative to
    the unbuffered interleaving: still a valid i.i.d. uniform sequence,
    but not the identical one.

    Args:
        rng: the :class:`numpy.random.Generator` to draw from.
        block: draws per refill; 1 disables buffering.
    """

    __slots__ = ("rng", "block", "_buf", "_i")

    def __init__(self, rng, block=64):
        self.rng = rng
        self.block = max(int(block), 1)
        self._buf = ()
        self._i = 0

    def next(self):
        """The next uniform draw as a python float."""
        i = self._i
        if i >= len(self._buf):
            # tolist() converts to python floats once per block, so the
            # hot path never pays numpy scalar boxing.
            self._buf = self.rng.random(self.block).tolist()
            i = 0
        self._i = i + 1
        return self._buf[i]


class RngRegistry:
    """Factory for deterministic, independent RNG streams.

    Example::

        rngs = RngRegistry(seed=7)
        fade = rngs.stream("channel", "bs1", "vehicle")
        coin = rngs.stream("relay", "bs2")

    The same ``(seed, names)`` pair always yields a generator producing
    the same sequence; distinct names yield independent streams.
    """

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, *names):
        """Return the :class:`numpy.random.Generator` for a named stream.

        Repeated calls with the same names return the *same* generator
        object, so consumers share a stream's state when they share its
        name.
        """
        key = "/".join(str(n) for n in names)
        if key not in self._streams:
            child = np.random.SeedSequence(derive_seed(self.seed, key))
            self._streams[key] = np.random.default_rng(child)
        return self._streams[key]

    def fresh(self, *names):
        """Return a *new* generator for the named stream.

        Unlike :meth:`stream`, the generator is not cached: two calls
        return independent generator objects seeded identically.  Useful
        for replaying a stochastic process from its start.
        """
        key = "/".join(str(n) for n in names)
        child = np.random.SeedSequence(derive_seed(self.seed, key))
        return np.random.default_rng(child)

    def spawn(self, *names):
        """Return a child registry whose root is scoped by *names*.

        ``registry.spawn("trial", 3).stream("x")`` is the same stream as
        ``registry.stream("trial", 3, "x")`` in spirit but lets a
        component own a private namespace without threading prefixes.
        """
        key = "/".join(str(n) for n in names)
        return RngRegistry(derive_seed(self.seed, key))
