"""Deterministic fault injection for protocol runs.

ViFi's value proposition is masking disruption, yet the nominal
simulation only ever exercises a healthy deployment: basestations never
go dark, the wired backplane never partitions, and beacons are lost
only by the channel model.  This module injects infrastructure faults
— the regime "Wi-Fi Assist" (PAPERS.md) identifies as dominating real
vehicular WiFi sessions — without perturbing a single draw of the
nominal stochastic processes:

* every fault arrival is drawn from its **own** named RNG namespace
  (``RngRegistry(seed).spawn("faults")``), disjoint by construction
  from the ``"protocol"`` namespace the medium, relay coins and beacon
  phases use, so a faulted run and a nominal run share the identical
  channel/protocol realization;
* injection happens purely through **flag flips** scheduled as
  fire-and-forget simulator events — toggling a flag consumes no
  randomness, so two runs with the same ``(config, seed)`` are
  bit-for-bit identical;
* with ``faults=None`` (the default everywhere) nothing is built,
  scheduled, or checked beyond one predictable attribute read, keeping
  the committed digest anchors bitwise.

Fault kinds
-----------

``bs-outage``
    A basestation's radio dies for an interval: it stops beaconing,
    receiving, acking and transmitting over the air.  Its *wired* side
    stays alive — an upstream relay arriving over the backplane is
    still forwarded to the gateway (radio dead, ethernet fine), which
    is exactly the partial-failure regime ViFi's source-retransmission
    fallback has to mask.

``partition``
    A basestation falls off the wired backplane: relays, salvage
    requests and salvage payloads to or from it are silently dropped
    (and counted).  The protocol's recovery path is end-to-end
    retransmission by the source.

``latency-spike``
    The backplane's one-way latency is multiplied for an interval
    (congested or rerouted wired path).

``beacon-burst``
    A correlated burst: every node's beacon *emissions* are suppressed
    for the interval (antenna-level interference).  Due chains keep
    advancing — and keep consuming their jitter draws — so the nominal
    beacon schedule after the burst is unchanged.

``vehicle-reset``
    The vehicle's radio resets (driver power-cycle, firmware watchdog):
    same gating as a BS outage, applied to the vehicle node.

Schedules are non-overlapping per (kind, target) by construction: the
next arrival is drawn from the end of the previous fault, so flag flips
never need reference counting.
"""

from collections import Counter
from dataclasses import dataclass, replace

from repro.sim.rng import RngRegistry

__all__ = ["FaultConfig", "FaultEvent", "FaultPlane", "FaultSchedule"]


@dataclass(frozen=True)
class FaultConfig:
    """Fault intensities: arrival rates (events/minute/target) + durations.

    A rate of 0 disables that fault kind; the default config disables
    everything.  Rates are per target (per BS for outages/partitions,
    global for latency spikes and beacon bursts), with mean
    exponentially-distributed gaps of ``60 / rate`` seconds between a
    fault's end and the next arrival.
    """

    bs_outage_rate: float = 0.0
    bs_outage_duration_s: float = 10.0
    partition_rate: float = 0.0
    partition_duration_s: float = 10.0
    latency_spike_rate: float = 0.0
    latency_spike_duration_s: float = 5.0
    latency_spike_multiplier: float = 20.0
    beacon_burst_rate: float = 0.0
    beacon_burst_duration_s: float = 1.0
    vehicle_reset_rate: float = 0.0
    vehicle_reset_duration_s: float = 2.0

    def scaled(self, intensity):
        """This config with every rate multiplied by *intensity*.

        Durations are untouched: intensity sweeps vary how *often*
        faults strike, which keeps the per-fault recovery dynamics
        comparable across sweep points.
        """
        factor = float(intensity)
        if factor < 0.0:
            raise ValueError("intensity must be non-negative")
        return replace(
            self,
            bs_outage_rate=self.bs_outage_rate * factor,
            partition_rate=self.partition_rate * factor,
            latency_spike_rate=self.latency_spike_rate * factor,
            beacon_burst_rate=self.beacon_burst_rate * factor,
            vehicle_reset_rate=self.vehicle_reset_rate * factor,
        )

    def any_enabled(self):
        return any((
            self.bs_outage_rate, self.partition_rate,
            self.latency_spike_rate, self.beacon_burst_rate,
            self.vehicle_reset_rate,
        ))


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``[start, end)`` against one target."""

    kind: str
    target: object  # BS id, vehicle id, or None for global faults
    start: float
    end: float


class FaultSchedule:
    """A deterministic list of fault events for one protocol run.

    Args:
        config: the :class:`FaultConfig` intensities.
        duration_s: schedule horizon (faults starting later are never
            drawn).
        bs_ids: basestations eligible for outages and partitions.
        vehicle_id: the vehicle node id (for resets).
        seed: root seed; the schedule draws from
            ``RngRegistry(seed).spawn("faults")`` — a namespace no
            nominal component touches, so the same *seed* drives both
            the usual protocol streams and an independent fault plan.

    The same ``(config, duration_s, bs_ids, vehicle_id, seed)`` always
    produces the identical event list.
    """

    def __init__(self, config, duration_s, bs_ids, vehicle_id=0, seed=0):
        self.config = config
        self.duration_s = float(duration_s)
        self.bs_ids = tuple(bs_ids)
        self.vehicle_id = vehicle_id
        self.seed = int(seed)
        rngs = RngRegistry(self.seed).spawn("faults")
        events = []
        for bs in self.bs_ids:
            events += self._draw(
                rngs.stream("bs-outage", bs), "bs-outage", bs,
                config.bs_outage_rate, config.bs_outage_duration_s,
            )
            events += self._draw(
                rngs.stream("partition", bs), "partition", bs,
                config.partition_rate, config.partition_duration_s,
            )
        events += self._draw(
            rngs.stream("latency-spike"), "latency-spike", None,
            config.latency_spike_rate, config.latency_spike_duration_s,
        )
        events += self._draw(
            rngs.stream("beacon-burst"), "beacon-burst", None,
            config.beacon_burst_rate, config.beacon_burst_duration_s,
        )
        events += self._draw(
            rngs.stream("vehicle-reset"), "vehicle-reset", vehicle_id,
            config.vehicle_reset_rate, config.vehicle_reset_duration_s,
        )
        # Stable total order (start, kind, target-repr) so installation
        # and any same-instant simulator ties are deterministic.
        events.sort(key=lambda e: (e.start, e.kind, repr(e.target)))
        self.events = tuple(events)

    def _draw(self, rng, kind, target, rate, duration):
        """Poisson arrivals of fixed-length faults, capped at horizon."""
        if rate <= 0.0 or duration <= 0.0:
            return []
        mean_gap = 60.0 / float(rate)
        horizon = self.duration_s
        events = []
        t = float(rng.exponential(mean_gap))
        while t < horizon:
            end = min(t + float(duration), horizon)
            events.append(FaultEvent(kind, target, t, end))
            t = end + float(rng.exponential(mean_gap))
        return events

    def install(self, vifi):
        """Attach this schedule to a built :class:`ViFiSimulation`.

        Returns the live :class:`FaultPlane`.  Called by
        ``ViFiSimulation(..., faults=schedule)``; installing schedules
        only flag-flip events, never an RNG consumer.
        """
        plane = FaultPlane(self, vifi)
        plane.arm()
        return plane


class FaultPlane:
    """Runtime side of a schedule: flips flags, counts injections.

    The plane is what nodes consult (via their ``faults`` attribute)
    for the global beacon-suppression flag, and what experiments read
    back for per-kind injection counts.
    """

    def __init__(self, schedule, vifi):
        self.schedule = schedule
        self._vifi = vifi
        self.beacons_suppressed = False
        self.injected = Counter()
        self.active = set()

    def arm(self):
        sim = self._vifi.sim
        for node in self._all_nodes():
            node.faults = self
        slotter = getattr(self._vifi.ctx, "beacon_slotter", None)
        if slotter is not None:
            slotter.faults = self
        for event in self.schedule.events:
            sim.schedule_fire_at(event.start, self._begin, event)
            sim.schedule_fire_at(event.end, self._end, event)

    def _all_nodes(self):
        yield self._vifi.vehicle
        yield from self._vifi.bs_nodes.values()

    # -- flag flips (no randomness consumed) ---------------------------

    def _begin(self, event):
        kind = event.kind
        vifi = self._vifi
        self.injected[kind] += 1
        self.active.add((kind, event.target))
        if kind == "bs-outage":
            node = vifi.bs_nodes.get(event.target)
            if node is not None:
                node.radio_down = True
        elif kind == "vehicle-reset":
            vifi.vehicle.radio_down = True
        elif kind == "partition":
            vifi.backplane.partition(event.target)
        elif kind == "latency-spike":
            vifi.backplane.latency_multiplier = (
                self.schedule.config.latency_spike_multiplier
            )
        elif kind == "beacon-burst":
            self.beacons_suppressed = True

    def _end(self, event):
        kind = event.kind
        vifi = self._vifi
        self.active.discard((kind, event.target))
        if kind == "bs-outage":
            node = vifi.bs_nodes.get(event.target)
            if node is not None:
                node.radio_down = False
                # The retransmit timer may have fired into the outage
                # and gone unarmed; a recovery pump restarts service
                # without waiting for the next enqueue.
                node.downstream.pump()
        elif kind == "vehicle-reset":
            vifi.vehicle.radio_down = False
            vifi.vehicle.upstream.pump()
        elif kind == "partition":
            vifi.backplane.heal(event.target)
        elif kind == "latency-spike":
            vifi.backplane.latency_multiplier = 1.0
        elif kind == "beacon-burst":
            self.beacons_suppressed = False
