"""Discrete-event simulation substrate.

This package provides the event-driven core that every packet-level
experiment in the reproduction runs on: a deterministic event loop
(:mod:`repro.sim.engine`) and named, seeded random-number streams
(:mod:`repro.sim.rng`).

The paper's packet-level results were produced with QualNet; this engine
is our stand-in.  It is deliberately small: a binary-heap scheduler with
cancellable events and a monotonically advancing clock.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.rng import RngRegistry

__all__ = ["EventHandle", "RngRegistry", "Simulator"]
