"""A hardened local experiment service on top of the result store.

:class:`ExperimentService` is a small in-process job queue for the
figure sweeps: callers submit named experiment runs, a bounded pool of
worker threads executes them, and completed results are memoized in a
:class:`repro.store.ResultStore` so a repeated request is served from
disk without recomputation.

The service is deliberately defensive — it is the layer that keeps a
long experiment campaign alive when individual requests misbehave:

* **Bounded concurrency and backpressure.**  At most ``workers`` jobs
  run at once and at most ``queue_limit`` wait; beyond that
  :meth:`submit` raises :class:`ServiceSaturated` instead of letting
  the backlog grow without bound.
* **Per-request deadlines.**  A job whose deadline passes while it is
  still queued is expired without running.  Running jobs are handled
  cooperatively: runners that accept a ``context`` argument can poll
  :meth:`JobContext.should_stop` and bail out early; either way the
  job is marked ``expired`` when it finishes past its deadline.
* **Cancellation.**  Queued jobs cancel immediately; running jobs get
  the same cooperative stop signal.
* **Failure capture.**  A runner that raises marks only its own job
  ``failed`` (traceback preserved on the record); the worker thread
  and every other job keep going.
* **Graceful store degradation.**  If the store is unavailable,
  read-only, or corrupt the service logs once and falls through to
  computing — a broken cache never takes the service down.

Transport is out of scope here: this is the in-process core that an
HTTP front end can wrap later.  ``python -m repro serve`` exposes a
line-oriented stdin/stdout harness over the same API (one JSON job
request per line, one JSON result per line).
"""

import argparse
import itertools
import json
import logging
import queue
import sys
import threading
import time
import traceback

from repro import store as repro_store

__all__ = [
    "ExperimentService",
    "Job",
    "JobContext",
    "ServiceClosed",
    "ServiceSaturated",
    "register_runner",
    "runner_names",
    "main_serve",
]

log = logging.getLogger("repro.service")

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
EXPIRED = "expired"

_TERMINAL = frozenset({DONE, FAILED, CANCELLED, EXPIRED})


class ServiceSaturated(RuntimeError):
    """The queue is full; the caller should back off and retry."""


class ServiceClosed(RuntimeError):
    """The service is shut down and accepts no further jobs."""


class JobContext:
    """Cooperative control surface handed to context-aware runners."""

    def __init__(self, job):
        self._job = job

    def should_stop(self):
        """True once the job is cancelled or past its deadline."""
        return self._job.stop_event.is_set() or self._job.past_deadline()

    def deadline_remaining(self):
        """Seconds until the deadline, or ``None`` if unbounded."""
        if self._job.deadline is None:
            return None
        return max(0.0, self._job.deadline - time.monotonic())


class Job:
    """One submitted experiment request and its lifecycle record."""

    def __init__(self, job_id, name, params, deadline_s):
        self.id = job_id
        self.name = name
        self.params = dict(params or {})
        self.state = QUEUED
        self.result = None
        self.error = None
        self.cached = False
        self.submitted = time.monotonic()
        self.started = None
        self.finished = None
        self.deadline = (None if deadline_s is None
                         else self.submitted + float(deadline_s))
        self.stop_event = threading.Event()
        self.done_event = threading.Event()

    def past_deadline(self):
        return self.deadline is not None and time.monotonic() > self.deadline

    def snapshot(self):
        """A JSON-friendly view of the job record."""
        out = {"id": self.id, "runner": self.name, "state": self.state,
               "cached": self.cached}
        if self.error is not None:
            out["error"] = self.error
        if self.started is not None and self.finished is not None:
            out["elapsed_s"] = round(self.finished - self.started, 6)
        return out


#: Registry of named experiment runners: name -> callable(**params).
_RUNNERS = {}


def register_runner(name, fn):
    """Register (or replace) a named experiment runner."""
    _RUNNERS[str(name)] = fn
    return fn


def runner_names():
    return sorted(_RUNNERS)


def _density_sweep(**params):
    from repro.experiments.factors import density_sweep
    return density_sweep(**params)


def _speed_sweep(**params):
    from repro.experiments.factors import speed_sweep
    return speed_sweep(**params)


def _fault_matrix_smoke(**params):
    from repro.experiments.faulted import fault_matrix_smoke
    return fault_matrix_smoke(**params)


def _tcp_vanlan(testbed_seed=5, trips=(0,), seed=0, **params):
    from repro.experiments.tcpbench import tcp_vanlan
    from repro.testbeds.vanlan import VanLanTestbed
    testbed = VanLanTestbed(seed=int(testbed_seed))
    return tcp_vanlan(testbed, trips=tuple(trips), seed=seed, **params)


def _voip_vanlan(testbed_seed=5, trips=(0,), seed=0, **params):
    from repro.experiments.voipbench import voip_vanlan
    from repro.testbeds.vanlan import VanLanTestbed
    testbed = VanLanTestbed(seed=int(testbed_seed))
    return voip_vanlan(testbed, trips=tuple(trips), seed=seed, **params)


register_runner("density_sweep", _density_sweep)
register_runner("speed_sweep", _speed_sweep)
register_runner("fault_matrix_smoke", _fault_matrix_smoke)
register_runner("tcp_vanlan", _tcp_vanlan)
register_runner("voip_vanlan", _voip_vanlan)


class ExperimentService:
    """Bounded-concurrency, store-backed experiment job queue.

    Args:
        store: result store for job memoization — a
            :class:`~repro.store.ResultStore`, a path, ``None`` for the
            ambient default, or ``False`` to disable caching.
        workers: number of worker threads (>= 1).
        queue_limit: max queued-but-not-running jobs before
            :meth:`submit` raises :class:`ServiceSaturated`.
        default_deadline_s: deadline applied to jobs submitted without
            an explicit one (``None`` = unbounded).
    """

    def __init__(self, store=None, workers=2, queue_limit=16,
                 default_deadline_s=None):
        self.store = repro_store.resolve_store(store)
        self.default_deadline_s = default_deadline_s
        self._queue = queue.Queue(maxsize=max(1, int(queue_limit)))
        self._jobs = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-service-{i}", daemon=True)
            for i in range(max(1, int(workers)))
        ]
        for t in self._threads:
            t.start()

    # -- submission / querying ------------------------------------------

    def submit(self, name, params=None, deadline_s=None):
        """Queue a job; returns its id.

        Raises:
            ServiceClosed: the service has been shut down.
            ServiceSaturated: the queue is at ``queue_limit``.
            KeyError: *name* is not a registered runner.
        """
        if self._closed:
            raise ServiceClosed("service is closed")
        if name not in _RUNNERS:
            raise KeyError(f"unknown runner {name!r}; "
                           f"known: {runner_names()}")
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        with self._lock:
            job = Job(next(self._ids), name, params, deadline_s)
            self._jobs[job.id] = job
        try:
            self._queue.put_nowait(job.id)
        except queue.Full:
            with self._lock:
                del self._jobs[job.id]
            raise ServiceSaturated(
                f"queue full ({self._queue.maxsize} pending)") from None
        return job.id

    def job(self, job_id):
        with self._lock:
            return self._jobs[job_id]

    def status(self, job_id):
        return self.job(job_id).snapshot()

    def wait(self, job_id, timeout=None):
        """Block until the job reaches a terminal state; returns it."""
        job = self.job(job_id)
        job.done_event.wait(timeout)
        return job

    def cancel(self, job_id):
        """Request cancellation; immediate for queued jobs.

        Returns True if the job is (or will be treated as) cancelled.
        """
        job = self.job(job_id)
        job.stop_event.set()
        with self._lock:
            if job.state == QUEUED:
                self._finish(job, CANCELLED)
                return True
        return job.state in (CANCELLED, QUEUED, RUNNING)

    def stats(self):
        """Counts by state plus store counters."""
        with self._lock:
            jobs = list(self._jobs.values())
        counts = {s: 0 for s in (QUEUED, RUNNING, DONE, FAILED,
                                 CANCELLED, EXPIRED)}
        for job in jobs:
            counts[job.state] += 1
        counts["store"] = (self.store.stats.snapshot() if self.store
                           else repro_store.StoreStats().snapshot())
        return counts

    def close(self, wait=True):
        """Stop accepting jobs; optionally wait for workers to drain."""
        self._closed = True
        for _ in self._threads:
            try:
                self._queue.put_nowait(None)
            except queue.Full:
                break
        if wait:
            for t in self._threads:
                t.join(timeout=30.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- worker side ----------------------------------------------------

    def _finish(self, job, state, result=None, error=None):
        job.state = state
        job.result = result
        job.error = error
        job.finished = time.monotonic()
        job.done_event.set()

    def _worker_loop(self):
        while True:
            try:
                # Bounded wait so shutdown is never wedged by a full
                # queue that rejected the close() sentinel.
                job_id = self._queue.get(timeout=0.25)
            except queue.Empty:
                if self._closed:
                    return
                continue
            if job_id is None:
                return
            job = self.job(job_id)
            with self._lock:
                if job.state != QUEUED:
                    continue  # cancelled while queued
                if job.past_deadline():
                    self._finish(job, EXPIRED,
                                 error="deadline passed while queued")
                    continue
                job.state = RUNNING
                job.started = time.monotonic()
            try:
                result = self._execute(job)
            except Exception as exc:  # noqa: BLE001 — capture, don't die
                log.warning("job %d (%s) failed: %s", job.id, job.name, exc)
                self._finish(job, FAILED,
                             error="".join(traceback.format_exception(
                                 type(exc), exc, exc.__traceback__)))
                continue
            if job.stop_event.is_set():
                self._finish(job, CANCELLED, error="cancelled while running")
            elif job.past_deadline():
                self._finish(job, EXPIRED, error="deadline exceeded")
            else:
                self._finish(job, DONE, result=result)

    def _execute(self, job):
        runner = _RUNNERS[job.name]
        kwargs = dict(job.params)
        if getattr(runner, "accepts_context", False):
            kwargs["context"] = JobContext(job)

        def compute():
            return runner(**kwargs)

        if self.store is None:
            return compute()
        try:
            key = repro_store.result_key(
                "service-job", job.name, sorted(job.params.items()))
        except repro_store.Uncacheable as exc:
            log.info("job %d (%s) not cacheable (%s); computing",
                     job.id, job.name, exc)
            return compute()
        before = self.store.stats.hits
        try:
            value = self.store.get_or_compute(key, compute)
        except OSError as exc:  # store layer degrades; double belt
            log.warning("store failure for job %d (%s): %s; computing",
                        job.id, job.name, exc)
            return compute()
        job.cached = self.store.stats.hits > before
        return value


def main_serve(argv=None):
    """``python -m repro serve``: line-oriented service harness.

    Reads one JSON object per stdin line —
    ``{"runner": name, "params": {...}, "deadline_s": 5.0}`` — submits
    each to an :class:`ExperimentService`, and prints one JSON result
    line per job in submission order.  Exits non-zero if any job
    failed.  ``--list`` prints the registered runners instead.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run experiment jobs from stdin JSON lines.")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result-store directory (default: "
                             "$REPRO_RESULT_STORE, else no cache)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-limit", type=int, default=16)
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="default per-job deadline")
    parser.add_argument("--list", action="store_true",
                        help="list registered runners and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in runner_names():
            print(name)
        return 0

    store = args.store if args.store is not None else None
    service = ExperimentService(store=store, workers=args.workers,
                                queue_limit=args.queue_limit,
                                default_deadline_s=args.deadline)
    job_ids = []
    failed = 0
    with service:
        for line in sys.stdin:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                request = json.loads(line)
                job_ids.append(service.submit(
                    request["runner"], request.get("params"),
                    deadline_s=request.get("deadline_s")))
            except (ValueError, KeyError, ServiceSaturated) as exc:
                failed += 1
                print(json.dumps({"state": "rejected", "error": str(exc),
                                  "line": line}))
        for job_id in job_ids:
            job = service.wait(job_id)
            out = job.snapshot()
            if job.state == DONE:
                out["result"] = job.result
            print(json.dumps(out, default=str))
            if job.state != DONE:
                failed += 1
        summary = service.stats()
    print(json.dumps({"summary": summary}), file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main_serve())
