"""A hardened local experiment service on top of the result store.

:class:`ExperimentService` is a small in-process job queue for the
figure sweeps: callers submit named experiment runs, a bounded pool of
worker threads executes them, and completed results are memoized in a
:class:`repro.store.ResultStore` so a repeated request is served from
disk without recomputation.

The service is deliberately defensive — it is the layer that keeps a
long experiment campaign alive when individual requests misbehave:

* **Bounded concurrency and backpressure.**  At most ``workers`` jobs
  run at once and at most ``queue_limit`` wait; beyond that
  :meth:`submit` raises :class:`ServiceSaturated` instead of letting
  the backlog grow without bound.
* **Per-request deadlines.**  A job whose deadline passes while it is
  still queued is expired without running.  Running jobs are handled
  cooperatively: runners that accept a ``context`` argument can poll
  :meth:`JobContext.should_stop` and bail out early; either way the
  job is marked ``expired`` when it finishes past its deadline.
* **Cancellation.**  Queued jobs cancel immediately; running jobs get
  the same cooperative stop signal.
* **Failure capture.**  A runner that raises marks only its own job
  ``failed`` (traceback preserved on the record); the worker thread
  and every other job keep going.
* **Graceful store degradation.**  If the store is unavailable,
  read-only, or corrupt the service logs once and falls through to
  computing — a broken cache never takes the service down.

Transport lives one layer up: :mod:`repro.gateway` serves this same
API over fault-tolerant HTTP (``python -m repro serve --http``), and
``python -m repro serve`` without ``--http`` exposes a line-oriented
stdin/stdout harness (one JSON job request per line, one JSON result
per line; malformed lines are rejected with a structured error line,
never a crash).
"""

import argparse
import itertools
import json
import logging
import queue
import sys
import threading
import time
import traceback

from repro import store as repro_store

__all__ = [
    "ExperimentService",
    "Job",
    "JobContext",
    "ServiceClosed",
    "ServiceSaturated",
    "parse_job_request",
    "register_runner",
    "runner_names",
    "main_serve",
]

log = logging.getLogger("repro.service")

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
EXPIRED = "expired"

_TERMINAL = frozenset({DONE, FAILED, CANCELLED, EXPIRED})


class ServiceSaturated(RuntimeError):
    """The queue is full; the caller should back off and retry."""


class ServiceClosed(RuntimeError):
    """The service is shut down and accepts no further jobs."""


class JobContext:
    """Cooperative control surface handed to context-aware runners."""

    def __init__(self, job):
        self._job = job

    def should_stop(self):
        """True once the job is cancelled or past its deadline."""
        return self._job.stop_event.is_set() or self._job.past_deadline()

    def deadline_remaining(self):
        """Seconds until the deadline, or ``None`` if unbounded."""
        if self._job.deadline is None:
            return None
        return max(0.0, self._job.deadline - time.monotonic())

    def progress(self, **fields):
        """Record a progress event on the job.

        Events are JSON-friendly dicts, sequence-numbered in order of
        arrival; anything waiting in :meth:`Job.progress_since` (the
        HTTP gateway's event stream, a polling client) wakes up.
        Cheap enough to call per sweep task.
        """
        self._job.record_progress(dict(fields))


class Job:
    """One submitted experiment request and its lifecycle record."""

    def __init__(self, job_id, name, params, deadline_s, key=None):
        self.id = job_id
        self.name = name
        self.params = dict(params or {})
        self.key = key
        self.state = QUEUED
        self.result = None
        self.error = None
        self.cached = False
        self.submitted = time.monotonic()
        self.started = None
        self.finished = None
        self.deadline = (None if deadline_s is None
                         else self.submitted + float(deadline_s))
        self.stop_event = threading.Event()
        self.done_event = threading.Event()
        self.progress_log = []
        self._progress_cond = threading.Condition()

    def past_deadline(self):
        return self.deadline is not None and time.monotonic() > self.deadline

    def record_progress(self, fields):
        with self._progress_cond:
            fields = dict(fields)
            fields["seq"] = len(self.progress_log) + 1
            self.progress_log.append(fields)
            self._progress_cond.notify_all()

    def notify_watchers(self):
        """Wake progress waiters (terminal transitions call this)."""
        with self._progress_cond:
            self._progress_cond.notify_all()

    def progress_since(self, after_seq, timeout=None):
        """Events with ``seq > after_seq``, blocking up to *timeout*.

        Returns ``(events, terminal)``; ``terminal`` is True once the
        job has finished, so stream consumers know to stop waiting.
        Returns immediately when fresh events or a terminal state are
        already available.
        """
        with self._progress_cond:
            def fresh():
                return self.progress_log[after_seq:]
            events = fresh()
            if not events and self.state not in _TERMINAL:
                self._progress_cond.wait(timeout)
                events = fresh()
            return list(events), self.state in _TERMINAL

    def snapshot(self):
        """A JSON-friendly view of the job record."""
        out = {"id": self.id, "runner": self.name, "state": self.state,
               "cached": self.cached}
        if self.key is not None:
            out["key"] = self.key
        if self.progress_log:
            out["progress"] = self.progress_log[-1]
        if self.error is not None:
            out["error"] = self.error
        if self.started is not None and self.finished is not None:
            out["elapsed_s"] = round(self.finished - self.started, 6)
        return out


#: Registry of named experiment runners: name -> callable(**params).
_RUNNERS = {}


def register_runner(name, fn):
    """Register (or replace) a named experiment runner."""
    _RUNNERS[str(name)] = fn
    return fn


def runner_names():
    return sorted(_RUNNERS)


def _with_progress(name, fn):
    """Wrap a plain runner so it reports start/finish progress.

    The wrapped runner accepts the service's ``context`` and emits a
    ``started``/``finished`` pair through
    :meth:`JobContext.progress`, so even single-shot experiments feed
    the gateway's event stream something observable.  The ``context``
    kwarg never reaches *fn* (and never joins the job params, so
    memoization keys are unaffected).
    """
    def run(context=None, **params):
        if context is not None:
            context.progress(stage=name, status="started")
        out = fn(**params)
        if context is not None:
            context.progress(stage=name, status="finished")
        return out
    run.accepts_context = True
    run.__name__ = f"{name}_runner"
    return run


def _density_sweep(**params):
    from repro.experiments.factors import density_sweep
    return density_sweep(**params)


def _speed_sweep(**params):
    from repro.experiments.factors import speed_sweep
    return speed_sweep(**params)


def _fault_matrix_smoke(**params):
    from repro.experiments.faulted import fault_matrix_smoke
    return fault_matrix_smoke(**params)


def _tcp_vanlan(testbed_seed=5, trips=(0,), seed=0, **params):
    from repro.experiments.tcpbench import tcp_vanlan
    from repro.testbeds.vanlan import VanLanTestbed
    testbed = VanLanTestbed(seed=int(testbed_seed))
    return tcp_vanlan(testbed, trips=tuple(trips), seed=seed, **params)


def _voip_vanlan(testbed_seed=5, trips=(0,), seed=0, **params):
    from repro.experiments.voipbench import voip_vanlan
    from repro.testbeds.vanlan import VanLanTestbed
    testbed = VanLanTestbed(seed=int(testbed_seed))
    return voip_vanlan(testbed, trips=tuple(trips), seed=seed, **params)


def _vanlan_cbr_sweep(trips=3, duration_s=10.0, testbed_seed=0, seed0=0,
                      context=None):
    """Multi-trip VanLAN CBR sweep, one task at a time.

    The incremental shape is deliberate: each trip runs through
    :func:`~repro.experiments.common.run_trips` with the ambient
    result store, so every completed trip is individually memoized —
    a sweep interrupted by a crash (or a cooperative cancel between
    tasks) resumes from warm per-trip entries on resubmission.  Per-
    task progress events feed the gateway's event stream, and
    ``context.should_stop`` is honoured between tasks.

    Returns a JSON-friendly summary: per-trip event counts and a
    SHA-256 digest of the full delivery record, so two runs can be
    compared for bit-identical results over the wire.
    """
    import hashlib

    from repro.experiments.common import run_trips, vanlan_cbr_trip

    n = max(1, int(trips))
    tasks = [
        {"trip": t, "seed": int(seed0) + t,
         "duration_s": float(duration_s),
         "testbed_seed": int(testbed_seed)}
        for t in range(n)
    ]
    summaries = []
    hits = misses = 0
    for i, task in enumerate(tasks):
        if context is not None and context.should_stop():
            return {"partial": True, "completed": i, "total": n,
                    "trips": summaries}
        sweep = run_trips(vanlan_cbr_trip, [task], workers=1)
        record = sweep[0]
        blob = json.dumps(
            {"up": record["up_deliveries"],
             "down": record["down_deliveries"],
             "events": record["events"]},
            sort_keys=True, default=float).encode("utf-8")
        summaries.append({
            "trip": task["trip"], "seed": task["seed"],
            "events": int(record["events"]),
            "digest": hashlib.sha256(blob).hexdigest(),
        })
        hits += sweep.store["hits"]
        misses += sweep.store["misses"]
        if context is not None:
            context.progress(task=i + 1, total=n, trip=task["trip"],
                             store_hits=hits, store_misses=misses)
    return {"partial": False, "completed": n, "total": n,
            "trips": summaries,
            "store": {"hits": hits, "misses": misses}}


_vanlan_cbr_sweep.accepts_context = True

register_runner("density_sweep", _with_progress("density_sweep",
                                                _density_sweep))
register_runner("speed_sweep", _with_progress("speed_sweep",
                                              _speed_sweep))
register_runner("fault_matrix_smoke",
                _with_progress("fault_matrix_smoke", _fault_matrix_smoke))
register_runner("tcp_vanlan", _with_progress("tcp_vanlan", _tcp_vanlan))
register_runner("voip_vanlan", _with_progress("voip_vanlan", _voip_vanlan))
register_runner("vanlan_cbr_sweep", _vanlan_cbr_sweep)


class ExperimentService:
    """Bounded-concurrency, store-backed experiment job queue.

    Args:
        store: result store for job memoization — a
            :class:`~repro.store.ResultStore`, a path, ``None`` for the
            ambient default, or ``False`` to disable caching.
        workers: number of worker threads (>= 1).
        queue_limit: max queued-but-not-running jobs before
            :meth:`submit` raises :class:`ServiceSaturated`.
        default_deadline_s: deadline applied to jobs submitted without
            an explicit one (``None`` = unbounded).
    """

    def __init__(self, store=None, workers=2, queue_limit=16,
                 default_deadline_s=None):
        self.store = repro_store.resolve_store(store)
        self.default_deadline_s = default_deadline_s
        self._queue = queue.Queue(maxsize=max(1, int(queue_limit)))
        self._jobs = {}  # guarded-by: _lock
        self._by_key = {}  # guarded-by: _lock
        # Reentrant: _finish must be callable both bare (worker loop
        # finishing a job it just ran) and under the lock (cancel of a
        # queued job, close-time finalization).
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-service-{i}", daemon=True)
            for i in range(max(1, int(workers)))
        ]
        for t in self._threads:
            t.start()

    # -- submission / querying ------------------------------------------

    @property
    def closed(self):
        return self._closed

    @staticmethod
    def job_key(name, params):
        """Content-addressed identity of a job request, or ``None``.

        The same key the store memoizes under; the HTTP gateway uses
        it for idempotent resubmission.  ``None`` when the params are
        not canonically tokenizable (such a job is never deduplicated
        or cached — computed fresh each time).
        """
        try:
            return repro_store.result_key(
                "service-job", str(name), sorted(dict(params or {}).items()))
        except repro_store.Uncacheable:
            return None

    def submit(self, name, params=None, deadline_s=None):
        """Queue a job; returns its id.

        Raises:
            ServiceClosed: the service has been shut down.
            ServiceSaturated: the queue is at ``queue_limit``.
            KeyError: *name* is not a registered runner.
        """
        job_id, _ = self.submit_idempotent(name, params,
                                           deadline_s=deadline_s,
                                           dedupe=False)
        return job_id

    def submit_idempotent(self, name, params=None, deadline_s=None,
                          dedupe=True):
        """Queue a job, or attach to an equivalent live one.

        With ``dedupe`` (the default) a request whose content-
        addressed :meth:`job_key` matches a job that is queued,
        running, or done returns that job's id instead of queueing a
        duplicate — the contract a client retry loop relies on after
        a lost response.  Failed / cancelled / expired jobs never
        absorb a resubmission (the retry should get a fresh attempt).

        Returns:
            ``(job_id, attached)`` — ``attached`` is True when an
            existing job was reused.
        """
        if self._closed:
            raise ServiceClosed("service is closed")
        if name not in _RUNNERS:
            raise KeyError(f"unknown runner {name!r}; "
                           f"known: {runner_names()}")
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        key = self.job_key(name, params)
        with self._lock:
            if dedupe and key is not None:
                existing_id = self._by_key.get(key)
                existing = self._jobs.get(existing_id)
                if existing is not None and existing.state in (
                        QUEUED, RUNNING, DONE):
                    return existing.id, True
            job = Job(next(self._ids), name, params, deadline_s, key=key)
            self._jobs[job.id] = job
            if key is not None:
                self._by_key[key] = job.id
        try:
            self._queue.put_nowait(job.id)
        except queue.Full:
            with self._lock:
                del self._jobs[job.id]
                if key is not None and self._by_key.get(key) == job.id:
                    del self._by_key[key]
            raise ServiceSaturated(
                f"queue full ({self._queue.maxsize} pending)") from None
        return job.id, False

    def job(self, job_id):
        with self._lock:
            return self._jobs[job_id]

    def status(self, job_id):
        return self.job(job_id).snapshot()

    def wait(self, job_id, timeout=None):
        """Block until the job reaches a terminal state; returns it."""
        job = self.job(job_id)
        job.done_event.wait(timeout)
        return job

    def cancel(self, job_id):
        """Request cancellation; immediate for queued jobs.

        Returns True if the job is (or will be treated as) cancelled.
        A job that already reached a terminal state is left untouched
        — cancelling a completed job is a no-op, not a state change.
        """
        job = self.job(job_id)
        with self._lock:
            if job.state in _TERMINAL:
                return job.state == CANCELLED
            job.stop_event.set()
            if job.state == QUEUED:
                self._finish(job, CANCELLED, error="cancelled while queued")
                return True
        return True

    def stats(self):
        """Counts by state plus store counters."""
        with self._lock:
            jobs = list(self._jobs.values())
        counts = {s: 0 for s in (QUEUED, RUNNING, DONE, FAILED,
                                 CANCELLED, EXPIRED)}
        for job in jobs:
            counts[job.state] += 1
        counts["store"] = (self.store.stats.snapshot() if self.store
                           else repro_store.StoreStats().snapshot())
        return counts

    def close(self, wait=True, finalize_timeout_s=30.0):
        """Stop accepting jobs; optionally wait for workers to drain.

        With ``wait`` every job is guaranteed a terminal snapshot
        state by the time this returns: workers are joined (bounded by
        *finalize_timeout_s*), then any job still non-terminal — a
        queued job no worker will ever pick up, or a cancelled job
        whose runner never reached a ``should_stop`` check before the
        join timed out — is finalized ``cancelled``.  A runner thread
        that later limps home finds the job already terminal and its
        result is discarded (:meth:`_finish` is first-writer-wins).
        """
        self._closed = True
        for _ in self._threads:
            try:
                self._queue.put_nowait(None)
            except queue.Full:
                break
        if not wait:
            return
        deadline = time.monotonic() + float(finalize_timeout_s)
        for t in self._threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        with self._lock:
            leftovers = [j for j in self._jobs.values()
                         if j.state not in _TERMINAL]
            for job in leftovers:
                job.stop_event.set()
                self._finish(job, CANCELLED,
                             error="service closed before job finished"
                             if job.state == QUEUED
                             else "cancelled; finalized at close")

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- worker side ----------------------------------------------------

    def _finish(self, job, state, result=None, error=None):
        """Transition *job* to a terminal state, exactly once.

        First writer wins: a cancel racing normal completion (or a
        close-time finalization racing a slow worker) resolves to
        whichever terminal transition got here first, and the loser's
        write is dropped instead of corrupting a terminal record.
        Returns True when this call performed the transition.
        """
        with self._lock:
            if job.state in _TERMINAL:
                return False
            job.state = state
            job.result = result
            job.error = error
            job.finished = time.monotonic()
        job.done_event.set()
        job.notify_watchers()
        return True

    def _worker_loop(self):
        while True:
            try:
                # Bounded wait so shutdown is never wedged by a full
                # queue that rejected the close() sentinel.
                job_id = self._queue.get(timeout=0.25)
            except queue.Empty:
                if self._closed:
                    return
                continue
            if job_id is None:
                return
            job = self.job(job_id)
            with self._lock:
                if job.state != QUEUED:
                    continue  # cancelled while queued
                if job.past_deadline():
                    self._finish(job, EXPIRED,
                                 error="deadline passed while queued")
                    continue
                job.state = RUNNING
                job.started = time.monotonic()
            try:
                result = self._execute(job)
            except Exception as exc:  # repro-lint: allow[SILENT-EXCEPT] worker loop captures the traceback into the job record (FAILED) and keeps serving; dying here would strand every queued job
                log.warning("job %d (%s) failed: %s", job.id, job.name, exc)
                self._finish(job, FAILED,
                             error="".join(traceback.format_exception(
                                 type(exc), exc, exc.__traceback__)))
                continue
            if job.stop_event.is_set():
                self._finish(job, CANCELLED, error="cancelled while running")
            elif job.past_deadline():
                self._finish(job, EXPIRED, error="deadline exceeded")
            else:
                self._finish(job, DONE, result=result)

    def _execute(self, job):
        runner = _RUNNERS[job.name]
        kwargs = dict(job.params)
        if getattr(runner, "accepts_context", False):
            kwargs["context"] = JobContext(job)

        def compute():
            return runner(**kwargs)

        if self.store is None:
            return compute()
        key = job.key
        if key is None:
            log.info("job %d (%s) not cacheable; computing",
                     job.id, job.name)
            return compute()
        before = self.store.stats.hits
        try:
            value = self.store.get_or_compute(key, compute)
        except OSError as exc:  # store layer degrades; double belt
            log.warning("store failure for job %d (%s): %s; computing",
                        job.id, job.name, exc)
            return compute()
        job.cached = self.store.stats.hits > before
        return value


def parse_job_request(line):
    """Validate one JSON job-request line into ``(name, params, dl)``.

    Raises ``ValueError`` with a human-readable reason for every
    malformed shape — bad JSON, non-object request, missing or
    non-string runner, non-object params, non-numeric deadline — so
    the serving loops can answer with a structured error instead of
    whatever exception the bad shape happened to trip.
    """
    try:
        request = json.loads(line)
    except ValueError as exc:
        raise ValueError(f"invalid JSON: {exc}") from None
    if not isinstance(request, dict):
        raise ValueError("request must be a JSON object, got "
                         + type(request).__name__)
    name = request.get("runner")
    if not isinstance(name, str) or not name:
        raise ValueError("missing or non-string 'runner'")
    params = request.get("params")
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ValueError("'params' must be a JSON object, got "
                         + type(params).__name__)
    deadline_s = request.get("deadline_s")
    if deadline_s is not None:
        if isinstance(deadline_s, bool) or \
                not isinstance(deadline_s, (int, float)):
            raise ValueError("'deadline_s' must be a number")
        deadline_s = float(deadline_s)
    return name, params, deadline_s


def main_serve(argv=None):
    """``python -m repro serve``: service harness (stdin or HTTP).

    Default mode reads one JSON object per stdin line —
    ``{"runner": name, "params": {...}, "deadline_s": 5.0}`` — submits
    each to an :class:`ExperimentService`, and prints one JSON result
    line per job in submission order.  A malformed line (bad JSON,
    non-object request, unknown runner, saturated queue, ...) emits a
    structured ``{"state": "rejected", ...}`` line and the loop keeps
    serving; nothing a client sends can kill it.  Exits non-zero if
    any job was rejected or failed.  ``--list`` prints the registered
    runners instead.

    ``--http HOST:PORT`` serves the same jobs over the fault-tolerant
    asyncio HTTP gateway (:mod:`repro.gateway`) until SIGTERM/SIGINT
    drains it.  ``PORT`` may be 0 (ephemeral); the bound address is
    announced on stdout as ``gateway listening on HOST:PORT``.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run experiment jobs from stdin JSON lines "
                    "or over HTTP.")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result-store directory (default: "
                             "$REPRO_RESULT_STORE, else no cache)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-limit", type=int, default=16)
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="default per-job deadline")
    parser.add_argument("--http", default=None, metavar="HOST:PORT",
                        help="serve over HTTP instead of stdin lines")
    parser.add_argument("--max-connections", type=int, default=64,
                        help="HTTP: max concurrent connections")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="HTTP: max wait for in-flight jobs on "
                             "SIGTERM/SIGINT")
    parser.add_argument("--header-timeout", type=float, default=5.0,
                        metavar="SECONDS",
                        help="HTTP: deadline for reading request head")
    parser.add_argument("--body-timeout", type=float, default=15.0,
                        metavar="SECONDS",
                        help="HTTP: deadline for reading request body")
    parser.add_argument("--max-body-bytes", type=int, default=1 << 20,
                        help="HTTP: request body size limit")
    parser.add_argument("--list", action="store_true",
                        help="list registered runners and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in runner_names():
            print(name)
        return 0

    store = args.store if args.store is not None else None
    service = ExperimentService(store=store, workers=args.workers,
                                queue_limit=args.queue_limit,
                                default_deadline_s=args.deadline)

    if args.http is not None:
        from repro.gateway import GatewayLimits, serve_http
        host, _, port = args.http.rpartition(":")
        limits = GatewayLimits(
            max_connections=args.max_connections,
            header_timeout_s=args.header_timeout,
            body_timeout_s=args.body_timeout,
            max_body_bytes=args.max_body_bytes,
        )
        return serve_http(service, host or "127.0.0.1", int(port),
                          limits=limits,
                          drain_timeout_s=args.drain_timeout)

    job_ids = []
    failed = 0
    with service:
        for line in sys.stdin:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                name, params, deadline_s = parse_job_request(line)
                job_ids.append(service.submit(name, params,
                                              deadline_s=deadline_s))
            except Exception as exc:  # repro-lint: allow[SILENT-EXCEPT] a bad stdin line becomes a structured rejection on stdout; it must never take the serving loop down
                failed += 1
                print(json.dumps({"state": "rejected",
                                  "error": str(exc),
                                  "error_type": type(exc).__name__,
                                  "line": line}))
        for job_id in job_ids:
            job = service.wait(job_id)
            out = job.snapshot()
            if job.state == DONE:
                out["result"] = job.result
            print(json.dumps(out, default=str))
            if job.state != DONE:
                failed += 1
        summary = service.stats()
    print(json.dumps({"summary": summary}), file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main_serve())
