"""Environmental-factor study (the paper's companion technical report).

Section 5 notes: "we have conducted a broader study of the performance
of ViFi across a range of environmental factors.  These factors include
the density of BSes and the speed of the vehicle, which we could not
control for either of our testbeds ... ViFi performs well across these
factors."  The synthetic testbed *can* control both, so this module
sweeps them: ViFi-vs-BRR delivery on the CBR workload as the BS
population shrinks and as the shuttle speeds up.

Sweep points are independent runs, so both sweeps fan out over
:func:`~repro.experiments.common.run_trips` (*workers* processes;
results are identical for any count).
"""

from repro.core.protocol import ViFiConfig
from repro.experiments.common import run_protocol_cbr, run_trips
from repro.testbeds.vanlan import VEHICLE_ID, VanLanTestbed

__all__ = ["density_sweep", "speed_sweep"]


def _run_pair(testbed, trip, bs_ids, seed):
    """Delivery rate for (ViFi, BRR) over one trip and BS subset."""
    from repro.core.protocol import ViFiSimulation
    rates = {}
    base = ViFiConfig()
    for name, config in (("ViFi", base), ("BRR", base.brr_variant())):
        motion = testbed.vehicle_motion()
        table = testbed.build_link_table(trip, motion, bs_ids=bs_ids)
        sim = ViFiSimulation(bs_ids, table, config=config, seed=seed,
                             vehicle_id=VEHICLE_ID)
        cbr = run_protocol_cbr(sim, motion.route.duration,
                               deadline_s=0.1)
        rates[name] = cbr.delivery_rate()
    return rates


def _density_task(task):
    """One BS-subset point of the density sweep (picklable)."""
    seed, trip, size = task
    testbed = VanLanTestbed(seed=seed)
    all_bs = testbed.deployment.bs_ids
    # Deterministic, spread-out subset: every k-th BS.
    step = max(len(all_bs) // size, 1)
    subset = all_bs[::step][:size]
    return _run_pair(testbed, trip, subset, seed=seed + size)


def _speed_task(task):
    """One vehicle-speed point of the speed sweep (picklable)."""
    seed, trip, speed = task
    testbed = VanLanTestbed(seed=seed, speed_mps=speed / 3.6)
    return _run_pair(testbed, trip, testbed.deployment.bs_ids,
                     seed=seed + int(speed))


def density_sweep(seed=0, trip=0, subset_sizes=(3, 6, 11), workers=None,
                  store=None):
    """Delivery vs number of deployed BSes.

    Returns:
        dict size -> {"ViFi": rate, "BRR": rate}.
    """
    sizes = list(subset_sizes)
    results = run_trips(
        _density_task, [(seed, trip, size) for size in sizes],
        workers=workers, store=store,
    )
    return dict(zip(sizes, results))


def speed_sweep(seed=0, trip=0, speeds_kmh=(20.0, 40.0, 60.0),
                workers=None, store=None):
    """Delivery vs vehicle speed.

    Returns:
        dict speed_kmh -> {"ViFi": rate, "BRR": rate}.
    """
    speeds = list(speeds_kmh)
    results = run_trips(
        _speed_task, [(seed, trip, speed) for speed in speeds],
        workers=workers, store=store,
    )
    return dict(zip(speeds, results))
