"""Environmental-factor study (the paper's companion technical report).

Section 5 notes: "we have conducted a broader study of the performance
of ViFi across a range of environmental factors.  These factors include
the density of BSes and the speed of the vehicle, which we could not
control for either of our testbeds ... ViFi performs well across these
factors."  The synthetic testbed *can* control both, so this module
sweeps them: ViFi-vs-BRR delivery on the CBR workload as the BS
population shrinks and as the shuttle speeds up.
"""

from repro.core.protocol import ViFiConfig
from repro.experiments.common import run_protocol_cbr
from repro.testbeds.vanlan import VEHICLE_ID, VanLanTestbed

__all__ = ["density_sweep", "speed_sweep"]


def _run_pair(testbed, trip, bs_ids, seed):
    """Delivery rate for (ViFi, BRR) over one trip and BS subset."""
    from repro.core.protocol import ViFiSimulation
    rates = {}
    base = ViFiConfig()
    for name, config in (("ViFi", base), ("BRR", base.brr_variant())):
        motion = testbed.vehicle_motion()
        table = testbed.build_link_table(trip, motion, bs_ids=bs_ids)
        sim = ViFiSimulation(bs_ids, table, config=config, seed=seed,
                             vehicle_id=VEHICLE_ID)
        cbr = run_protocol_cbr(sim, motion.route.duration,
                               deadline_s=0.1)
        rates[name] = cbr.delivery_rate()
    return rates


def density_sweep(seed=0, trip=0, subset_sizes=(3, 6, 11)):
    """Delivery vs number of deployed BSes.

    Returns:
        dict size -> {"ViFi": rate, "BRR": rate}.
    """
    testbed = VanLanTestbed(seed=seed)
    all_bs = testbed.deployment.bs_ids
    out = {}
    for size in subset_sizes:
        # Deterministic, spread-out subset: every k-th BS.
        step = max(len(all_bs) // size, 1)
        subset = all_bs[::step][:size]
        out[size] = _run_pair(testbed, trip, subset, seed=seed + size)
    return out


def speed_sweep(seed=0, trip=0, speeds_kmh=(20.0, 40.0, 60.0)):
    """Delivery vs vehicle speed.

    Returns:
        dict speed_kmh -> {"ViFi": rate, "BRR": rate}.
    """
    out = {}
    for speed in speeds_kmh:
        testbed = VanLanTestbed(seed=seed, speed_mps=speed / 3.6)
        out[speed] = _run_pair(testbed, trip, testbed.deployment.bs_ids,
                               seed=seed + int(speed))
    return out
