"""VoIP experiments: Figure 11 (VanLAN and DieselNet)."""

import statistics

from repro.apps.voip import VoipStream
from repro.apps.workload import FlowRouter
from repro.core.protocol import ViFiConfig
from repro.experiments.common import (
    WARMUP_S,
    dieselnet_protocol,
    vanlan_protocol,
)
from repro.sim.rng import RngRegistry

__all__ = ["voip_dieselnet", "voip_vanlan"]


def _run_voip(sim, duration):
    router = FlowRouter(sim)
    stream = VoipStream(sim, router)
    stream.start(WARMUP_S)
    stream.stop(duration - 2.0)
    sim.run(until=duration)
    return stream


def _summarize(sessions, mos_values):
    return {
        "median_session_s": statistics.median(sessions) if sessions
        else 0.0,
        "sessions": len(sessions),
        "mean_mos": (sum(mos_values) / len(mos_values)
                     if mos_values else 1.0),
    }


def voip_vanlan(testbed, trips, variants=None, seed=0):
    """Figure 11(a): median uninterrupted VoIP session on VanLAN.

    Returns:
        dict name -> {"median_session_s", "sessions", "mean_mos"}.
    """
    if variants is None:
        base = ViFiConfig()
        variants = {"BRR": base.brr_variant(), "ViFi": base}
    results = {}
    for name, config in variants.items():
        sessions = []
        mos_values = []
        for trip in trips:
            sim, duration = vanlan_protocol(testbed, trip, config=config,
                                            seed=seed + trip)
            stream = _run_voip(sim, duration)
            sessions.extend(stream.session_lengths())
            mos_values.extend(m for m, _, _ in stream.window_quality())
        results[name] = _summarize(sessions, mos_values)
    return results


def voip_dieselnet(testbed, days=(0,), variants=None, seed=0, n_tours=1):
    """Figure 11(b,c): VoIP sessions on DieselNet (trace-driven)."""
    if variants is None:
        base = ViFiConfig()
        variants = {"BRR": base.brr_variant(), "ViFi": base}
    results = {}
    for name, config in variants.items():
        sessions = []
        mos_values = []
        for day in days:
            log = testbed.generate_beacon_log(day, n_tours=n_tours)
            rngs = RngRegistry(seed).spawn("voip-dn", name, day)
            sim, duration = dieselnet_protocol(log, rngs, config=config,
                                               seed=seed + day)
            stream = _run_voip(sim, duration)
            sessions.extend(stream.session_lengths())
            mos_values.extend(m for m, _, _ in stream.window_quality())
        results[name] = _summarize(sessions, mos_values)
    return results
