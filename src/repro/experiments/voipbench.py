"""VoIP experiments: Figure 11 (VanLAN and DieselNet).

Like the TCP figures, the ``(variant, trip)`` / ``(variant, day)``
grids fan out over :func:`~repro.experiments.common.run_trips`; the
task-order merge keeps pooled results identical to the serial loops
for any worker count.
"""

import statistics

from repro.apps.voip import VoipStream
from repro.apps.workload import FlowRouter
from repro.core.protocol import ViFiConfig
from repro.experiments.common import (
    WARMUP_S,
    dieselnet_protocol,
    init_worker_state,
    memoized_beacon_log,
    run_trips,
    vanlan_protocol,
    worker_state,
)
from repro.sim.rng import RngRegistry

__all__ = ["voip_dieselnet", "voip_vanlan"]


def _run_voip(sim, duration):
    router = FlowRouter(sim)
    stream = VoipStream(sim, router)
    stream.start(WARMUP_S)
    stream.stop(duration - 2.0)
    sim.run(until=duration)
    return stream


def _summarize(sessions, mos_values):
    return {
        "median_session_s": statistics.median(sessions) if sessions
        else 0.0,
        "sessions": len(sessions),
        "mean_mos": (sum(mos_values) / len(mos_values)
                     if mos_values else 1.0),
    }


def _voip_vanlan_task(task):
    name, trip = task
    testbed, variants, seed = worker_state()
    sim, duration = vanlan_protocol(testbed, trip, config=variants[name],
                                    seed=seed + trip)
    stream = _run_voip(sim, duration)
    return {
        "sessions": stream.session_lengths(),
        "mos": [m for m, _, _ in stream.window_quality()],
    }


def _voip_dieselnet_task(task):
    name, day = task
    testbed, variants, seed, n_tours = worker_state()
    log = memoized_beacon_log(testbed, day, n_tours=n_tours)
    rngs = RngRegistry(seed).spawn("voip-dn", name, day)
    sim, duration = dieselnet_protocol(log, rngs, config=variants[name],
                                       seed=seed + day)
    stream = _run_voip(sim, duration)
    return {
        "sessions": stream.session_lengths(),
        "mos": [m for m, _, _ in stream.window_quality()],
    }


def _pooled(variants, units, per_task):
    per_task = iter(per_task)
    results = {}
    for name in variants:
        sessions = []
        mos_values = []
        for _ in units:
            cell = next(per_task)
            sessions.extend(cell["sessions"])
            mos_values.extend(cell["mos"])
        results[name] = _summarize(sessions, mos_values)
    return results


def voip_vanlan(testbed, trips, variants=None, seed=0, workers=None,
                store=None):
    """Figure 11(a): median uninterrupted VoIP session on VanLAN.

    Args:
        workers: process count for the (variant, trip) fan-out;
            ``None`` uses the host's available cores, results are
            identical for any count.

    Returns:
        dict name -> {"median_session_s", "sessions", "mean_mos"}.
    """
    if variants is None:
        base = ViFiConfig()
        variants = {"BRR": base.brr_variant(), "ViFi": base}
    trips = list(trips)
    tasks = [(name, trip) for name in variants for trip in trips]
    per_task = run_trips(
        _voip_vanlan_task, tasks, workers=workers, store=store,
        initializer=init_worker_state, initargs=(testbed, variants, seed),
    )
    return _pooled(variants, trips, per_task)


def voip_dieselnet(testbed, days=(0,), variants=None, seed=0, n_tours=1,
                   workers=None, store=None):
    """Figure 11(b,c): VoIP sessions on DieselNet (trace-driven)."""
    if variants is None:
        base = ViFiConfig()
        variants = {"BRR": base.brr_variant(), "ViFi": base}
    days = list(days)
    tasks = [(name, day) for name in variants for day in days]
    per_task = run_trips(
        _voip_dieselnet_task, tasks, workers=workers, store=store,
        initializer=init_worker_state,
        initargs=(testbed, variants, seed, n_tours),
    )
    return _pooled(variants, days, per_task)
