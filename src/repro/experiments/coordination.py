"""Coordination-effectiveness experiments: Tables 1 and 2, Section 5.5.2.

Table 1 reports detailed per-direction statistics of ViFi's behaviour
under the VanLAN TCP workload.  Table 2 compares ViFi's relaying
formulation against the three ablations (each violating one guideline)
on DieselNet Channel 1, downstream.  Section 5.5.2 probes the
formulation's limits: many auxiliaries, or symmetric auxiliaries,
inflate the *variance* of the number of relays per packet.
"""

import numpy as np

from repro.apps.tcp import TcpWorkload
from repro.apps.workload import FlowRouter
from repro.core.protocol import ViFiConfig
from repro.core.relaying import RelayContext, make_strategy
from repro.experiments.common import (
    WARMUP_S,
    dieselnet_protocol,
    init_worker_state,
    run_trips,
    vanlan_protocol,
    worker_state,
)
from repro.net.packet import Direction
from repro.sim.rng import RngRegistry

__all__ = [
    "coordination_table",
    "formulation_comparison",
    "relay_count_spread",
]


def _coordination_trip(trip):
    """One trip of Table 1: the two per-direction reports (picklable)."""
    testbed, config, seed = worker_state()
    sim, duration = vanlan_protocol(testbed, trip, config=config,
                                    seed=seed + trip)
    router = FlowRouter(sim)
    workload = TcpWorkload(sim, router)
    workload.start(WARMUP_S)
    workload.stop(duration - 2.0)
    sim.run(until=duration)
    return (
        sim.stats.coordination_report(Direction.UPSTREAM),
        sim.stats.coordination_report(Direction.DOWNSTREAM),
    )


def coordination_table(testbed, trips, seed=0, config=None, workers=None,
                       store=None):
    """Table 1: coordination statistics from the VanLAN TCP workload.

    Trips fan out over :func:`~repro.experiments.common.run_trips`
    (*workers* processes; ``None`` uses the available cores); the
    task-order merge makes the pooled reports identical to a serial
    loop for any worker count.

    Returns:
        dict direction name -> :class:`~repro.core.stats.CoordinationReport`
        computed over the pooled logs of all trips (reports are
        per-trip averaged on counts by pooling the stats objects).
    """
    config = config or ViFiConfig()
    per_trip = run_trips(
        _coordination_trip, list(trips), workers=workers, store=store,
        initializer=init_worker_state, initargs=(testbed, config, seed),
    )
    reports = {
        "upstream": [up for up, _ in per_trip],
        "downstream": [down for _, down in per_trip],
    }
    return {
        direction: _average_reports(rs) for direction, rs in reports.items()
    }


def _average_reports(reports):
    """Average CoordinationReports, weighting by source-tx counts."""
    if not reports:
        raise ValueError("no reports to average")
    if len(reports) == 1:
        return reports[0]
    total_tx = sum(r.n_source_tx for r in reports) or 1
    out = reports[0]
    for fieldname in (
        "median_aux", "mean_aux_heard", "mean_aux_heard_no_ack",
        "src_tx_success_rate", "false_positive_rate",
        "relays_per_false_positive", "src_tx_failure_rate",
        "failed_overheard_rate", "false_negative_rate",
        "relay_delivery_rate",
    ):
        value = sum(
            getattr(r, fieldname) * r.n_source_tx for r in reports
        ) / total_tx
        setattr(out, fieldname, value)
    out.n_source_tx = total_tx
    return out


def _formulation_task(task):
    """One (strategy, day) cell of Table 2 (picklable summary)."""
    strategy, day = task
    testbed, seed, n_tours = worker_state()
    config = ViFiConfig(relay_strategy=strategy)
    log = testbed.generate_beacon_log(day, n_tours=n_tours)
    rngs = RngRegistry(seed).spawn("table2", strategy, day)
    sim, duration = dieselnet_protocol(log, rngs, config=config,
                                       seed=seed + day)
    router = FlowRouter(sim)
    workload = TcpWorkload(sim, router)
    workload.start(WARMUP_S)
    workload.stop(duration - 2.0)
    sim.run(until=duration)
    report = sim.stats.coordination_report(Direction.DOWNSTREAM)
    return (report.false_positive_rate, report.false_negative_rate,
            report.n_source_tx)


def formulation_comparison(testbed, days=(0,), seed=0, n_tours=1,
                           workers=None, store=None):
    """Table 2: ViFi vs NotG1/NotG2/NotG3 on DieselNet Ch. 1 downstream.

    The (strategy, day) grid fans out over
    :func:`~repro.experiments.common.run_trips`; results are identical
    for any *workers* count.

    Returns:
        dict strategy name -> {"false_positives", "false_negatives"}.
    """
    strategies = ("vifi", "not-g1", "not-g2", "not-g3")
    days = list(days)
    tasks = [(strategy, day) for strategy in strategies for day in days]
    per_task = iter(run_trips(
        _formulation_task, tasks, workers=workers, store=store,
        initializer=init_worker_state, initargs=(testbed, seed, n_tours),
    ))
    results = {}
    for strategy in strategies:
        fps, fns, weights = [], [], []
        for _ in days:
            fp, fn, weight = next(per_task)
            fps.append(fp)
            fns.append(fn)
            weights.append(weight)
        total = sum(weights) or 1
        results[strategy] = {
            "false_positives": sum(f * w for f, w in zip(fps, weights))
            / total,
            "false_negatives": sum(f * w for f, w in zip(fns, weights))
            / total,
        }
    return results


def relay_count_spread(n_aux, p_hear_src, p_to_dst, p_src_dst=0.5,
                       n_packets=2000, seed=0, strategy="vifi"):
    """Section 5.5.2: distribution of relays/packet on a synthetic topology.

    Builds an idealized scene with ``n_aux`` auxiliaries whose
    connectivity is given directly (no protocol machinery): every
    packet, each auxiliary independently hears the source with
    ``p_hear_src``, hears the destination's ack with probability
    ``p_src_dst * p_to_dst`` (ack exists only if dst got the packet),
    and contenders apply the strategy's relay probability.

    Args:
        n_aux: number of auxiliary BSes.
        p_hear_src: per-aux probability of overhearing the source; a
            scalar makes auxiliaries symmetric (the pathological case),
            a sequence makes them asymmetric.
        p_to_dst: per-aux delivery probability to the destination
            (scalar or sequence).
        p_src_dst: source-to-destination delivery probability.

    Returns:
        ``(mean, variance, histogram)`` of the number of relays per
        packet.
    """
    rng = RngRegistry(seed).stream("relay-count-spread")
    hear = np.broadcast_to(np.asarray(p_hear_src, dtype=float),
                           (n_aux,)).copy()
    to_dst = np.broadcast_to(np.asarray(p_to_dst, dtype=float),
                             (n_aux,)).copy()
    aux_ids = tuple(range(1, n_aux + 1))
    src, dst = 100, 200
    table = {}
    for i, aux in enumerate(aux_ids):
        table[(src, aux)] = hear[i]
        table[(aux, dst)] = to_dst[i]
        table[(dst, aux)] = to_dst[i]
    table[(src, dst)] = p_src_dst
    table[(dst, src)] = p_src_dst

    def p(a, b):
        if a == b:
            return 1.0
        return table.get((a, b), 0.0)

    strat = make_strategy(strategy)
    relay_counts = np.zeros(n_packets, dtype=int)
    for k in range(n_packets):
        dst_got = rng.random() < p_src_dst
        count = 0
        for i, aux in enumerate(aux_ids):
            heard = rng.random() < hear[i]
            if not heard:
                continue
            ack_heard = dst_got and (rng.random() < to_dst[i])
            if ack_heard:
                continue
            r = strat.relay_probability(RelayContext(
                self_id=aux, aux_ids=aux_ids, src=src, dst=dst, p=p,
            ))
            if rng.random() < r:
                count += 1
        relay_counts[k] = count
    hist = np.bincount(relay_counts,
                       minlength=min(n_aux, 10) + 1)
    return (
        float(relay_counts.mean()),
        float(relay_counts.var()),
        hist,
    )
