"""Shared experiment plumbing.

Builders that assemble a :class:`~repro.core.protocol.ViFiSimulation`
over either testbed, the standard warmup/measurement timeline used by
every application experiment (protocols need a couple of seconds of
beacons before the first anchor exists), and the parallel multi-trip
runner: trips and seeds are embarrassingly parallel (every stochastic
process is keyed by ``(testbed seed, trip)`` through the named-stream
registry), so the figure benchmarks farm independent runs out to a
process pool and merge results deterministically.
"""

import hashlib
import logging
import multiprocessing
import os
import pickle
import time

from repro import store as repro_store
from repro.apps.workload import CbrWorkload, FlowRouter
from repro.core.protocol import ViFiConfig, ViFiSimulation
from repro.testbeds.lossmap import build_link_table_from_log
from repro.testbeds.vanlan import VEHICLE_ID, VanLanTestbed

__all__ = [
    "WARMUP_S",
    "SweepResult",
    "available_workers",
    "build_shared_banks",
    "dieselnet_protocol",
    "init_worker_state",
    "install_shared_banks",
    "memoized_beacon_log",
    "run_protocol_cbr",
    "run_trips",
    "shared_bank",
    "shared_bank_spec",
    "vanlan_cbr_trip",
    "vanlan_protocol",
    "worker_state",
]

log = logging.getLogger("repro.experiments")

#: Seconds of beaconing before applications start.
WARMUP_S = 3.0


def vanlan_protocol(testbed, trip, config=None, seed=0, bank=None,
                    sampling="centre", prefill=True, faults=None):
    """A protocol run over one VanLAN trip (deployment-style links).

    With the default bucket-centre ``sampling``, the whole trip's
    propagation buckets are prefilled at build time (``prefill=True``),
    so the run itself performs only array reads; a prebuilt *bank*
    (from :func:`build_shared_banks` / a ``run_trips`` initializer)
    skips even that build.  *prefill* may also be a float horizon in
    simulated seconds for runs known to stop early — the horizon never
    changes bucket values (they are pure functions of the bucket), only
    how much is precomputed.  ``sampling="first-query"`` restores the
    historical lazily-refreshed bank bitwise (and ignores *prefill*,
    which first-query sampling cannot support).

    Returns:
        ``(simulation, trip_duration_s)``.  The simulation exposes the
        propagation bank (or ``None``) as ``sim.link_bank``.
    """
    if not isinstance(testbed, VanLanTestbed):
        raise TypeError("expected a VanLanTestbed")
    motion = testbed.vehicle_motion()
    if bank is not None:
        table = testbed.build_link_table(trip, motion, bank=bank)
    else:
        if not prefill or sampling != "centre":
            prefill_s = None
        elif prefill is True:
            prefill_s = motion.route.duration
        else:
            prefill_s = min(float(prefill), motion.route.duration)
        table = testbed.build_link_table(trip, motion, sampling=sampling,
                                         prefill_s=prefill_s)
    sim = ViFiSimulation(
        testbed.deployment.bs_ids, table,
        config=config or ViFiConfig(), seed=seed, vehicle_id=VEHICLE_ID,
        faults=faults,
    )
    sim.link_bank = table.link_bank
    return sim, motion.route.duration


def dieselnet_protocol(beacon_log, rngs, config=None, seed=0,
                       bursty=True):
    """A trace-driven protocol run from a DieselNet beacon log.

    Implements the Section 5.1 methodology: per-second beacon loss
    ratios become the packet loss rates, inter-BS links follow the
    covisibility rule.

    By default the per-second rates steer a Gilbert-Elliott chain
    (``bursty=True``): the paper's own Figure 6(a) shows losses are
    bursty well below one-second granularity, and burst masking is the
    mechanism macrodiversity exploits, so erasing sub-second structure
    (losses i.i.d. within each second — the paper's literal stated
    assumption, available as ``bursty=False``) suppresses exactly the
    effect under study.  EXPERIMENTS.md discusses the difference.

    Returns:
        ``(simulation, log_duration_s)``.
    """
    table = build_link_table_from_log(
        beacon_log, rngs, vehicle_id=VEHICLE_ID, bursty=bursty
    )
    sim = ViFiSimulation(
        beacon_log.bs_ids, table,
        config=config or ViFiConfig(), seed=seed, vehicle_id=VEHICLE_ID,
    )
    return sim, float(beacon_log.n_secs)


def run_protocol_cbr(sim, duration_s, interval_s=0.1, size_bytes=500,
                     warmup_s=WARMUP_S, deadline_s=None):
    """Drive a CBR probe workload over a protocol run to completion.

    Returns:
        The finished :class:`~repro.apps.workload.CbrWorkload`.
    """
    router = FlowRouter(sim)
    cbr = CbrWorkload(sim, router, interval_s=interval_s,
                      size_bytes=size_bytes)
    cbr.start(warmup_s)
    cbr.stop(duration_s - 1.0)
    sim.run(until=duration_s + (0.0 if deadline_s is None else deadline_s))
    return cbr


# ----------------------------------------------------------------------
# Parallel multi-trip running
# ----------------------------------------------------------------------

def available_workers():
    """Worker processes this host can usefully run in parallel."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


class SweepResult(list):
    """Results of a :func:`run_trips` sweep, in task order.

    A plain list of per-task results (so every existing caller treats
    it as before), annotated with the sweep's fate:

    Attributes:
        partial: ``True`` when the sweep did not produce every result
            — interrupted (``KeyboardInterrupt``) or tasks exhausted
            their retry budget.  Missing slots hold ``None``.
        failures: tuple of ``(task_index, reason)`` for tasks that
            failed permanently.
        retries: total resubmissions performed (crashes, hangs, raised
            exceptions that later succeeded all count).
        resumed: results loaded from an on-disk checkpoint instead of
            being recomputed.
        store: result-store accounting for the sweep — a dict with
            ``hits`` / ``misses`` / ``verify_failures`` (plus
            quarantine/write bookkeeping and the degradation reason,
            if any).  All zeros when the sweep ran store-free.
    """

    partial = False
    failures = ()
    retries = 0
    resumed = 0
    store = None

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.store = repro_store.StoreStats().snapshot()


def _checkpoint_fingerprint(worker, tasks):
    """Identity of a sweep, so a checkpoint never feeds a different one.

    ``None`` (unpicklable tasks) disables fingerprint matching — the
    checkpoint is then keyed by path alone, which the caller opted
    into by passing ``checkpoint=``.
    """
    try:
        blob = pickle.dumps(
            (getattr(worker, "__module__", ""),
             getattr(worker, "__qualname__", repr(worker)), tasks),
            protocol=4,
        )
    except (pickle.PicklingError, TypeError, AttributeError,
            RecursionError) as exc:
        log.warning("sweep tasks are unpicklable (%s); checkpoint "
                    "fingerprint matching is disabled for this run",
                    exc)
        return None
    return hashlib.sha256(blob).hexdigest()


#: Record key under which sweep checkpoints are written (the store's
#: verified record format; see :mod:`repro.store`).
_CHECKPOINT_KEY = "run-trips-checkpoint"


def _checkpoint_load(path, fingerprint):
    """Completed ``{index: result}`` from *path*, if it matches.

    The checkpoint rides the result store's verified record format, so
    a truncated or bit-flipped checkpoint is *detected* (payload
    digest mismatch) and treated as a cold start with a warning —
    never a traceback into the sweep.
    """
    try:
        state = repro_store.read_record(path,
                                        expected_key=_CHECKPOINT_KEY)
    except FileNotFoundError:
        return {}
    except (repro_store.StoreCorruption, OSError) as exc:
        log.warning("sweep checkpoint %s is unreadable (%s); treating "
                    "the sweep as a cold start", path, exc)
        return {}
    if not isinstance(state, dict) or "results" not in state:
        return {}
    if state.get("fingerprint") != fingerprint:
        return {}
    return dict(state["results"])


def _checkpoint_store(path, fingerprint, results):
    """Durably persist completed results (tmp + fsync + rename).

    A checkpoint that cannot be written (disk full, read-only
    directory, unpicklable result) costs durability, not the sweep:
    the failure is logged and the run continues.
    """
    try:
        repro_store.write_record(
            path, {"fingerprint": fingerprint, "results": results},
            key=_CHECKPOINT_KEY,
        )
    except (OSError, pickle.PicklingError, TypeError,
            AttributeError) as exc:
        log.warning("sweep checkpoint %s could not be written (%s); "
                    "continuing without resume durability", path, exc)


def _spawn_safe_initializer(initializer, initargs):
    """Make ``(initializer, initargs)`` survive a spawn context.

    Under ``fork`` the initializer and its arguments ride process
    inheritance; ``spawn`` pickles them instead, so heavyweight or
    unpicklable worker state (prefilled propagation banks hold live
    generator objects and megabytes of pages) must either be rebuilt
    in-worker or skipped.  An initializer may publish a
    ``spawn_fallback`` attribute — a zero-argument callable used when
    its real arguments cannot be pickled (see
    :func:`install_shared_banks`, which degrades to per-task bank
    builds: slower, bit-identical).
    """
    try:
        pickle.dumps((initializer, tuple(initargs)), protocol=4)
        return initializer, tuple(initargs)
    except Exception as exc:  # repro-lint: allow[SILENT-EXCEPT] pickling arbitrary initargs can raise anything (user __reduce__); the failure routes to spawn_fallback or a chained TypeError, never vanishes
        fallback = getattr(initializer, "spawn_fallback", None)
        if fallback is not None:
            return fallback, ()
        raise TypeError(
            "initializer/initargs are not picklable under the spawn "
            "start method and the initializer declares no "
            "spawn_fallback"
        ) from exc


def _sweep_store_context(worker, initializer, initargs):
    """Canonical identity of a sweep for result-store key derivation.

    Covers the worker function and any initializer state that can
    change results (configs, seeds, testbeds).  Initializers that are
    result-neutral by contract — e.g. :func:`install_shared_banks`,
    whose shared banks are bit-identical to per-task builds — declare
    ``store_neutral = True`` and stay out of the digest, so warm-cache
    hits survive bank-sharing choices and worker counts alike.

    Raises:
        repro_store.Uncacheable: some initializer argument has no
            canonical token; the caller degrades to an uncached sweep.
    """
    parts = [("worker", repro_store.canonical_token(worker))]
    if initializer is not None and not getattr(initializer,
                                               "store_neutral", False):
        parts.append(("init", repro_store.canonical_token(initializer),
                      repro_store.canonical_token(tuple(initargs))))
    return parts


def _store_task(spec):
    """Worker-side wrapper: single-flight memoized task execution.

    Runs in the worker process (or inline on the serial path), so the
    per-key advisory lock serializes recomputation across every
    process asking for the same missing entry — including concurrent
    sweeps in other interpreters.  Returns a tagged tuple with the
    store-counter delta so the parent can account verification
    failures and writes that happened worker-side.
    """
    root, read_only, key, worker, task = spec
    store = repro_store.ResultStore(root, read_only=read_only)
    value = store.get_or_compute(key, lambda: worker(task))
    return "store-task", store.stats.snapshot(), value


def _merge_worker_store_stats(sweep_store, delta):
    """Fold a worker-side counter delta into the sweep's accounting.

    Hits/misses are *not* merged: the parent already counted this
    task's pre-read, and the worker's re-check is the same logical
    request.
    """
    sweep_store.verify_failures += int(delta.get("verify_failures", 0))
    sweep_store.quarantined += int(delta.get("quarantined", 0))
    sweep_store.writes += int(delta.get("writes", 0))
    sweep_store.write_skips += int(delta.get("write_skips", 0))
    if sweep_store.degraded is None and delta.get("degraded"):
        sweep_store.degraded = delta["degraded"]


def run_trips(worker, tasks, workers=None, chunksize=1,
              initializer=None, initargs=(), start_method=None,
              task_timeout_s=None, retries=0, retry_backoff_s=0.5,
              checkpoint=None, store=None):
    """Run independent per-trip tasks, optionally on a process pool.

    Every stochastic component draws from streams derived from
    ``(root seed, names)`` (see :class:`~repro.sim.rng.RngRegistry`),
    so a task's result depends only on its arguments — never on which
    worker runs it or in what order.  That is the determinism
    contract: ``run_trips(w, tasks, workers=k)`` returns exactly
    ``[w(t) for t in tasks]`` for every *k*, with results merged back
    in task order — and it extends to the resilience machinery: a
    retried, resumed, or re-pooled task reruns the same pure function
    on the same argument, so recovery never changes a result.

    Args:
        worker: a picklable module-level callable taking one task
            argument and returning a picklable result.
        tasks: sequence of picklable task arguments (typically
            ``(trip, seed)``-style tuples or dicts).  Keep tasks small
            — shared heavyweight state (testbeds, training traces)
            belongs in *initializer*/*initargs*, which ship once per
            worker instead of once per task.
        workers: process count; ``None`` uses the host's available
            cores, ``0``/``1`` runs serially in-process (no pool, no
            pickling).
        chunksize: kept for API compatibility; the per-task dispatcher
            supersedes chunked ``pool.map`` batching (tasks here are
            whole protocol runs, far heavier than dispatch overhead).
        initializer: optional per-worker setup callable (also invoked
            once in-process for the serial path, so serial and pooled
            runs see identical state).
        initargs: arguments for *initializer*.
        start_method: multiprocessing start method (``"fork"`` /
            ``"spawn"`` / ``"forkserver"``); ``None`` prefers fork
            (children share the already-imported modules).  Under a
            spawning method the initializer must be spawn-safe — see
            :func:`_spawn_safe_initializer`.
        task_timeout_s: per-task wall-clock budget.  A task that
            neither returns nor raises within it is presumed lost —
            the covering failure mode is a crashed or wedged worker
            process, which ``multiprocessing.Pool`` never reports —
            and is resubmitted (until *retries* is exhausted).  When
            every pool slot is presumed lost the pool itself is torn
            down and rebuilt.  ``None`` (default) disables the watch;
            pool runs then hang on a crashed worker exactly as
            ``pool.map`` always has, so sweeps that want crash
            resilience must set a budget.  Ignored on the serial path
            (an in-process task cannot be preempted).
        retries: resubmissions allowed per task (for raised
            exceptions, timeouts, and crashed workers alike).
        retry_backoff_s: initial backoff before a resubmission;
            doubles per attempt (0.5 s, 1 s, 2 s, ...).
        checkpoint: optional path for an on-disk checkpoint of
            completed task results (the store's verified record
            format, written atomically with fsync after every
            completion).  A rerun with the same worker and task list
            resumes from it — completed tasks are not recomputed —
            and the file is removed once every task has succeeded.  A
            truncated or corrupt checkpoint is detected and treated
            as a cold start with a warning.
        store: result-store participation.  ``None`` (default) uses
            the ambient store — the one installed via
            :func:`repro.store.set_default_store` or named by the
            ``REPRO_RESULT_STORE`` environment variable — and runs
            uncached when there is none (the historical behaviour).
            ``False`` disables caching outright (pinned benchmarks);
            a path or :class:`repro.store.ResultStore` opts in
            explicitly.  With a store, each task's result is
            content-addressed by (worker, initializer state, task,
            schema/code version): warm re-runs are pure cache reads,
            corrupt entries are quarantined and recomputed, and
            concurrent processes missing on the same key compute it
            once (single-flight).  A sweep whose identity cannot be
            canonically tokenized, or a store on failing media, logs
            one warning and runs uncached — caching never fails a
            sweep.

    Returns:
        :class:`SweepResult` — a list of results, one per task, in
        task order.  On ``KeyboardInterrupt`` the pool is terminated
        and joined (no orphaned workers) and the completed prefix is
        returned with ``partial=True`` instead of the exception
        propagating; permanently failed tasks leave ``None`` in their
        slot and are listed in ``failures``.
    """
    tasks = list(tasks)
    if workers is None:
        workers = available_workers()
    workers = min(int(workers), len(tasks)) if tasks else 0
    retries = max(int(retries), 0)

    store_obj = repro_store.resolve_store(store)
    store_keys = None
    if store_obj is not None:
        try:
            context = _sweep_store_context(worker, initializer, initargs)
            store_keys = [
                repro_store.result_key("run-trips", context, task)
                for task in tasks
            ]
        except repro_store.Uncacheable as exc:
            log.warning("sweep identity is not cacheable (%s); running "
                        "without the result store", exc)
            store_obj = None
    sweep_store = repro_store.StoreStats()
    store_call = None
    if store_obj is not None:
        store_call = (store_obj.root, store_obj.read_only, store_keys)

    fingerprint = None
    results = {}
    if checkpoint is not None:
        fingerprint = _checkpoint_fingerprint(worker, tasks)
        results = {
            i: r for i, r in _checkpoint_load(checkpoint,
                                              fingerprint).items()
            if isinstance(i, int) and 0 <= i < len(tasks)
        }
    resumed = len(results)

    # Warm-cache pre-pass: every task already in the store is a pure
    # read in the parent — a fully warm sweep never spins up a pool.
    if store_obj is not None:
        for i in range(len(tasks)):
            if i in results:
                continue
            status, value = store_obj._load(store_keys[i])
            if status == "hit":
                results[i] = value
                sweep_store.hits += 1
            else:
                sweep_store.misses += 1
                if status == "corrupt":
                    sweep_store.verify_failures += 1
                    sweep_store.quarantined += 1
                elif status == "error":
                    sweep_store.degraded = store_obj.stats.degraded

    def _finish(partial, failures, retry_count):
        out = SweepResult(results.get(i) for i in range(len(tasks)))
        out.partial = bool(partial) or len(results) < len(tasks)
        out.failures = tuple(failures)
        out.retries = retry_count
        out.resumed = resumed
        out.store = sweep_store.snapshot()
        if checkpoint is not None:
            if out.partial:
                if results:
                    _checkpoint_store(checkpoint, fingerprint, results)
            elif os.path.exists(checkpoint):
                os.remove(checkpoint)
        return out

    pending = [i for i in range(len(tasks)) if i not in results]
    if not pending:
        return _finish(False, (), 0)

    if workers <= 1:
        return _run_serial(worker, tasks, pending, results, initializer,
                           initargs, retries, retry_backoff_s,
                           checkpoint, fingerprint, _finish,
                           store_call, sweep_store)
    return _run_pooled(worker, tasks, pending, results,
                       min(workers, len(pending)), initializer,
                       initargs, start_method, task_timeout_s, retries,
                       retry_backoff_s, checkpoint, fingerprint,
                       _finish, store_call, sweep_store)


def _run_serial(worker, tasks, pending, results, initializer, initargs,
                retries, retry_backoff_s, checkpoint, fingerprint,
                finish, store_call=None, sweep_store=None):
    """In-process sweep: same retry/checkpoint semantics, no pool."""
    if initializer is not None:
        initializer(*initargs)
    failures = []
    retry_count = 0

    def _call(i):
        if store_call is None:
            return worker(tasks[i])
        root, read_only, keys = store_call
        _tag, delta, value = _store_task(
            (root, read_only, keys[i], worker, tasks[i])
        )
        _merge_worker_store_stats(sweep_store, delta)
        return value

    try:
        for i in pending:
            attempt = 0
            while True:
                try:
                    results[i] = _call(i)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:  # repro-lint: allow[SILENT-EXCEPT] task isolation: one bad task becomes a recorded failure/retry, not a dead sweep
                    attempt += 1
                    if attempt > retries:
                        failures.append((i, f"raised {exc!r}"))
                        break
                    retry_count += 1
                    time.sleep(retry_backoff_s * 2.0 ** (attempt - 1))
                else:
                    if checkpoint is not None:
                        _checkpoint_store(checkpoint, fingerprint,
                                          results)
                    break
    except KeyboardInterrupt:
        return finish(True, failures, retry_count)
    return finish(False, failures, retry_count)


def _run_pooled(worker, tasks, pending, results, workers, initializer,
                initargs, start_method, task_timeout_s, retries,
                retry_backoff_s, checkpoint, fingerprint, finish,
                store_call=None, sweep_store=None):
    """Process-pool sweep with crash/hang detection and retry.

    Tasks are dispatched individually (``apply_async``) so each has
    its own deadline; ``multiprocessing.Pool`` respawns a crashed
    worker but silently abandons its in-flight task, so the deadline
    is the *only* signal for both crashes and hangs.  A hung worker
    additionally wedges its pool slot; once every slot is presumed
    lost, the pool is terminated and rebuilt, and still-pending work
    resubmitted.
    """
    # fork shares the already-imported modules with the children;
    # spawn (the only option on some platforms) re-imports them.
    methods = multiprocessing.get_all_start_methods()
    if start_method is None:
        start_method = "fork" if "fork" in methods else "spawn"
    elif start_method not in methods:
        raise ValueError(
            f"start method {start_method!r} not available "
            f"(have {methods})"
        )
    if start_method != "fork" and initializer is not None:
        initializer, initargs = _spawn_safe_initializer(initializer,
                                                        initargs)
    ctx = multiprocessing.get_context(start_method)

    failures = []
    retry_count = 0
    lost_slots = 0
    attempts = {i: 0 for i in pending}
    inflight = {}   # index -> (AsyncResult, deadline | None)
    waiting = {}    # index -> earliest resubmission time (backoff)

    pool = ctx.Pool(processes=workers, initializer=initializer,
                    initargs=tuple(initargs))

    def submit(i, count_attempt=True):
        if count_attempt:
            attempts[i] += 1
        deadline = (None if task_timeout_s is None
                    else time.monotonic() + float(task_timeout_s))
        if store_call is None:
            handle = pool.apply_async(worker, (tasks[i],))
        else:
            root, read_only, keys = store_call
            handle = pool.apply_async(
                _store_task,
                ((root, read_only, keys[i], worker, tasks[i]),),
            )
        inflight[i] = (handle, deadline)

    def fail_or_retry(i, reason):
        nonlocal retry_count
        if attempts[i] > retries:
            failures.append((i, reason))
            return
        retry_count += 1
        backoff = retry_backoff_s * 2.0 ** (attempts[i] - 1)
        waiting[i] = time.monotonic() + backoff

    try:
        for i in pending:
            submit(i)
        while inflight or waiting:
            progressed = False
            now = time.monotonic()
            for i in [i for i, t in waiting.items() if t <= now]:
                del waiting[i]
                submit(i)
                progressed = True
            for i in list(inflight):
                handle, deadline = inflight[i]
                if handle.ready():
                    del inflight[i]
                    progressed = True
                    try:
                        value = handle.get()
                    except Exception as exc:  # repro-lint: allow[SILENT-EXCEPT] task isolation: a worker exception becomes a recorded failure/retry, not a dead sweep
                        fail_or_retry(i, f"raised {exc!r}")
                    else:
                        if store_call is not None:
                            _tag, delta, value = value
                            _merge_worker_store_stats(sweep_store,
                                                      delta)
                        results[i] = value
                        if checkpoint is not None:
                            _checkpoint_store(checkpoint, fingerprint,
                                              results)
                elif deadline is not None and now >= deadline:
                    # Crashed worker (task abandoned) or hung worker
                    # (slot wedged until the pool dies) — either way
                    # the result will never arrive.
                    del inflight[i]
                    lost_slots += 1
                    progressed = True
                    fail_or_retry(
                        i, f"timed out after {task_timeout_s} s"
                    )
            if lost_slots >= workers and (inflight or waiting):
                # Every slot presumed wedged: only a fresh pool can
                # make progress.  In-flight tasks did not fail — they
                # were on the doomed pool — so resubmission does not
                # charge their retry budget.
                resubmit = list(inflight)
                inflight.clear()
                pool.terminate()
                pool.join()
                pool = ctx.Pool(processes=workers,
                                initializer=initializer,
                                initargs=tuple(initargs))
                lost_slots = 0
                for i in resubmit:
                    submit(i, count_attempt=False)
                progressed = True
            if not progressed:
                time.sleep(0.005)
    except KeyboardInterrupt:
        pool.terminate()
        pool.join()
        return finish(True, failures, retry_count)
    # terminate (not close): a wedged worker from a timed-out task
    # would make close+join wait forever; every result is already in
    # hand, matching the historical ``with Pool(...)`` exit behaviour.
    pool.terminate()
    pool.join()
    return finish(False, failures, retry_count)


#: Heavyweight per-worker state (testbeds, variant maps) shipped once
#: per process through :func:`run_trips`'s *initializer* instead of
#: once per task.  One shared slot serves every experiment module:
#: pools are created per sweep (worker processes never interleave
#: sweeps) and the serial path reads the state within the same call.
_worker_state = None


def init_worker_state(*state):
    """``run_trips`` initializer: stash *state* for the worker."""
    global _worker_state
    _worker_state = state


def worker_state():
    """The state tuple the current sweep's initializer shipped."""
    return _worker_state


# ----------------------------------------------------------------------
# Cross-run propagation-bank sharing
# ----------------------------------------------------------------------
#
# Under bucket-centre sampling a prefilled LinkBank is a pure function
# of (testbed seed, trip, quantum): every protocol seed and policy
# variant that replays the same trip reads identical bucket values.  A
# sweep therefore builds each needed bank once in the parent and ships
# the registry through ``run_trips``'s initializer — under the fork
# start method the workers inherit the prefilled pages instead of
# rebuilding the propagation stack per task, and the serial path
# installs the same registry in-process, so shared and per-task banks
# are interchangeable bit for bit.

_shared_banks = {}


def install_shared_banks(banks):
    """``run_trips`` initializer: install the shared-bank registry.

    *banks* maps ``(testbed_seed, trip)`` to a prefilled
    :class:`~repro.net.propagation.LinkBank`.  Pass ``{}`` to clear.

    Spawn compatibility: under a spawning start method the registry
    cannot ride fork inheritance, so *banks* may instead be the small
    picklable spec from :func:`shared_bank_spec` — the worker then
    rebuilds the banks in-process (bucket values are pure functions of
    ``(testbed seed, trip)``, so rebuilt and inherited banks are
    bit-identical).  If a sweep ships real bank objects that fail to
    pickle, :func:`run_trips` degrades to this initializer's
    ``spawn_fallback`` — an empty registry, i.e. per-task bank builds:
    slower, same bits.
    """
    global _shared_banks
    if isinstance(banks, tuple) and banks and banks[0] == "rebuild-banks":
        _, testbed_seed, trips, prefill = banks
        banks = build_shared_banks(testbed_seed, trips, prefill=prefill)
    _shared_banks = dict(banks)


def _no_shared_banks():
    """Spawn fallback: run the sweep without the shared registry."""
    install_shared_banks({})


install_shared_banks.spawn_fallback = _no_shared_banks
#: Shared banks are bit-identical to per-task builds (the standing
#: perf-gate contract), so the registry never enters result-store key
#: derivation: warm hits survive any bank-sharing choice.
install_shared_banks.store_neutral = True


def shared_bank_spec(testbed_seed, trips, prefill=True):
    """A picklable rebuild-in-worker spec for :func:`install_shared_banks`.

    Use as the ``initargs`` payload when a sweep must run under the
    spawn start method: instead of pickling megabytes of prefilled
    bank pages per worker, each worker rebuilds them once.
    """
    return ("rebuild-banks", int(testbed_seed),
            tuple(int(t) for t in trips), bool(prefill))


def shared_bank(testbed_seed, trip):
    """The installed shared bank for ``(testbed_seed, trip)``, if any."""
    return _shared_banks.get((int(testbed_seed), int(trip)))


def build_shared_banks(testbed_seed, trips, prefill=True, store=None):
    """Build one prefilled bank per trip for a ``run_trips`` sweep.

    With a result store (explicit, installed, or named by
    ``REPRO_RESULT_STORE``), each prefilled bank is memoized on disk
    under (testbed identity, trip, prefill horizon): warm sweeps load
    the bucket pages instead of recomputing the propagation stack,
    with the store's verify-on-read discipline — a corrupt bank entry
    is quarantined and rebuilt (bucket values are pure functions of
    the key, so a rebuild is bit-identical).

    Returns:
        Mapping ``(testbed_seed, trip) -> LinkBank`` for
        :func:`install_shared_banks`, each prefilled to the trip's
        route duration when *prefill* is set.
    """
    store_obj = repro_store.resolve_store(store)
    testbed = VanLanTestbed(seed=int(testbed_seed))
    banks = {}
    for trip in trips:
        motion = testbed.vehicle_motion()
        prefill_s = motion.route.duration if prefill else None

        def _build(trip=trip, motion=motion, prefill_s=prefill_s):
            return testbed.build_link_bank(trip, motion,
                                           prefill_s=prefill_s)

        if store_obj is None:
            bank = _build()
        else:
            key = repro_store.result_key(
                "vanlan-link-bank", testbed.cache_token(), int(trip),
                prefill_s,
            )
            bank = store_obj.get_or_compute(key, _build)
        banks[(int(testbed_seed), int(trip))] = bank
    return banks


def memoized_beacon_log(testbed, day, n_tours=1, store=None):
    """A DieselNet beacon log, memoized through the result store.

    Trace generation is a pure function of (testbed identity, day,
    tours), so with a store every worker and every re-run after the
    first loads the log instead of regenerating it — verified on
    read, quarantined and regenerated when corrupt.  Without a store
    (the default) this is exactly ``testbed.generate_beacon_log``.
    """
    store_obj = repro_store.resolve_store(store)
    if store_obj is None:
        return testbed.generate_beacon_log(day, n_tours=n_tours)
    try:
        key = repro_store.result_key(
            "dieselnet-beacon-log", testbed.cache_token(), int(day),
            int(n_tours),
        )
    except (repro_store.Uncacheable, AttributeError) as exc:
        log.warning("beacon log for %r is not cacheable (%s); "
                    "generating fresh", testbed, exc)
        return testbed.generate_beacon_log(day, n_tours=n_tours)
    return store_obj.get_or_compute(
        key, lambda: testbed.generate_beacon_log(day, n_tours=n_tours)
    )


def vanlan_cbr_trip(task):
    """Worker: one VanLAN CBR protocol run, summarized picklably.

    Args:
        task: mapping with keys ``trip`` and optionally
            ``testbed_seed`` (default 0), ``seed`` (default: trip),
            ``duration_s`` (default 60), ``estimator`` (``"array"`` /
            ``"dict"``; default: the stock config — lets sweeps
            compare the estimator backends like-for-like).

    Returns:
        dict with the delivery sequences, event count, and per-kind
        transmission counters of the run — everything the scaling
        benchmark needs to check parallel-vs-serial equality — plus
        ``bank_shared``: whether the propagation bank came from the
        installed shared registry (shared and freshly built banks are
        bit-identical; the flag only reports the reuse).
    """
    trip = int(task["trip"])
    seed = int(task.get("seed", trip))
    duration = float(task.get("duration_s", 60.0))
    testbed_seed = int(task.get("testbed_seed", 0))
    config = None
    if "estimator" in task:
        config = ViFiConfig(estimator=str(task["estimator"]))
    testbed = VanLanTestbed(seed=testbed_seed)
    bank = shared_bank(testbed_seed, trip)
    # Without a shared bank, prefill only what the task will simulate
    # (the horizon never changes bucket values, only build cost).
    sim, _ = vanlan_protocol(testbed, trip=trip, seed=seed, bank=bank,
                             config=config, prefill=duration + 1.0)
    cbr = run_protocol_cbr(sim, duration)
    return {
        "trip": trip,
        "seed": seed,
        "events": sim.sim.events_processed,
        "up_deliveries": sorted(cbr.up_deliveries.items()),
        "down_deliveries": sorted(cbr.down_deliveries.items()),
        "tx_count": sorted(sim.medium.tx_count.items()),
        "bank_shared": bank is not None,
    }
