"""Shared experiment plumbing.

Builders that assemble a :class:`~repro.core.protocol.ViFiSimulation`
over either testbed, and the standard warmup/measurement timeline used
by every application experiment (protocols need a couple of seconds of
beacons before the first anchor exists).
"""

from repro.apps.workload import CbrWorkload, FlowRouter
from repro.core.protocol import ViFiConfig, ViFiSimulation
from repro.testbeds.lossmap import build_link_table_from_log
from repro.testbeds.vanlan import VEHICLE_ID, VanLanTestbed

__all__ = [
    "WARMUP_S",
    "dieselnet_protocol",
    "run_protocol_cbr",
    "vanlan_protocol",
]

#: Seconds of beaconing before applications start.
WARMUP_S = 3.0


def vanlan_protocol(testbed, trip, config=None, seed=0):
    """A protocol run over one VanLAN trip (deployment-style links).

    Returns:
        ``(simulation, trip_duration_s)``.
    """
    if not isinstance(testbed, VanLanTestbed):
        raise TypeError("expected a VanLanTestbed")
    motion = testbed.vehicle_motion()
    table = testbed.build_link_table(trip, motion)
    sim = ViFiSimulation(
        testbed.deployment.bs_ids, table,
        config=config or ViFiConfig(), seed=seed, vehicle_id=VEHICLE_ID,
    )
    return sim, motion.route.duration


def dieselnet_protocol(beacon_log, rngs, config=None, seed=0,
                       bursty=True):
    """A trace-driven protocol run from a DieselNet beacon log.

    Implements the Section 5.1 methodology: per-second beacon loss
    ratios become the packet loss rates, inter-BS links follow the
    covisibility rule.

    By default the per-second rates steer a Gilbert-Elliott chain
    (``bursty=True``): the paper's own Figure 6(a) shows losses are
    bursty well below one-second granularity, and burst masking is the
    mechanism macrodiversity exploits, so erasing sub-second structure
    (losses i.i.d. within each second — the paper's literal stated
    assumption, available as ``bursty=False``) suppresses exactly the
    effect under study.  EXPERIMENTS.md discusses the difference.

    Returns:
        ``(simulation, log_duration_s)``.
    """
    table = build_link_table_from_log(
        beacon_log, rngs, vehicle_id=VEHICLE_ID, bursty=bursty
    )
    sim = ViFiSimulation(
        beacon_log.bs_ids, table,
        config=config or ViFiConfig(), seed=seed, vehicle_id=VEHICLE_ID,
    )
    return sim, float(beacon_log.n_secs)


def run_protocol_cbr(sim, duration_s, interval_s=0.1, size_bytes=500,
                     warmup_s=WARMUP_S, deadline_s=None):
    """Drive a CBR probe workload over a protocol run to completion.

    Returns:
        The finished :class:`~repro.apps.workload.CbrWorkload`.
    """
    router = FlowRouter(sim)
    cbr = CbrWorkload(sim, router, interval_s=interval_s,
                      size_bytes=size_bytes)
    cbr.start(warmup_s)
    cbr.stop(duration_s - 1.0)
    sim.run(until=duration_s + (0.0 if deadline_s is None else deadline_s))
    return cbr
