"""Shared experiment plumbing.

Builders that assemble a :class:`~repro.core.protocol.ViFiSimulation`
over either testbed, the standard warmup/measurement timeline used by
every application experiment (protocols need a couple of seconds of
beacons before the first anchor exists), and the parallel multi-trip
runner: trips and seeds are embarrassingly parallel (every stochastic
process is keyed by ``(testbed seed, trip)`` through the named-stream
registry), so the figure benchmarks farm independent runs out to a
process pool and merge results deterministically.
"""

import hashlib
import multiprocessing
import os
import pickle
import time

from repro.apps.workload import CbrWorkload, FlowRouter
from repro.core.protocol import ViFiConfig, ViFiSimulation
from repro.testbeds.lossmap import build_link_table_from_log
from repro.testbeds.vanlan import VEHICLE_ID, VanLanTestbed

__all__ = [
    "WARMUP_S",
    "SweepResult",
    "available_workers",
    "build_shared_banks",
    "dieselnet_protocol",
    "init_worker_state",
    "install_shared_banks",
    "run_protocol_cbr",
    "run_trips",
    "shared_bank",
    "shared_bank_spec",
    "vanlan_cbr_trip",
    "vanlan_protocol",
    "worker_state",
]

#: Seconds of beaconing before applications start.
WARMUP_S = 3.0


def vanlan_protocol(testbed, trip, config=None, seed=0, bank=None,
                    sampling="centre", prefill=True, faults=None):
    """A protocol run over one VanLAN trip (deployment-style links).

    With the default bucket-centre ``sampling``, the whole trip's
    propagation buckets are prefilled at build time (``prefill=True``),
    so the run itself performs only array reads; a prebuilt *bank*
    (from :func:`build_shared_banks` / a ``run_trips`` initializer)
    skips even that build.  *prefill* may also be a float horizon in
    simulated seconds for runs known to stop early — the horizon never
    changes bucket values (they are pure functions of the bucket), only
    how much is precomputed.  ``sampling="first-query"`` restores the
    historical lazily-refreshed bank bitwise (and ignores *prefill*,
    which first-query sampling cannot support).

    Returns:
        ``(simulation, trip_duration_s)``.  The simulation exposes the
        propagation bank (or ``None``) as ``sim.link_bank``.
    """
    if not isinstance(testbed, VanLanTestbed):
        raise TypeError("expected a VanLanTestbed")
    motion = testbed.vehicle_motion()
    if bank is not None:
        table = testbed.build_link_table(trip, motion, bank=bank)
    else:
        if not prefill or sampling != "centre":
            prefill_s = None
        elif prefill is True:
            prefill_s = motion.route.duration
        else:
            prefill_s = min(float(prefill), motion.route.duration)
        table = testbed.build_link_table(trip, motion, sampling=sampling,
                                         prefill_s=prefill_s)
    sim = ViFiSimulation(
        testbed.deployment.bs_ids, table,
        config=config or ViFiConfig(), seed=seed, vehicle_id=VEHICLE_ID,
        faults=faults,
    )
    sim.link_bank = table.link_bank
    return sim, motion.route.duration


def dieselnet_protocol(beacon_log, rngs, config=None, seed=0,
                       bursty=True):
    """A trace-driven protocol run from a DieselNet beacon log.

    Implements the Section 5.1 methodology: per-second beacon loss
    ratios become the packet loss rates, inter-BS links follow the
    covisibility rule.

    By default the per-second rates steer a Gilbert-Elliott chain
    (``bursty=True``): the paper's own Figure 6(a) shows losses are
    bursty well below one-second granularity, and burst masking is the
    mechanism macrodiversity exploits, so erasing sub-second structure
    (losses i.i.d. within each second — the paper's literal stated
    assumption, available as ``bursty=False``) suppresses exactly the
    effect under study.  EXPERIMENTS.md discusses the difference.

    Returns:
        ``(simulation, log_duration_s)``.
    """
    table = build_link_table_from_log(
        beacon_log, rngs, vehicle_id=VEHICLE_ID, bursty=bursty
    )
    sim = ViFiSimulation(
        beacon_log.bs_ids, table,
        config=config or ViFiConfig(), seed=seed, vehicle_id=VEHICLE_ID,
    )
    return sim, float(beacon_log.n_secs)


def run_protocol_cbr(sim, duration_s, interval_s=0.1, size_bytes=500,
                     warmup_s=WARMUP_S, deadline_s=None):
    """Drive a CBR probe workload over a protocol run to completion.

    Returns:
        The finished :class:`~repro.apps.workload.CbrWorkload`.
    """
    router = FlowRouter(sim)
    cbr = CbrWorkload(sim, router, interval_s=interval_s,
                      size_bytes=size_bytes)
    cbr.start(warmup_s)
    cbr.stop(duration_s - 1.0)
    sim.run(until=duration_s + (0.0 if deadline_s is None else deadline_s))
    return cbr


# ----------------------------------------------------------------------
# Parallel multi-trip running
# ----------------------------------------------------------------------

def available_workers():
    """Worker processes this host can usefully run in parallel."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


class SweepResult(list):
    """Results of a :func:`run_trips` sweep, in task order.

    A plain list of per-task results (so every existing caller treats
    it as before), annotated with the sweep's fate:

    Attributes:
        partial: ``True`` when the sweep did not produce every result
            — interrupted (``KeyboardInterrupt``) or tasks exhausted
            their retry budget.  Missing slots hold ``None``.
        failures: tuple of ``(task_index, reason)`` for tasks that
            failed permanently.
        retries: total resubmissions performed (crashes, hangs, raised
            exceptions that later succeeded all count).
        resumed: results loaded from an on-disk checkpoint instead of
            being recomputed.
    """

    partial = False
    failures = ()
    retries = 0
    resumed = 0


def _checkpoint_fingerprint(worker, tasks):
    """Identity of a sweep, so a checkpoint never feeds a different one.

    ``None`` (unpicklable tasks) disables fingerprint matching — the
    checkpoint is then keyed by path alone, which the caller opted
    into by passing ``checkpoint=``.
    """
    try:
        blob = pickle.dumps(
            (getattr(worker, "__module__", ""),
             getattr(worker, "__qualname__", repr(worker)), tasks),
            protocol=4,
        )
    except Exception:
        return None
    return hashlib.sha256(blob).hexdigest()


def _checkpoint_load(path, fingerprint):
    """Completed ``{index: result}`` from *path*, if it matches."""
    try:
        with open(path, "rb") as fh:
            state = pickle.load(fh)
    except (OSError, EOFError, pickle.UnpicklingError):
        return {}
    if not isinstance(state, dict) or "results" not in state:
        return {}
    if state.get("fingerprint") != fingerprint:
        return {}
    return dict(state["results"])


def _checkpoint_store(path, fingerprint, results):
    """Atomically persist completed results (tmp file + rename)."""
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        pickle.dump({"fingerprint": fingerprint, "results": results},
                    fh, protocol=4)
    os.replace(tmp, path)


def _spawn_safe_initializer(initializer, initargs):
    """Make ``(initializer, initargs)`` survive a spawn context.

    Under ``fork`` the initializer and its arguments ride process
    inheritance; ``spawn`` pickles them instead, so heavyweight or
    unpicklable worker state (prefilled propagation banks hold live
    generator objects and megabytes of pages) must either be rebuilt
    in-worker or skipped.  An initializer may publish a
    ``spawn_fallback`` attribute — a zero-argument callable used when
    its real arguments cannot be pickled (see
    :func:`install_shared_banks`, which degrades to per-task bank
    builds: slower, bit-identical).
    """
    try:
        pickle.dumps((initializer, tuple(initargs)), protocol=4)
        return initializer, tuple(initargs)
    except Exception as exc:
        fallback = getattr(initializer, "spawn_fallback", None)
        if fallback is not None:
            return fallback, ()
        raise TypeError(
            "initializer/initargs are not picklable under the spawn "
            "start method and the initializer declares no "
            "spawn_fallback"
        ) from exc


def run_trips(worker, tasks, workers=None, chunksize=1,
              initializer=None, initargs=(), start_method=None,
              task_timeout_s=None, retries=0, retry_backoff_s=0.5,
              checkpoint=None):
    """Run independent per-trip tasks, optionally on a process pool.

    Every stochastic component draws from streams derived from
    ``(root seed, names)`` (see :class:`~repro.sim.rng.RngRegistry`),
    so a task's result depends only on its arguments — never on which
    worker runs it or in what order.  That is the determinism
    contract: ``run_trips(w, tasks, workers=k)`` returns exactly
    ``[w(t) for t in tasks]`` for every *k*, with results merged back
    in task order — and it extends to the resilience machinery: a
    retried, resumed, or re-pooled task reruns the same pure function
    on the same argument, so recovery never changes a result.

    Args:
        worker: a picklable module-level callable taking one task
            argument and returning a picklable result.
        tasks: sequence of picklable task arguments (typically
            ``(trip, seed)``-style tuples or dicts).  Keep tasks small
            — shared heavyweight state (testbeds, training traces)
            belongs in *initializer*/*initargs*, which ship once per
            worker instead of once per task.
        workers: process count; ``None`` uses the host's available
            cores, ``0``/``1`` runs serially in-process (no pool, no
            pickling).
        chunksize: kept for API compatibility; the per-task dispatcher
            supersedes chunked ``pool.map`` batching (tasks here are
            whole protocol runs, far heavier than dispatch overhead).
        initializer: optional per-worker setup callable (also invoked
            once in-process for the serial path, so serial and pooled
            runs see identical state).
        initargs: arguments for *initializer*.
        start_method: multiprocessing start method (``"fork"`` /
            ``"spawn"`` / ``"forkserver"``); ``None`` prefers fork
            (children share the already-imported modules).  Under a
            spawning method the initializer must be spawn-safe — see
            :func:`_spawn_safe_initializer`.
        task_timeout_s: per-task wall-clock budget.  A task that
            neither returns nor raises within it is presumed lost —
            the covering failure mode is a crashed or wedged worker
            process, which ``multiprocessing.Pool`` never reports —
            and is resubmitted (until *retries* is exhausted).  When
            every pool slot is presumed lost the pool itself is torn
            down and rebuilt.  ``None`` (default) disables the watch;
            pool runs then hang on a crashed worker exactly as
            ``pool.map`` always has, so sweeps that want crash
            resilience must set a budget.  Ignored on the serial path
            (an in-process task cannot be preempted).
        retries: resubmissions allowed per task (for raised
            exceptions, timeouts, and crashed workers alike).
        retry_backoff_s: initial backoff before a resubmission;
            doubles per attempt (0.5 s, 1 s, 2 s, ...).
        checkpoint: optional path for an on-disk checkpoint of
            completed task results (pickle, written atomically after
            every completion).  A rerun with the same worker and task
            list resumes from it — completed tasks are not recomputed
            — and the file is removed once every task has succeeded.

    Returns:
        :class:`SweepResult` — a list of results, one per task, in
        task order.  On ``KeyboardInterrupt`` the pool is terminated
        and joined (no orphaned workers) and the completed prefix is
        returned with ``partial=True`` instead of the exception
        propagating; permanently failed tasks leave ``None`` in their
        slot and are listed in ``failures``.
    """
    tasks = list(tasks)
    if workers is None:
        workers = available_workers()
    workers = min(int(workers), len(tasks)) if tasks else 0
    retries = max(int(retries), 0)

    fingerprint = None
    results = {}
    if checkpoint is not None:
        fingerprint = _checkpoint_fingerprint(worker, tasks)
        results = {
            i: r for i, r in _checkpoint_load(checkpoint,
                                              fingerprint).items()
            if isinstance(i, int) and 0 <= i < len(tasks)
        }
    resumed = len(results)

    def _finish(partial, failures, retry_count):
        out = SweepResult(results.get(i) for i in range(len(tasks)))
        out.partial = bool(partial) or len(results) < len(tasks)
        out.failures = tuple(failures)
        out.retries = retry_count
        out.resumed = resumed
        if checkpoint is not None:
            if out.partial:
                if results:
                    _checkpoint_store(checkpoint, fingerprint, results)
            elif os.path.exists(checkpoint):
                os.remove(checkpoint)
        return out

    pending = [i for i in range(len(tasks)) if i not in results]
    if not pending:
        return _finish(False, (), 0)

    if workers <= 1:
        return _run_serial(worker, tasks, pending, results, initializer,
                           initargs, retries, retry_backoff_s,
                           checkpoint, fingerprint, _finish)
    return _run_pooled(worker, tasks, pending, results,
                       min(workers, len(pending)), initializer,
                       initargs, start_method, task_timeout_s, retries,
                       retry_backoff_s, checkpoint, fingerprint,
                       _finish)


def _run_serial(worker, tasks, pending, results, initializer, initargs,
                retries, retry_backoff_s, checkpoint, fingerprint,
                finish):
    """In-process sweep: same retry/checkpoint semantics, no pool."""
    if initializer is not None:
        initializer(*initargs)
    failures = []
    retry_count = 0
    try:
        for i in pending:
            attempt = 0
            while True:
                try:
                    results[i] = worker(tasks[i])
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    attempt += 1
                    if attempt > retries:
                        failures.append((i, f"raised {exc!r}"))
                        break
                    retry_count += 1
                    time.sleep(retry_backoff_s * 2.0 ** (attempt - 1))
                else:
                    if checkpoint is not None:
                        _checkpoint_store(checkpoint, fingerprint,
                                          results)
                    break
    except KeyboardInterrupt:
        return finish(True, failures, retry_count)
    return finish(False, failures, retry_count)


def _run_pooled(worker, tasks, pending, results, workers, initializer,
                initargs, start_method, task_timeout_s, retries,
                retry_backoff_s, checkpoint, fingerprint, finish):
    """Process-pool sweep with crash/hang detection and retry.

    Tasks are dispatched individually (``apply_async``) so each has
    its own deadline; ``multiprocessing.Pool`` respawns a crashed
    worker but silently abandons its in-flight task, so the deadline
    is the *only* signal for both crashes and hangs.  A hung worker
    additionally wedges its pool slot; once every slot is presumed
    lost, the pool is terminated and rebuilt, and still-pending work
    resubmitted.
    """
    # fork shares the already-imported modules with the children;
    # spawn (the only option on some platforms) re-imports them.
    methods = multiprocessing.get_all_start_methods()
    if start_method is None:
        start_method = "fork" if "fork" in methods else "spawn"
    elif start_method not in methods:
        raise ValueError(
            f"start method {start_method!r} not available "
            f"(have {methods})"
        )
    if start_method != "fork" and initializer is not None:
        initializer, initargs = _spawn_safe_initializer(initializer,
                                                        initargs)
    ctx = multiprocessing.get_context(start_method)

    failures = []
    retry_count = 0
    lost_slots = 0
    attempts = {i: 0 for i in pending}
    inflight = {}   # index -> (AsyncResult, deadline | None)
    waiting = {}    # index -> earliest resubmission time (backoff)

    pool = ctx.Pool(processes=workers, initializer=initializer,
                    initargs=tuple(initargs))

    def submit(i, count_attempt=True):
        if count_attempt:
            attempts[i] += 1
        deadline = (None if task_timeout_s is None
                    else time.monotonic() + float(task_timeout_s))
        inflight[i] = (pool.apply_async(worker, (tasks[i],)), deadline)

    def fail_or_retry(i, reason):
        nonlocal retry_count
        if attempts[i] > retries:
            failures.append((i, reason))
            return
        retry_count += 1
        backoff = retry_backoff_s * 2.0 ** (attempts[i] - 1)
        waiting[i] = time.monotonic() + backoff

    try:
        for i in pending:
            submit(i)
        while inflight or waiting:
            progressed = False
            now = time.monotonic()
            for i in [i for i, t in waiting.items() if t <= now]:
                del waiting[i]
                submit(i)
                progressed = True
            for i in list(inflight):
                handle, deadline = inflight[i]
                if handle.ready():
                    del inflight[i]
                    progressed = True
                    try:
                        results[i] = handle.get()
                    except Exception as exc:
                        fail_or_retry(i, f"raised {exc!r}")
                    else:
                        if checkpoint is not None:
                            _checkpoint_store(checkpoint, fingerprint,
                                              results)
                elif deadline is not None and now >= deadline:
                    # Crashed worker (task abandoned) or hung worker
                    # (slot wedged until the pool dies) — either way
                    # the result will never arrive.
                    del inflight[i]
                    lost_slots += 1
                    progressed = True
                    fail_or_retry(
                        i, f"timed out after {task_timeout_s} s"
                    )
            if lost_slots >= workers and (inflight or waiting):
                # Every slot presumed wedged: only a fresh pool can
                # make progress.  In-flight tasks did not fail — they
                # were on the doomed pool — so resubmission does not
                # charge their retry budget.
                resubmit = list(inflight)
                inflight.clear()
                pool.terminate()
                pool.join()
                pool = ctx.Pool(processes=workers,
                                initializer=initializer,
                                initargs=tuple(initargs))
                lost_slots = 0
                for i in resubmit:
                    submit(i, count_attempt=False)
                progressed = True
            if not progressed:
                time.sleep(0.005)
    except KeyboardInterrupt:
        pool.terminate()
        pool.join()
        return finish(True, failures, retry_count)
    # terminate (not close): a wedged worker from a timed-out task
    # would make close+join wait forever; every result is already in
    # hand, matching the historical ``with Pool(...)`` exit behaviour.
    pool.terminate()
    pool.join()
    return finish(False, failures, retry_count)


#: Heavyweight per-worker state (testbeds, variant maps) shipped once
#: per process through :func:`run_trips`'s *initializer* instead of
#: once per task.  One shared slot serves every experiment module:
#: pools are created per sweep (worker processes never interleave
#: sweeps) and the serial path reads the state within the same call.
_worker_state = None


def init_worker_state(*state):
    """``run_trips`` initializer: stash *state* for the worker."""
    global _worker_state
    _worker_state = state


def worker_state():
    """The state tuple the current sweep's initializer shipped."""
    return _worker_state


# ----------------------------------------------------------------------
# Cross-run propagation-bank sharing
# ----------------------------------------------------------------------
#
# Under bucket-centre sampling a prefilled LinkBank is a pure function
# of (testbed seed, trip, quantum): every protocol seed and policy
# variant that replays the same trip reads identical bucket values.  A
# sweep therefore builds each needed bank once in the parent and ships
# the registry through ``run_trips``'s initializer — under the fork
# start method the workers inherit the prefilled pages instead of
# rebuilding the propagation stack per task, and the serial path
# installs the same registry in-process, so shared and per-task banks
# are interchangeable bit for bit.

_shared_banks = {}


def install_shared_banks(banks):
    """``run_trips`` initializer: install the shared-bank registry.

    *banks* maps ``(testbed_seed, trip)`` to a prefilled
    :class:`~repro.net.propagation.LinkBank`.  Pass ``{}`` to clear.

    Spawn compatibility: under a spawning start method the registry
    cannot ride fork inheritance, so *banks* may instead be the small
    picklable spec from :func:`shared_bank_spec` — the worker then
    rebuilds the banks in-process (bucket values are pure functions of
    ``(testbed seed, trip)``, so rebuilt and inherited banks are
    bit-identical).  If a sweep ships real bank objects that fail to
    pickle, :func:`run_trips` degrades to this initializer's
    ``spawn_fallback`` — an empty registry, i.e. per-task bank builds:
    slower, same bits.
    """
    global _shared_banks
    if isinstance(banks, tuple) and banks and banks[0] == "rebuild-banks":
        _, testbed_seed, trips, prefill = banks
        banks = build_shared_banks(testbed_seed, trips, prefill=prefill)
    _shared_banks = dict(banks)


def _no_shared_banks():
    """Spawn fallback: run the sweep without the shared registry."""
    install_shared_banks({})


install_shared_banks.spawn_fallback = _no_shared_banks


def shared_bank_spec(testbed_seed, trips, prefill=True):
    """A picklable rebuild-in-worker spec for :func:`install_shared_banks`.

    Use as the ``initargs`` payload when a sweep must run under the
    spawn start method: instead of pickling megabytes of prefilled
    bank pages per worker, each worker rebuilds them once.
    """
    return ("rebuild-banks", int(testbed_seed),
            tuple(int(t) for t in trips), bool(prefill))


def shared_bank(testbed_seed, trip):
    """The installed shared bank for ``(testbed_seed, trip)``, if any."""
    return _shared_banks.get((int(testbed_seed), int(trip)))


def build_shared_banks(testbed_seed, trips, prefill=True):
    """Build one prefilled bank per trip for a ``run_trips`` sweep.

    Returns:
        Mapping ``(testbed_seed, trip) -> LinkBank`` for
        :func:`install_shared_banks`, each prefilled to the trip's
        route duration when *prefill* is set.
    """
    testbed = VanLanTestbed(seed=int(testbed_seed))
    banks = {}
    for trip in trips:
        motion = testbed.vehicle_motion()
        banks[(int(testbed_seed), int(trip))] = testbed.build_link_bank(
            trip, motion,
            prefill_s=motion.route.duration if prefill else None,
        )
    return banks


def vanlan_cbr_trip(task):
    """Worker: one VanLAN CBR protocol run, summarized picklably.

    Args:
        task: mapping with keys ``trip`` and optionally
            ``testbed_seed`` (default 0), ``seed`` (default: trip),
            ``duration_s`` (default 60), ``estimator`` (``"array"`` /
            ``"dict"``; default: the stock config — lets sweeps
            compare the estimator backends like-for-like).

    Returns:
        dict with the delivery sequences, event count, and per-kind
        transmission counters of the run — everything the scaling
        benchmark needs to check parallel-vs-serial equality — plus
        ``bank_shared``: whether the propagation bank came from the
        installed shared registry (shared and freshly built banks are
        bit-identical; the flag only reports the reuse).
    """
    trip = int(task["trip"])
    seed = int(task.get("seed", trip))
    duration = float(task.get("duration_s", 60.0))
    testbed_seed = int(task.get("testbed_seed", 0))
    config = None
    if "estimator" in task:
        config = ViFiConfig(estimator=str(task["estimator"]))
    testbed = VanLanTestbed(seed=testbed_seed)
    bank = shared_bank(testbed_seed, trip)
    # Without a shared bank, prefill only what the task will simulate
    # (the horizon never changes bucket values, only build cost).
    sim, _ = vanlan_protocol(testbed, trip=trip, seed=seed, bank=bank,
                             config=config, prefill=duration + 1.0)
    cbr = run_protocol_cbr(sim, duration)
    return {
        "trip": trip,
        "seed": seed,
        "events": sim.sim.events_processed,
        "up_deliveries": sorted(cbr.up_deliveries.items()),
        "down_deliveries": sorted(cbr.down_deliveries.items()),
        "tx_count": sorted(sim.medium.tx_count.items()),
        "bank_shared": bank is not None,
    }
