"""Shared experiment plumbing.

Builders that assemble a :class:`~repro.core.protocol.ViFiSimulation`
over either testbed, the standard warmup/measurement timeline used by
every application experiment (protocols need a couple of seconds of
beacons before the first anchor exists), and the parallel multi-trip
runner: trips and seeds are embarrassingly parallel (every stochastic
process is keyed by ``(testbed seed, trip)`` through the named-stream
registry), so the figure benchmarks farm independent runs out to a
process pool and merge results deterministically.
"""

import multiprocessing
import os

from repro.apps.workload import CbrWorkload, FlowRouter
from repro.core.protocol import ViFiConfig, ViFiSimulation
from repro.testbeds.lossmap import build_link_table_from_log
from repro.testbeds.vanlan import VEHICLE_ID, VanLanTestbed

__all__ = [
    "WARMUP_S",
    "available_workers",
    "build_shared_banks",
    "dieselnet_protocol",
    "init_worker_state",
    "install_shared_banks",
    "run_protocol_cbr",
    "run_trips",
    "shared_bank",
    "vanlan_cbr_trip",
    "vanlan_protocol",
    "worker_state",
]

#: Seconds of beaconing before applications start.
WARMUP_S = 3.0


def vanlan_protocol(testbed, trip, config=None, seed=0, bank=None,
                    sampling="centre", prefill=True):
    """A protocol run over one VanLAN trip (deployment-style links).

    With the default bucket-centre ``sampling``, the whole trip's
    propagation buckets are prefilled at build time (``prefill=True``),
    so the run itself performs only array reads; a prebuilt *bank*
    (from :func:`build_shared_banks` / a ``run_trips`` initializer)
    skips even that build.  *prefill* may also be a float horizon in
    simulated seconds for runs known to stop early — the horizon never
    changes bucket values (they are pure functions of the bucket), only
    how much is precomputed.  ``sampling="first-query"`` restores the
    historical lazily-refreshed bank bitwise (and ignores *prefill*,
    which first-query sampling cannot support).

    Returns:
        ``(simulation, trip_duration_s)``.  The simulation exposes the
        propagation bank (or ``None``) as ``sim.link_bank``.
    """
    if not isinstance(testbed, VanLanTestbed):
        raise TypeError("expected a VanLanTestbed")
    motion = testbed.vehicle_motion()
    if bank is not None:
        table = testbed.build_link_table(trip, motion, bank=bank)
    else:
        if not prefill or sampling != "centre":
            prefill_s = None
        elif prefill is True:
            prefill_s = motion.route.duration
        else:
            prefill_s = min(float(prefill), motion.route.duration)
        table = testbed.build_link_table(trip, motion, sampling=sampling,
                                         prefill_s=prefill_s)
    sim = ViFiSimulation(
        testbed.deployment.bs_ids, table,
        config=config or ViFiConfig(), seed=seed, vehicle_id=VEHICLE_ID,
    )
    sim.link_bank = table.link_bank
    return sim, motion.route.duration


def dieselnet_protocol(beacon_log, rngs, config=None, seed=0,
                       bursty=True):
    """A trace-driven protocol run from a DieselNet beacon log.

    Implements the Section 5.1 methodology: per-second beacon loss
    ratios become the packet loss rates, inter-BS links follow the
    covisibility rule.

    By default the per-second rates steer a Gilbert-Elliott chain
    (``bursty=True``): the paper's own Figure 6(a) shows losses are
    bursty well below one-second granularity, and burst masking is the
    mechanism macrodiversity exploits, so erasing sub-second structure
    (losses i.i.d. within each second — the paper's literal stated
    assumption, available as ``bursty=False``) suppresses exactly the
    effect under study.  EXPERIMENTS.md discusses the difference.

    Returns:
        ``(simulation, log_duration_s)``.
    """
    table = build_link_table_from_log(
        beacon_log, rngs, vehicle_id=VEHICLE_ID, bursty=bursty
    )
    sim = ViFiSimulation(
        beacon_log.bs_ids, table,
        config=config or ViFiConfig(), seed=seed, vehicle_id=VEHICLE_ID,
    )
    return sim, float(beacon_log.n_secs)


def run_protocol_cbr(sim, duration_s, interval_s=0.1, size_bytes=500,
                     warmup_s=WARMUP_S, deadline_s=None):
    """Drive a CBR probe workload over a protocol run to completion.

    Returns:
        The finished :class:`~repro.apps.workload.CbrWorkload`.
    """
    router = FlowRouter(sim)
    cbr = CbrWorkload(sim, router, interval_s=interval_s,
                      size_bytes=size_bytes)
    cbr.start(warmup_s)
    cbr.stop(duration_s - 1.0)
    sim.run(until=duration_s + (0.0 if deadline_s is None else deadline_s))
    return cbr


# ----------------------------------------------------------------------
# Parallel multi-trip running
# ----------------------------------------------------------------------

def available_workers():
    """Worker processes this host can usefully run in parallel."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def run_trips(worker, tasks, workers=None, chunksize=1,
              initializer=None, initargs=()):
    """Run independent per-trip tasks, optionally on a process pool.

    Every stochastic component draws from streams derived from
    ``(root seed, names)`` (see :class:`~repro.sim.rng.RngRegistry`),
    so a task's result depends only on its arguments — never on which
    worker runs it or in what order.  That is the determinism
    contract: ``run_trips(w, tasks, workers=k)`` returns exactly
    ``[w(t) for t in tasks]`` for every *k*, with results merged back
    in task order.

    Args:
        worker: a picklable module-level callable taking one task
            argument and returning a picklable result.
        tasks: sequence of picklable task arguments (typically
            ``(trip, seed)``-style tuples or dicts).  Keep tasks small
            — shared heavyweight state (testbeds, training traces)
            belongs in *initializer*/*initargs*, which ship once per
            worker instead of once per task.
        workers: process count; ``None`` uses the host's available
            cores, ``0``/``1`` runs serially in-process (no pool, no
            pickling).
        chunksize: tasks handed to a worker per dispatch.
        initializer: optional per-worker setup callable (also invoked
            once in-process for the serial path, so serial and pooled
            runs see identical state).
        initargs: arguments for *initializer*.

    Returns:
        List of results, one per task, in task order.
    """
    tasks = list(tasks)
    if workers is None:
        workers = available_workers()
    workers = min(int(workers), len(tasks)) if tasks else 0
    if workers <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [worker(task) for task in tasks]
    # fork shares the already-imported modules with the children;
    # spawn (the only option on some platforms) re-imports them.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    with ctx.Pool(processes=workers, initializer=initializer,
                  initargs=tuple(initargs)) as pool:
        return pool.map(worker, tasks, chunksize=max(int(chunksize), 1))


#: Heavyweight per-worker state (testbeds, variant maps) shipped once
#: per process through :func:`run_trips`'s *initializer* instead of
#: once per task.  One shared slot serves every experiment module:
#: pools are created per sweep (worker processes never interleave
#: sweeps) and the serial path reads the state within the same call.
_worker_state = None


def init_worker_state(*state):
    """``run_trips`` initializer: stash *state* for the worker."""
    global _worker_state
    _worker_state = state


def worker_state():
    """The state tuple the current sweep's initializer shipped."""
    return _worker_state


# ----------------------------------------------------------------------
# Cross-run propagation-bank sharing
# ----------------------------------------------------------------------
#
# Under bucket-centre sampling a prefilled LinkBank is a pure function
# of (testbed seed, trip, quantum): every protocol seed and policy
# variant that replays the same trip reads identical bucket values.  A
# sweep therefore builds each needed bank once in the parent and ships
# the registry through ``run_trips``'s initializer — under the fork
# start method the workers inherit the prefilled pages instead of
# rebuilding the propagation stack per task, and the serial path
# installs the same registry in-process, so shared and per-task banks
# are interchangeable bit for bit.

_shared_banks = {}


def install_shared_banks(banks):
    """``run_trips`` initializer: install the shared-bank registry.

    *banks* maps ``(testbed_seed, trip)`` to a prefilled
    :class:`~repro.net.propagation.LinkBank`.  Pass ``{}`` to clear.
    """
    global _shared_banks
    _shared_banks = dict(banks)


def shared_bank(testbed_seed, trip):
    """The installed shared bank for ``(testbed_seed, trip)``, if any."""
    return _shared_banks.get((int(testbed_seed), int(trip)))


def build_shared_banks(testbed_seed, trips, prefill=True):
    """Build one prefilled bank per trip for a ``run_trips`` sweep.

    Returns:
        Mapping ``(testbed_seed, trip) -> LinkBank`` for
        :func:`install_shared_banks`, each prefilled to the trip's
        route duration when *prefill* is set.
    """
    testbed = VanLanTestbed(seed=int(testbed_seed))
    banks = {}
    for trip in trips:
        motion = testbed.vehicle_motion()
        banks[(int(testbed_seed), int(trip))] = testbed.build_link_bank(
            trip, motion,
            prefill_s=motion.route.duration if prefill else None,
        )
    return banks


def vanlan_cbr_trip(task):
    """Worker: one VanLAN CBR protocol run, summarized picklably.

    Args:
        task: mapping with keys ``trip`` and optionally
            ``testbed_seed`` (default 0), ``seed`` (default: trip),
            ``duration_s`` (default 60), ``estimator`` (``"array"`` /
            ``"dict"``; default: the stock config — lets sweeps
            compare the estimator backends like-for-like).

    Returns:
        dict with the delivery sequences, event count, and per-kind
        transmission counters of the run — everything the scaling
        benchmark needs to check parallel-vs-serial equality — plus
        ``bank_shared``: whether the propagation bank came from the
        installed shared registry (shared and freshly built banks are
        bit-identical; the flag only reports the reuse).
    """
    trip = int(task["trip"])
    seed = int(task.get("seed", trip))
    duration = float(task.get("duration_s", 60.0))
    testbed_seed = int(task.get("testbed_seed", 0))
    config = None
    if "estimator" in task:
        config = ViFiConfig(estimator=str(task["estimator"]))
    testbed = VanLanTestbed(seed=testbed_seed)
    bank = shared_bank(testbed_seed, trip)
    # Without a shared bank, prefill only what the task will simulate
    # (the horizon never changes bucket values, only build cost).
    sim, _ = vanlan_protocol(testbed, trip=trip, seed=seed, bank=bank,
                             config=config, prefill=duration + 1.0)
    cbr = run_protocol_cbr(sim, duration)
    return {
        "trip": trip,
        "seed": seed,
        "events": sim.sim.events_processed,
        "up_deliveries": sorted(cbr.up_deliveries.items()),
        "down_deliveries": sorted(cbr.down_deliveries.items()),
        "tx_count": sorted(sim.medium.tx_count.items()),
        "bank_shared": bank is not None,
    }
