"""Degraded-infrastructure study: ViFi vs BestBS under injected faults.

The paper evaluates ViFi on healthy testbeds; its *mechanism* —
auxiliary basestations opportunistically relaying what the anchor
missed — is really an availability story, and the regime where it
should pay most is exactly the one the nominal experiments never
visit: basestations dropping off the air mid-trip.  This module sweeps
a deterministic fault intensity (see :mod:`repro.sim.faults`) and
compares ViFi against the BRR hard-handoff comparator (the paper's
BestBS) on delivery and a summary MoS.

Why ViFi should degrade more gracefully: when the anchor's *radio*
dies, its wired side usually survives (the fault plane models this
deliberately).  Under ViFi an auxiliary BS that overhears the
vehicle's transmission relays it to the anchor over the backplane, and
the anchor still forwards it upstream — service continues through the
outage.  BestBS has no relay path, so every anchor outage is dead air
until the vehicle re-anchors.  The sweep checks that gap as a trend.

Sweep points are independent runs fanned out over
:func:`~repro.experiments.common.run_trips`; a fault schedule is a
pure function of ``(config, duration, bs_ids, seed)``, so results are
identical for any worker count.
"""

from repro.apps.mos import MosConfig, mos_score
from repro.core.protocol import ViFiConfig
from repro.experiments.common import (
    run_protocol_cbr,
    run_trips,
    vanlan_protocol,
)
from repro.sim.faults import FaultConfig, FaultSchedule
from repro.testbeds.vanlan import VEHICLE_ID, VanLanTestbed

__all__ = [
    "BASE_FAULTS",
    "FAULT_MATRIX",
    "fault_intensity_sweep",
    "fault_matrix_smoke",
]

#: The intensity-sweep profile: BS radio outages (the availability
#: fault the comparison targets), scaled by
#: :meth:`~repro.sim.faults.FaultConfig.scaled`.  At intensity 1 each
#: BS suffers ~1.5 outages/minute of 8 s each.
BASE_FAULTS = FaultConfig(bs_outage_rate=1.5, bs_outage_duration_s=8.0)

#: One representative config per fault kind, for the CI fault-matrix
#: smoke: every cell must complete and deliver where reachable.
FAULT_MATRIX = {
    "no-fault": FaultConfig(),
    "bs-outage": FaultConfig(bs_outage_rate=4.0, bs_outage_duration_s=5.0),
    "partition": FaultConfig(partition_rate=4.0, partition_duration_s=5.0),
    "burst-loss": FaultConfig(beacon_burst_rate=6.0,
                              beacon_burst_duration_s=1.0),
}


def _summarize(cbr, sim):
    """Picklable per-run summary: delivery, delay, MoS, fault counts."""
    delays = []
    for table in (cbr.up_deliveries, cbr.down_deliveries):
        for seq, arrival in table.items():
            delays.append(arrival - cbr.sent_times[seq])
    mean_delay_ms = (
        1000.0 * sum(delays) / len(delays) if delays else 0.0
    )
    delivery = cbr.delivery_rate()
    plane = sim.fault_plane
    return {
        "delivery": delivery,
        "mean_delay_ms": mean_delay_ms,
        "mos": mos_score(MosConfig().fixed_delay_ms + mean_delay_ms,
                         1.0 - delivery),
        "injected": dict(plane.injected) if plane is not None else {},
        "backplane_dropped": dict(sim.backplane.dropped),
    }


def _faulted_task(task):
    """Worker: one (protocol, fault config, seed) cell (picklable).

    Args:
        task: mapping with ``protocol`` ("ViFi"/"BRR"), ``faults``
            (a :class:`FaultConfig`), and optionally ``trip``,
            ``seed``, ``fault_seed``, ``duration_s``,
            ``testbed_seed``.
    """
    protocol = task["protocol"]
    fault_config = task["faults"]
    trip = int(task.get("trip", 0))
    seed = int(task.get("seed", 0))
    fault_seed = int(task.get("fault_seed", seed))
    testbed = VanLanTestbed(seed=int(task.get("testbed_seed", 0)))
    base = ViFiConfig()
    config = base if protocol == "ViFi" else base.brr_variant()
    motion = testbed.vehicle_motion()
    duration = motion.route.duration
    if task.get("duration_s") is not None:
        duration = min(float(task["duration_s"]), duration)
    schedule = None
    if fault_config.any_enabled():
        schedule = FaultSchedule(
            fault_config, duration, testbed.deployment.bs_ids,
            VEHICLE_ID, seed=fault_seed,
        )
    sim, _ = vanlan_protocol(testbed, trip=trip, config=config,
                             seed=seed, prefill=duration + 1.0,
                             faults=schedule)
    cbr = run_protocol_cbr(sim, duration, deadline_s=0.1)
    summary = _summarize(cbr, sim)
    summary["protocol"] = protocol
    summary["seed"] = seed
    return summary


def fault_intensity_sweep(intensities=(0.0, 1.0, 2.0), trip=0,
                          seeds=(0,), duration_s=60.0, base=BASE_FAULTS,
                          workers=None, checkpoint=None,
                          task_timeout_s=None, retries=0, store=None):
    """ViFi vs BRR as fault intensity rises (figure-style summary).

    Args:
        intensities: multipliers applied to *base* via
            :meth:`FaultConfig.scaled`; 0 is the nominal world.
        seeds: protocol/fault seeds averaged per point.
        checkpoint / task_timeout_s / retries: passed straight to
            :func:`run_trips` — an interrupted sweep resumes from its
            checkpoint instead of restarting.

    Returns:
        dict intensity -> protocol -> ``{"delivery", "mos",
        "mean_delay_ms"}`` (averaged over *seeds*).
    """
    points = [
        {"protocol": protocol, "faults": base.scaled(intensity),
         "trip": trip, "seed": seed, "fault_seed": seed,
         "duration_s": duration_s, "intensity": intensity}
        for intensity in intensities
        for protocol in ("ViFi", "BRR")
        for seed in seeds
    ]
    results = run_trips(_faulted_task, points, workers=workers,
                        checkpoint=checkpoint, store=store,
                        task_timeout_s=task_timeout_s, retries=retries)
    merged = {}
    for point, result in zip(points, results):
        if result is None:
            continue  # permanently failed task of a partial sweep
        cell = merged.setdefault(point["intensity"], {}).setdefault(
            point["protocol"],
            {"delivery": 0.0, "mos": 0.0, "mean_delay_ms": 0.0, "n": 0},
        )
        for key in ("delivery", "mos", "mean_delay_ms"):
            cell[key] += result[key]
        cell["n"] += 1
    for cells in merged.values():
        for cell in cells.values():
            n = cell.pop("n") or 1
            for key in cell:
                cell[key] /= n
    return merged


def fault_matrix_smoke(duration_s=15.0, trip=0, seed=0, workers=0,
                       store=None):
    """Run ViFi once per :data:`FAULT_MATRIX` cell (CI smoke).

    Returns:
        dict cell name -> the worker summary (``delivery``,
        ``injected``, ...).  Every cell must complete without error;
        the caller asserts delivery > 0 where the vehicle is ever
        reachable.
    """
    names = list(FAULT_MATRIX)
    results = run_trips(
        _faulted_task,
        [{"protocol": "ViFi", "faults": FAULT_MATRIX[name],
          "trip": trip, "seed": seed, "duration_s": duration_s}
         for name in names],
        workers=workers, store=store,
    )
    return dict(zip(names, results))
