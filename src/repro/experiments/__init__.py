"""Experiment orchestration: one entry point per paper artifact.

Each function regenerates the data behind a table or figure of the
paper's evaluation; the benchmark suite and the examples are thin
wrappers around this package.  See DESIGN.md section 4 for the full
experiment index.
"""

from repro.experiments.common import (
    dieselnet_protocol,
    run_protocol_cbr,
    vanlan_protocol,
)
from repro.experiments.coordination import (
    coordination_table,
    formulation_comparison,
    relay_count_spread,
)
from repro.experiments.efficiency import efficiency_comparison
from repro.experiments.linklayer import (
    link_layer_sessions,
    policy_session_medians,
)
from repro.experiments.study import (
    aggregate_by_density,
    burst_loss_experiment,
    diversity_cdfs,
    two_bs_experiment,
)
from repro.experiments.tcpbench import tcp_dieselnet, tcp_vanlan
from repro.experiments.validation import validate_trace_methodology
from repro.experiments.voipbench import voip_dieselnet, voip_vanlan

__all__ = [
    "aggregate_by_density",
    "burst_loss_experiment",
    "coordination_table",
    "dieselnet_protocol",
    "diversity_cdfs",
    "efficiency_comparison",
    "formulation_comparison",
    "link_layer_sessions",
    "policy_session_medians",
    "relay_count_spread",
    "run_protocol_cbr",
    "tcp_dieselnet",
    "tcp_vanlan",
    "two_bs_experiment",
    "validate_trace_methodology",
    "vanlan_protocol",
    "voip_dieselnet",
    "voip_vanlan",
]
