"""The Section 3 measurement study: Figures 2-6.

These experiments are trace-driven: VanLAN probe traces feed the six
handoff policies; beacon logs feed the diversity CDFs; dedicated probe
schedules feed the burstiness analyses.
"""

import numpy as np

from repro.analysis.aggregate import packets_per_day_by_density
from repro.analysis.burstiness import (
    conditional_loss_curve,
    overall_loss_probability,
)
from repro.analysis.conditional import two_bs_conditionals
from repro.handoff.evaluator import evaluate_policy
from repro.handoff.policies import (
    AllBsesPolicy,
    BestBsPolicy,
    BrrPolicy,
    HistoryPolicy,
    RssiPolicy,
    StickyPolicy,
)
from repro.handoff.sessions import (
    session_lengths,
    time_weighted_median_session,
)
from repro.net.channel import SteeredGilbertElliott
from repro.sim.rng import RngRegistry

__all__ = [
    "aggregate_by_density",
    "burst_loss_experiment",
    "diversity_cdfs",
    "policy_factories",
    "two_bs_experiment",
]


def policy_factories():
    """Policy factories keyed by paper name (History needs training)."""
    return {
        "RSSI": lambda training: RssiPolicy(),
        "BRR": lambda training: BrrPolicy(),
        "Sticky": lambda training: StickyPolicy(),
        "History": _history_factory,
        "BestBS": lambda training: BestBsPolicy(),
        "AllBSes": lambda training: AllBsesPolicy(),
    }


def _history_factory(training):
    policy = HistoryPolicy()
    if training:
        policy.train(training)
    return policy


def aggregate_by_density(testbed, day=0, n_trips=4, subset_sizes=(2, 5, 8, 11),
                         trials_per_size=4, seed=0):
    """Figure 2: packets/day per policy vs number of BSes.

    Returns:
        dict policy_name -> {size: (mean_packets, ci_half_width)}.
    """
    day_traces = testbed.generate_day(day, n_trips=n_trips)
    training = testbed.generate_day(day + 1, n_trips=n_trips)
    rngs = RngRegistry(seed).spawn("fig2-density")
    results = {}
    for name, factory in policy_factories().items():
        results[name] = packets_per_day_by_density(
            day_traces, factory, subset_sizes, trials_per_size,
            rng=rngs.stream(name),
            training_traces=training if name == "History" else None,
        )
    return results


#: Per-worker shared state for the session fan-out: the testbed and
#: training traces ship once per worker (pool initializer) instead of
#: once per task.
_session_state = None


def _init_session_worker(testbed, training, interval_s, min_ratio):
    global _session_state
    _session_state = (testbed, training, interval_s, min_ratio)


def _session_trip_worker(trip):
    """One trip of the Figures 3/4 session experiment (picklable)."""
    testbed, training, interval_s, min_ratio = _session_state
    trace = testbed.generate_probe_trace(trip)
    lengths = {}
    for name, factory in policy_factories().items():
        policy = factory(training if name == "History" else None)
        outcome = evaluate_policy(trace, policy)
        adequate = outcome.adequate_windows(interval_s, min_ratio)
        lengths[name] = session_lengths(adequate, window_s=interval_s)
    return lengths


def policy_session_stats(testbed, trips, interval_s=1.0, min_ratio=0.5,
                         n_training=4, workers=1, store=None):
    """Figures 3/4 inputs: session lengths per policy over given trips.

    Trips are independent (trace randomness is keyed by the trip
    index), so they fan out over :func:`~repro.experiments.common.
    run_trips`; pooled results are identical for any worker count.

    Args:
        workers: process count for the per-trip fan-out (1 = serial,
            ``None`` = all available cores).

    Returns:
        dict policy_name -> list of session lengths (s), pooled over
        trips, plus a dict of time-weighted medians.
    """
    from repro.experiments.common import run_trips

    training = [testbed.generate_probe_trace(8000 + i)
                for i in range(n_training)]
    per_trip = run_trips(
        _session_trip_worker,
        list(trips),
        workers=workers,
        store=store,
        initializer=_init_session_worker,
        initargs=(testbed, training, interval_s, min_ratio),
    )
    pooled = {}
    for lengths in per_trip:
        for name, values in lengths.items():
            pooled.setdefault(name, []).extend(values)
    medians = {
        name: time_weighted_median_session(lengths)
        for name, lengths in pooled.items()
    }
    return pooled, medians


def diversity_cdfs(beacon_logs, min_ratio=None):
    """Figure 5: visible-BS CDF pooled over several beacon logs.

    Returns:
        ``(xs, ys, histogram)``.
    """
    counts = np.concatenate([
        log.visible_counts(min_ratio) for log in beacon_logs
    ])
    from repro.analysis.cdf import empirical_cdf
    xs, ys = empirical_cdf(counts)
    top = max(log.n_bs for log in beacon_logs)
    hist = np.bincount(counts, minlength=top + 1)[: top + 1]
    return xs, ys, hist


def burst_loss_experiment(testbed, bs_id, trip=0, probe_interval_s=0.01,
                          lags=(1, 2, 5, 10, 50, 100, 500, 1000, 2000),
                          duration_s=None, coverage_floor=0.2):
    """Figure 6(a): single-BS 10 ms probes, conditional loss curve.

    The analysis is restricted to the portion of the trip where the
    link has coverage (mean reception above *coverage_floor*), as in
    the paper's experiment where the sending BS is in range: with the
    out-of-range tail included, the unconditional loss probability is
    dominated by dead air and the burst excess degenerates.

    Returns:
        ``(curve, overall)`` — dict lag -> P(loss i+k | loss i) and the
        unconditional loss probability within the coverage window.
    """
    motion = testbed.vehicle_motion()
    duration = duration_s or motion.route.duration
    link = testbed.link_model(trip, bs_id, motion)
    rng = testbed.rngs.spawn("fig6a", trip).stream("chain", bs_id)
    process = SteeredGilbertElliott(link.loss_prob, rng=rng)
    n = int(duration / probe_interval_s)
    losses = np.zeros(n, dtype=bool)
    covered = np.zeros(n, dtype=bool)
    for i in range(n):
        t = i * probe_interval_s
        losses[i] = process.is_lost(t)
        covered[i] = link.reception_prob(t) > coverage_floor
    if covered.sum() >= 1000:
        losses = losses[covered]
    return (
        conditional_loss_curve(losses, lags),
        overall_loss_probability(losses),
    )


def two_bs_experiment(testbed, bs_a, bs_b, trip=0, probe_interval_s=0.02,
                      duration_s=None, window_s=None):
    """Figure 6(b): two BSes alternate 20 ms packets; conditionals.

    To reproduce the paper's setting (a chosen pair with reasonable
    links), only the portion of the trip where both BSes have mean
    reception above 0.2 is analysed unless ``window_s`` overrides.

    Returns:
        The six-probability dict of
        :func:`repro.analysis.conditional.two_bs_conditionals`.
    """
    motion = testbed.vehicle_motion()
    duration = duration_s or motion.route.duration
    links = {}
    processes = {}
    for bs in (bs_a, bs_b):
        links[bs] = testbed.link_model(trip, bs, motion)
        rng = testbed.rngs.spawn("fig6b", trip).stream("chain", bs)
        processes[bs] = SteeredGilbertElliott(links[bs].loss_prob, rng=rng)
    n = int(duration / probe_interval_s)
    recv = {bs: np.zeros(n, dtype=bool) for bs in (bs_a, bs_b)}
    good = np.zeros(n, dtype=bool)
    for i in range(n):
        t = i * probe_interval_s
        for bs in (bs_a, bs_b):
            recv[bs][i] = not processes[bs].is_lost(t)
        good[i] = (links[bs_a].reception_prob(t) > 0.2
                   and links[bs_b].reception_prob(t) > 0.2)
    if window_s is None:
        mask = good
    else:
        mask = np.zeros(n, dtype=bool)
        mask[: int(window_s / probe_interval_s)] = True
    if mask.sum() < 100:
        mask = np.ones(n, dtype=bool)
    return two_bs_conditionals(recv[bs_a][mask], recv[bs_b][mask])
