"""Medium-usage efficiency: Figure 12.

"We measure efficiency as the number of application packets delivered
per transmission, in the channel between the vehicle and the BSes."
BRR and ViFi are measured directly; PerfectRelay is estimated from the
ViFi run's packet-level logs (Section 5.4).
"""

from repro.apps.tcp import TcpWorkload
from repro.apps.workload import FlowRouter
from repro.core.perfect import perfect_relay_efficiency
from repro.core.protocol import ViFiConfig
from repro.experiments.common import WARMUP_S, vanlan_protocol
from repro.net.packet import Direction

__all__ = ["efficiency_comparison"]


def efficiency_comparison(testbed, trips, seed=0):
    """Figure 12: efficiency of BRR, ViFi and PerfectRelay, per direction.

    The workload is the TCP experiment of Section 5.3.1, as in the
    paper.  PerfectRelay is derived from the ViFi logs.

    Returns:
        dict direction ("upstream"/"downstream") -> dict protocol ->
        efficiency.
    """
    base = ViFiConfig()
    out = {
        "upstream": {},
        "downstream": {},
    }
    tallies = {
        ("BRR", Direction.UPSTREAM): [0, 0],
        ("BRR", Direction.DOWNSTREAM): [0, 0],
        ("ViFi", Direction.UPSTREAM): [0, 0],
        ("ViFi", Direction.DOWNSTREAM): [0, 0],
        ("PerfectRelay", Direction.UPSTREAM): [0, 0],
        ("PerfectRelay", Direction.DOWNSTREAM): [0, 0],
    }
    for trip in trips:
        for name, config in (("BRR", base.brr_variant()), ("ViFi", base)):
            sim, duration = vanlan_protocol(testbed, trip, config=config,
                                            seed=seed + trip)
            router = FlowRouter(sim)
            workload = TcpWorkload(sim, router)
            workload.start(WARMUP_S)
            workload.stop(duration - 2.0)
            sim.run(until=duration)
            for direction in (Direction.UPSTREAM, Direction.DOWNSTREAM):
                delivered = sum(
                    1 for p in sim.stats.packet_records.values()
                    if p.direction == direction and p.delivered
                )
                tx = sim.wireless_data_tx(direction)
                tallies[(name, direction)][0] += delivered
                tallies[(name, direction)][1] += tx
                if name == "ViFi":
                    _, pr_delivered, pr_tx = perfect_relay_efficiency(
                        sim.stats, direction
                    )
                    tallies[("PerfectRelay", direction)][0] += pr_delivered
                    tallies[("PerfectRelay", direction)][1] += pr_tx
    for (name, direction), (delivered, tx) in tallies.items():
        key = ("upstream" if direction is Direction.UPSTREAM
               else "downstream")
        out[key][name] = delivered / tx if tx else 0.0
    return out
