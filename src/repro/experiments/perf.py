"""Pinned performance workloads: the tracked events/sec benchmark.

The ROADMAP north star is a simulator that runs as fast as the hardware
allows, so the event-processing rate of fixed protocol workloads is
tracked PR-over-PR in ``BENCH_perf.json`` at the repository root.  Two
pinned workloads cover the two link-table flavours:

* ``vanlan_cbr_120s`` — 120 s of the deployment-style VanLAN CBR run
  (full layered radio model: path loss, spatial field, shadowing, gray
  periods, steered burst losses).  This is the workload the link-
  evaluation fast path targets.
* ``dieselnet_cbr_60s`` — 60 s of the trace-driven DieselNet run
  (per-second beacon-loss rates steering the burst chains).

Workloads pin every seed, so the event count is deterministic and the
only variable is wall time.  Garbage collection is disabled inside the
timed region to cut run-to-run variance.

``BASELINE_EVENTS_PER_S`` records the pre-fast-path seed implementation
measured on the reference machine with this same harness; the perf
benchmark asserts the fast path clears ``TARGET_SPEEDUP`` on the VanLAN
workload, and ``tools/perf_smoke.py`` fails when a change regresses
events/sec by more than 20% against the committed ``BENCH_perf.json``.
"""

import gc
import json
import pathlib
import subprocess
import time

from repro.experiments.common import (
    dieselnet_protocol,
    run_protocol_cbr,
    vanlan_protocol,
)
from repro.sim.rng import RngRegistry

__all__ = [
    "BASELINE_EVENTS_PER_S",
    "BENCH_PATH",
    "TARGET_SPEEDUP",
    "WORKLOADS",
    "git_sha",
    "run_perf_suite",
    "run_workload",
    "write_bench_file",
]

#: Where the tracked benchmark payload lives (repository root).
BENCH_PATH = pathlib.Path(__file__).resolve().parents[3] / "BENCH_perf.json"

#: Events/sec of the pre-fast-path seed implementation (commit c3cd8d7)
#: on the reference machine, measured with this harness (gc disabled,
#: identical pinned seeds).  Denominators for the speedup report.
BASELINE_EVENTS_PER_S = {
    "vanlan_cbr_120s": 11975.0,
    "dieselnet_cbr_60s": 43580.0,
}

#: Required speedup of the fast path on the VanLAN workload.
TARGET_SPEEDUP = 4.0

WORKLOADS = ("vanlan_cbr_120s", "dieselnet_cbr_60s")


def _build_vanlan():
    from repro.testbeds.vanlan import VanLanTestbed

    sim, _ = vanlan_protocol(VanLanTestbed(seed=0), trip=0, seed=0)
    return sim, 120.0


def _build_dieselnet():
    from repro.testbeds.dieselnet import DieselNetTestbed

    log = DieselNetTestbed(channel=1, seed=0).generate_beacon_log(0)
    sim, duration = dieselnet_protocol(
        log, RngRegistry(0).spawn("perf"), seed=0, bursty=True
    )
    return sim, min(duration, 60.0)


_BUILDERS = {
    "vanlan_cbr_120s": _build_vanlan,
    "dieselnet_cbr_60s": _build_dieselnet,
}


def git_sha():
    """Short commit hash of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except OSError:
        return "unknown"


def run_workload(name):
    """Run one pinned workload; return its measurement record.

    Returns a dict with the tracked schema: ``workload``, ``wall_s``,
    ``events``, ``events_per_s``, ``git_sha`` — plus the recorded
    seed baseline and the resulting speedup.
    """
    if name not in _BUILDERS:
        raise KeyError(f"unknown workload {name!r}; have {WORKLOADS}")
    sim, duration = _BUILDERS[name]()
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        run_protocol_cbr(sim, duration)
        wall = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    events = sim.sim.events_processed
    events_per_s = events / wall if wall > 0 else float("inf")
    baseline = BASELINE_EVENTS_PER_S.get(name)
    record = {
        "workload": name,
        "wall_s": round(wall, 4),
        "events": int(events),
        "events_per_s": round(events_per_s, 1),
        "git_sha": git_sha(),
    }
    if baseline:
        record["baseline_events_per_s"] = baseline
        record["speedup_vs_baseline"] = round(events_per_s / baseline, 2)
    return record


def run_perf_suite(workloads=WORKLOADS, repeats=1):
    """Measure every workload; keep the best (least-noisy) repeat."""
    results = []
    for name in workloads:
        best = None
        for _ in range(max(int(repeats), 1)):
            record = run_workload(name)
            if best is None or record["events_per_s"] > best["events_per_s"]:
                best = record
        results.append(best)
    return results


def write_bench_file(results, path=BENCH_PATH):
    """Persist the tracked payload; returns the path written."""
    payload = {
        "git_sha": git_sha(),
        "target_speedup": TARGET_SPEEDUP,
        "workloads": results,
    }
    path = pathlib.Path(path)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path
