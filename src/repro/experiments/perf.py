"""Pinned performance workloads: the tracked perf benchmark.

The ROADMAP north star is a simulator that runs as fast as the hardware
allows, so fixed protocol workloads are tracked PR-over-PR in
``BENCH_perf.json`` at the repository root.  Two single-process pinned
workloads cover the two link-table flavours:

* ``vanlan_cbr_120s`` — 120 s of the deployment-style VanLAN CBR run
  (full layered radio model: path loss, spatial field, shadowing, gray
  periods, steered burst losses).  This is the workload the link-
  evaluation fast path and the banked/batched fast paths target.
* ``dieselnet_cbr_60s`` — 60 s of the trace-driven DieselNet run
  (per-second beacon-loss rates steering the burst chains).

plus a multi-trip scaling workload, ``vanlan_multitrip``, that sweeps
independent (trip, seed) runs through the process-pool
:func:`~repro.experiments.common.run_trips` and checks that parallel
and serial sweeps merge to identical outputs.

Two rates are tracked per single-process workload:

* ``events_per_s`` — heap events processed per wall second (the
  engine-throughput metric PR 1 introduced);
* ``sim_s_per_wall_s`` — simulated seconds per wall second.  Since
  PR 2 deliberately *removes* heap events (merged transmissions,
  slotted beacons), events/sec under-reports the real speedup of a
  fixed workload; the sim-rate is the faithful workload-level metric
  and is what the speedup targets are defined on.

Workloads pin every seed, so the event count is deterministic and the
only variable is wall time.  Garbage collection is disabled inside the
timed region to cut run-to-run variance.

``BASELINE_SIM_RATE`` records the pre-fast-path seed implementation
measured on the reference machine with this same harness; the perf
benchmark asserts the fast paths clear ``TARGET_SPEEDUP`` /
``TARGET_SPEEDUP_DIESELNET``, and ``tools/perf_smoke.py`` fails when a
change regresses either tracked rate by more than its tolerance
against the committed ``BENCH_perf.json``.
"""

import gc
import json
import pathlib
import subprocess
import time

from repro.experiments.common import (
    available_workers,
    build_shared_banks,
    dieselnet_protocol,
    install_shared_banks,
    run_protocol_cbr,
    run_trips,
    vanlan_cbr_trip,
    vanlan_protocol,
)
from repro.sim.rng import RngRegistry

__all__ = [
    "BASELINE_EVENTS_PER_S",
    "BASELINE_SIM_RATE",
    "BENCH_PATH",
    "SCALING_WORKLOAD",
    "TARGET_SPEEDUP",
    "TARGET_SPEEDUP_DIESELNET",
    "TARGET_PARALLEL_SPEEDUP",
    "WORKLOADS",
    "git_sha",
    "host_context",
    "profile_workload",
    "run_perf_suite",
    "run_trip_scaling",
    "run_workload",
    "write_bench_file",
]

#: Where the tracked benchmark payload lives (repository root).
BENCH_PATH = pathlib.Path(__file__).resolve().parents[3] / "BENCH_perf.json"

#: Events/sec of the pre-fast-path seed implementation (commit c3cd8d7)
#: on the reference machine, measured with this harness (gc disabled,
#: identical pinned seeds).  Kept for the events/sec trend line.
BASELINE_EVENTS_PER_S = {
    "vanlan_cbr_120s": 11975.0,
    "dieselnet_cbr_60s": 43580.0,
}

#: Simulated seconds per wall second of the seed implementation on the
#: reference machine.  The seed processed events at the rates above
#: with fixed event counts (84858 events / 120 s and 41641 / 60 s), so
#: the sim-rate baseline follows from the same measurements.
BASELINE_SIM_RATE = {
    "vanlan_cbr_120s": 11975.0 * 120.0 / 84858.0,
    "dieselnet_cbr_60s": 43580.0 * 60.0 / 41641.0,
}

#: Required sim-rate speedup on the single-process VanLAN workload.
#: Asserted floor with ~12% headroom below the committed measurement
#: for shared-runner noise, mirroring PR 2's 4.0-floor / 4.52-measured
#: posture (PR 3 commits ~4.9x, with ~5.3x observed in quiet windows).
TARGET_SPEEDUP = 4.3

#: Required sim-rate speedup on the trace-driven DieselNet workload
#: (PR 3 commits ~1.7-1.9x; floor with noise headroom).
TARGET_SPEEDUP_DIESELNET = 1.4

#: Required parallel speedup of a 4-trip sweep on >= 4 free cores.
TARGET_PARALLEL_SPEEDUP = 3.0

WORKLOADS = ("vanlan_cbr_120s", "dieselnet_cbr_60s")

SCALING_WORKLOAD = "vanlan_multitrip"


def _build_vanlan():
    from repro.testbeds.vanlan import VanLanTestbed

    sim, _ = vanlan_protocol(VanLanTestbed(seed=0), trip=0, seed=0)
    return sim, 120.0


def _build_dieselnet():
    from repro.testbeds.dieselnet import DieselNetTestbed

    log = DieselNetTestbed(channel=1, seed=0).generate_beacon_log(0)
    sim, duration = dieselnet_protocol(
        log, RngRegistry(0).spawn("perf"), seed=0, bursty=True
    )
    return sim, min(duration, 60.0)


_BUILDERS = {
    "vanlan_cbr_120s": _build_vanlan,
    "dieselnet_cbr_60s": _build_dieselnet,
}


def host_context():
    """Host-state snapshot recorded alongside every measurement.

    Perf numbers from shared runners are meaningless without knowing
    how loaded the box was and which interpreter produced them; these
    fields make a committed ``BENCH_perf.json`` (and any ad-hoc bench
    record) self-describing:

    * ``cpu_count`` — logical CPUs visible to the process;
    * ``loadavg_1m`` — 1-minute load average at measurement time
      (``None`` where the platform has no ``getloadavg``), the
      contention signal to read a surprising delta against;
    * ``python`` / ``numpy`` — interpreter and array-library versions.
    """
    import os
    import platform

    import numpy

    try:
        loadavg = round(os.getloadavg()[0], 2)
    except (AttributeError, OSError):
        loadavg = None
    return {
        "cpu_count": os.cpu_count(),
        "loadavg_1m": loadavg,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
    }


def git_sha():
    """Short commit hash of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except OSError:
        return "unknown"


def run_workload(name):
    """Run one pinned workload; return its measurement record.

    Returns a dict with the tracked schema: ``workload``, ``wall_s``,
    ``events``, ``events_per_s``, ``sim_s_per_wall_s``, ``git_sha`` —
    plus the recorded seed baselines and the resulting speedups
    (``speedup_vs_baseline`` is the sim-rate speedup the targets are
    defined on; ``events_speedup_vs_baseline`` keeps the PR 1 trend
    line).  Construction cost is reported separately: ``build_s`` is
    the wall spent building the simulation (testbed, link table,
    propagation bank) and ``prefill_s`` the bank-prefill share of it —
    neither is ever charged to the timed region, so the sim-rate
    reflects run cost alone.  ``estimator`` records the reception-
    estimator mode the workload ran under and ``estimator_fold_s``
    the wall spent inside the array bank's per-second vectorized
    folds (0.0 in dict mode, whose folds run inside per-node events).
    ``host`` snapshots the machine condition (:func:`host_context`)
    so a surprising rate is attributable to load, not guessed at.
    ``faults`` is always ``"none"``: perf workloads run the nominal
    world (no fault plane installed), and the field pins that so a
    future faulted benchmark cannot be confused with these baselines.
    ``store`` is likewise pinned to all-zero counters: pinned
    workloads never read the result store (a warm cache would turn a
    perf measurement into a disk read), and the field makes that
    explicit so a cached rate cannot masquerade as an engine speedup.
    """
    if name not in _BUILDERS:
        raise KeyError(f"unknown workload {name!r}; have {WORKLOADS}")
    t0 = time.perf_counter()
    sim, duration = _BUILDERS[name]()
    build_wall = time.perf_counter() - t0
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        run_protocol_cbr(sim, duration)
        wall = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    events = sim.sim.events_processed
    events_per_s = events / wall if wall > 0 else float("inf")
    sim_rate = duration / wall if wall > 0 else float("inf")
    bank = getattr(sim, "link_bank", None)
    # The estimator mode and its fold cost are tracked per workload:
    # the array bank accumulates the wall spent in its single
    # per-second vectorized fold (estimator_fold_s), the block the
    # PR 5 refactor targets; the dict mode folds inside per-node
    # events and reports 0.0.
    estimator_bank = getattr(sim.ctx, "estimator_bank", None)
    record = {
        "workload": name,
        "wall_s": round(wall, 4),
        "build_s": round(build_wall, 4),
        "prefill_s": round(getattr(bank, "prefill_wall_s", 0.0), 4),
        "events": int(events),
        "events_per_s": round(events_per_s, 1),
        "sim_s_per_wall_s": round(sim_rate, 2),
        "estimator": "dict" if estimator_bank is None else "array",
        "faults": "none",
        "store": {"hits": 0, "misses": 0, "verify_failures": 0},
        "estimator_fold_s": round(
            getattr(estimator_bank, "fold_wall_s", 0.0), 4
        ),
        "git_sha": git_sha(),
        "host": host_context(),
    }
    baseline_rate = BASELINE_SIM_RATE.get(name)
    if baseline_rate:
        record["baseline_sim_s_per_wall_s"] = round(baseline_rate, 2)
        record["speedup_vs_baseline"] = round(sim_rate / baseline_rate, 2)
    baseline_events = BASELINE_EVENTS_PER_S.get(name)
    if baseline_events:
        record["baseline_events_per_s"] = baseline_events
        record["events_speedup_vs_baseline"] = round(
            events_per_s / baseline_events, 2
        )
    return record


def profile_workload(name, top=25, sort="cumulative", dump_path=None):
    """cProfile one pinned workload; return the top-*top* report text.

    The residual profile is the input every perf PR argues from;
    ``python -m repro bench --profile`` prints it per workload so the
    numbers are citable without ad-hoc scripts, and
    ``--profile-out <dir>`` additionally dumps the raw ``.pstats``
    payload per workload so successive perf PRs can *diff* profiles
    instead of eyeballing printouts.

    Args:
        name: a pinned workload name (see :data:`WORKLOADS`).
        top: rows to keep per sort order.
        sort: a ``pstats`` sort key (``"cumulative"``, ``"tottime"``,
            ...).
        dump_path: when set, write the raw profiler stats there
            (loadable with :class:`pstats.Stats` /
            ``snakeviz``-style tooling).

    Returns:
        ``(header_line, report_text)``.
    """
    import cProfile
    import io
    import pstats

    if name not in _BUILDERS:
        raise KeyError(f"unknown workload {name!r}; have {WORKLOADS}")
    sim, duration = _BUILDERS[name]()
    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    run_protocol_cbr(sim, duration)
    profiler.disable()
    wall = time.perf_counter() - t0
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(sort).print_stats(top)
    if dump_path is not None:
        stats.dump_stats(dump_path)
    header = (f"{name}: {sim.sim.events_processed} events in "
              f"{wall:.3f} s under cProfile "
              f"({stats.total_calls} calls; top {top} by {sort})")
    return header, stream.getvalue()


def run_perf_suite(workloads=WORKLOADS, repeats=1):
    """Measure every workload; keep the best (least-noisy) repeat."""
    results = []
    for name in workloads:
        best = None
        for _ in range(max(int(repeats), 1)):
            record = run_workload(name)
            if best is None or record["events_per_s"] > best["events_per_s"]:
                best = record
        results.append(best)
    return results


def run_trip_scaling(n_trips=4, duration_s=40.0, workers=None,
                     testbed_seed=0):
    """The multi-trip scaling workload: serial vs process-pool sweep.

    Builds one shared prefilled propagation bank per trip in the
    parent (``bank_build_s``), then runs *n_trips* independent pinned
    VanLAN CBR trips three ways: serially with per-task banks (the
    pre-sharing cost), serially with the shared banks, and through
    :func:`~repro.experiments.common.run_trips` on a pool with the
    shared banks inherited across the fork.  ``outputs_identical`` is
    the parallel determinism contract and
    ``shared_bank_identical`` the sharing contract (shared and
    per-task banks are bit-identical under bucket-centre sampling);
    both must hold on any machine.  The parallel speedup is only
    meaningful when the host actually has free cores, so
    ``available_workers`` is recorded alongside;
    ``bank_share_task_speedup`` records what sharing saves per task.

    Returns:
        The scaling record for ``BENCH_perf.json``.
    """
    if workers is None:
        # Always exercise the pool (even a single-core host must
        # reproduce the serial outputs); use every core up to the
        # trip count when the host has them.
        workers = min(max(available_workers(), 2), max(int(n_trips), 1))
    tasks = [
        {"trip": trip, "seed": trip, "duration_s": float(duration_s),
         "testbed_seed": int(testbed_seed)}
        for trip in range(int(n_trips))
    ]
    # Per-task banks first (the registry must be empty for this leg).
    install_shared_banks({})
    # store=False throughout: an ambient result store must never serve
    # these sweeps, or the "parallel speedup" would be measuring warm
    # cache reads instead of the pool.
    t0 = time.perf_counter()
    fresh = run_trips(vanlan_cbr_trip, tasks, workers=1, store=False)
    fresh_wall = time.perf_counter() - t0
    # One shared prefilled bank per trip, built once in the parent.
    t0 = time.perf_counter()
    banks = build_shared_banks(testbed_seed, range(int(n_trips)))
    bank_build_s = time.perf_counter() - t0
    try:
        t0 = time.perf_counter()
        serial = run_trips(vanlan_cbr_trip, tasks, workers=1, store=False,
                           initializer=install_shared_banks,
                           initargs=(banks,))
        serial_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = run_trips(vanlan_cbr_trip, tasks, workers=workers,
                             store=False,
                             initializer=install_shared_banks,
                             initargs=(banks,))
        parallel_wall = time.perf_counter() - t0
    finally:
        install_shared_banks({})
    hits = sum(1 for record in serial if record.get("bank_shared"))

    def _sans_flag(results):
        return [{k: v for k, v in record.items() if k != "bank_shared"}
                for record in results]

    available = available_workers()
    if available >= 4 and workers >= 4:
        gate = "enforced"
    else:
        # The speedup target only binds with real free cores; record
        # exactly why it is skipped so a sub-1.0 parallel_speedup on a
        # starved host reads as expected pool overhead, not as a
        # regression.
        gate = (f"skipped: available_workers: {available}, "
                f"workers: {workers} (target needs >= 4 of each)")
    n = max(len(tasks), 1)
    return {
        "workload": SCALING_WORKLOAD,
        "n_trips": int(n_trips),
        "trip_duration_s": float(duration_s),
        "workers": int(workers),
        "available_workers": available,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "parallel_speedup": round(serial_wall / parallel_wall, 2)
        if parallel_wall > 0 else float("inf"),
        "parallel_gate": gate,
        "outputs_identical": serial == parallel,
        "bank_build_s": round(bank_build_s, 4),
        "bank_share_hit_rate": round(hits / n, 3),
        "per_task_s_fresh_bank": round(fresh_wall / n, 4),
        "per_task_s_shared_bank": round(serial_wall / n, 4),
        "bank_share_task_speedup": round(fresh_wall / serial_wall, 2)
        if serial_wall > 0 else float("inf"),
        "shared_bank_identical": _sans_flag(serial) == _sans_flag(fresh),
        "store": dict(parallel.store),
        "git_sha": git_sha(),
    }


def write_bench_file(results, scaling=None, path=BENCH_PATH):
    """Persist the tracked payload; returns the path written.

    Args:
        results: single-process workload records.
        scaling: optional multi-trip scaling record; when omitted, the
            scaling entry already committed at *path* is carried over
            so a partial rerun never silently drops it.
    """
    path = pathlib.Path(path)
    if scaling is None and path.exists():
        try:
            with open(path) as handle:
                scaling = json.load(handle).get("scaling")
        except (OSError, ValueError):
            scaling = None
    payload = {
        "git_sha": git_sha(),
        "target_speedup": TARGET_SPEEDUP,
        "target_speedup_dieselnet": TARGET_SPEEDUP_DIESELNET,
        "target_parallel_speedup": TARGET_PARALLEL_SPEEDUP,
        "workloads": results,
    }
    if scaling is not None:
        payload["scaling"] = scaling
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path
