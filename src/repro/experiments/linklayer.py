"""Link-layer session experiments: Figures 7 and 8.

ViFi and BRR run as live protocols over the VanLAN radio model with the
CBR probe workload and *link-layer retransmissions disabled*
("Since we focus on basic link-layer quality provided by each protocol,
link-layer retransmissions are disabled", Section 5.2); the oracle
curves (BestBS, AllBSes) come from the trace-driven study over matched
trips, as in the paper where Figure 7's oracle curves are carried over
from Figure 4.
"""

from repro.core.protocol import ViFiConfig
from repro.experiments.common import run_protocol_cbr, vanlan_protocol
from repro.experiments.study import policy_factories
from repro.handoff.evaluator import evaluate_policy
from repro.handoff.sessions import (
    session_lengths,
    time_weighted_median_session,
)

__all__ = ["link_layer_sessions", "policy_session_medians"]


def link_layer_sessions(testbed, trips, protocol_configs=None, seed=0,
                        interval_s=1.0, min_ratio=0.5, deadline_s=0.1):
    """Run live protocols over trips; session lengths per protocol.

    Args:
        testbed: a VanLAN testbed.
        trips: trip indices to run.
        protocol_configs: mapping name -> ViFiConfig; defaults to ViFi
            and BRR, both with ``max_retx=0``.
        deadline_s: a probe counts as delivered only within this bound
            (one probe interval), mirroring the slot semantics of the
            trace-driven policies.

    Returns:
        ``(pooled_lengths, medians)`` keyed by protocol name.
    """
    if protocol_configs is None:
        base = ViFiConfig(max_retx=0)
        protocol_configs = {
            "ViFi": base,
            "BRR": base.brr_variant(),
        }
    pooled = {name: [] for name in protocol_configs}
    for trip in trips:
        for name, config in protocol_configs.items():
            sim, duration = vanlan_protocol(testbed, trip, config=config,
                                            seed=seed + trip)
            cbr = run_protocol_cbr(sim, duration, deadline_s=deadline_s)
            ratios = cbr.window_reception_ratio(
                window_s=interval_s, deadline_s=deadline_s
            )
            adequate = ratios >= min_ratio
            pooled[name].extend(
                session_lengths(adequate, window_s=interval_s)
            )
    medians = {
        name: time_weighted_median_session(lengths)
        for name, lengths in pooled.items()
    }
    return pooled, medians


def policy_session_medians(testbed, trips, policy_names=("BestBS",
                                                         "AllBSes"),
                           interval_s=1.0, min_ratio=0.5):
    """Trace-driven oracle session medians over matched trips.

    Returns:
        ``(pooled_lengths, medians)`` keyed by policy name.
    """
    factories = policy_factories()
    pooled = {name: [] for name in policy_names}
    for trip in trips:
        trace = testbed.generate_probe_trace(trip)
        for name in policy_names:
            policy = factories[name](None)
            outcome = evaluate_policy(trace, policy)
            adequate = outcome.adequate_windows(interval_s, min_ratio)
            pooled[name].extend(
                session_lengths(adequate, window_s=interval_s)
            )
    medians = {
        name: time_weighted_median_session(lengths)
        for name, lengths in pooled.items()
    }
    return pooled, medians
