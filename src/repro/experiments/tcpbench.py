"""TCP experiments: Figures 9 (VanLAN) and 10 (DieselNet).

Trips and profiling days are independent runs (every stochastic
process is keyed by the task arguments through the named-stream
registry), so both figures fan their ``(variant, trip)`` grids over
:func:`~repro.experiments.common.run_trips`: multi-core hosts sweep
them in parallel, and the task-order merge makes pooled results
identical to the old serial loops for any worker count.
"""

from repro.apps.tcp import TcpWorkload
from repro.apps.workload import FlowRouter
from repro.core.protocol import ViFiConfig
from repro.experiments.common import (
    WARMUP_S,
    dieselnet_protocol,
    init_worker_state,
    memoized_beacon_log,
    run_trips,
    vanlan_protocol,
    worker_state,
)
from repro.sim.rng import RngRegistry

__all__ = ["tcp_dieselnet", "tcp_vanlan", "standard_tcp_variants"]


def standard_tcp_variants():
    """The three bars of Figure 9(a): BRR, diversity-only, full ViFi."""
    base = ViFiConfig()
    return {
        "BRR": base.brr_variant(),
        "OnlyDiversity": base.diversity_only_variant(),
        "ViFi": base,
    }


def _run_tcp(sim, duration, seed_unused=None):
    router = FlowRouter(sim)
    workload = TcpWorkload(sim, router)
    workload.start(WARMUP_S)
    workload.stop(duration - 2.0)
    sim.run(until=duration)
    return workload


def _tcp_vanlan_task(task):
    """One (variant, trip) cell of Figure 9, summarized picklably."""
    name, trip = task
    testbed, variants, seed = worker_state()
    sim, duration = vanlan_protocol(testbed, trip, config=variants[name],
                                    seed=seed + trip)
    workload = _run_tcp(sim, duration)
    return {
        "durations": [r.duration for r in workload.completed],
        "per_session": workload.transfers_per_session(),
        "completed": len(workload.completed),
        "aborted": len(workload.aborted),
        "elapsed": duration - 2.0 - WARMUP_S,
    }


def _tcp_dieselnet_task(task):
    """One (variant, day) cell of Figure 10, summarized picklably."""
    name, day = task
    testbed, variants, seed, n_tours = worker_state()
    log = memoized_beacon_log(testbed, day, n_tours=n_tours)
    rngs = RngRegistry(seed).spawn("tcp-dn", name, day)
    sim, duration = dieselnet_protocol(log, rngs, config=variants[name],
                                       seed=seed + day)
    workload = _run_tcp(sim, duration)
    return {
        "durations": [r.duration for r in workload.completed],
        "completed": len(workload.completed),
        "aborted": len(workload.aborted),
        "elapsed": duration - 2.0 - WARMUP_S,
    }


def tcp_vanlan(testbed, trips, variants=None, seed=0, workers=None,
               store=None):
    """Figure 9: median transfer time and transfers/session on VanLAN.

    Args:
        workers: process count for the (variant, trip) fan-out;
            ``None`` uses the host's available cores, 1 runs serially.
            Results are identical for any worker count.

    Returns:
        dict name -> {"median_s", "per_session", "completed",
        "aborted", "per_second"} pooled over trips.
    """
    variants = variants or standard_tcp_variants()
    trips = list(trips)
    tasks = [(name, trip) for name in variants for trip in trips]
    per_task = iter(run_trips(
        _tcp_vanlan_task, tasks, workers=workers, store=store,
        initializer=init_worker_state, initargs=(testbed, variants, seed),
    ))
    results = {}
    for name in variants:
        durations = []
        sessions = []
        completed = aborted = 0
        elapsed = 0.0
        for _ in trips:
            cell = next(per_task)
            durations.extend(cell["durations"])
            sessions.append(cell["per_session"])
            completed += cell["completed"]
            aborted += cell["aborted"]
            elapsed += cell["elapsed"]
        durations.sort()
        results[name] = {
            "median_s": durations[len(durations) // 2] if durations
            else float("inf"),
            "per_session": (sum(sessions) / len(sessions)
                            if sessions else 0.0),
            "completed": completed,
            "aborted": aborted,
            "per_second": completed / elapsed if elapsed > 0 else 0.0,
        }
    return results


def tcp_dieselnet(testbed, days=(0,), variants=None, seed=0,
                  n_tours=1, workers=None, store=None):
    """Figure 10: TCP transfers/second on DieselNet (trace-driven).

    Args:
        workers: process count for the (variant, day) fan-out; same
            contract as :func:`tcp_vanlan`.

    Returns:
        dict name -> {"per_second", "completed", "aborted",
        "median_s"} pooled over profiling days.
    """
    if variants is None:
        base = ViFiConfig()
        variants = {"BRR": base.brr_variant(), "ViFi": base}
    days = list(days)
    tasks = [(name, day) for name in variants for day in days]
    per_task = iter(run_trips(
        _tcp_dieselnet_task, tasks, workers=workers, store=store,
        initializer=init_worker_state,
        initargs=(testbed, variants, seed, n_tours),
    ))
    results = {}
    for name in variants:
        completed = aborted = 0
        durations = []
        elapsed = 0.0
        for _ in days:
            cell = next(per_task)
            completed += cell["completed"]
            aborted += cell["aborted"]
            durations.extend(cell["durations"])
            elapsed += cell["elapsed"]
        durations.sort()
        results[name] = {
            "per_second": completed / elapsed if elapsed > 0 else 0.0,
            "completed": completed,
            "aborted": aborted,
            "median_s": durations[len(durations) // 2] if durations
            else float("inf"),
        }
    return results
