"""TCP experiments: Figures 9 (VanLAN) and 10 (DieselNet)."""

from repro.apps.tcp import TcpWorkload
from repro.apps.workload import FlowRouter
from repro.core.protocol import ViFiConfig
from repro.experiments.common import (
    WARMUP_S,
    dieselnet_protocol,
    vanlan_protocol,
)
from repro.sim.rng import RngRegistry

__all__ = ["tcp_dieselnet", "tcp_vanlan", "standard_tcp_variants"]


def standard_tcp_variants():
    """The three bars of Figure 9(a): BRR, diversity-only, full ViFi."""
    base = ViFiConfig()
    return {
        "BRR": base.brr_variant(),
        "OnlyDiversity": base.diversity_only_variant(),
        "ViFi": base,
    }


def _run_tcp(sim, duration, seed_unused=None):
    router = FlowRouter(sim)
    workload = TcpWorkload(sim, router)
    workload.start(WARMUP_S)
    workload.stop(duration - 2.0)
    sim.run(until=duration)
    return workload


def tcp_vanlan(testbed, trips, variants=None, seed=0):
    """Figure 9: median transfer time and transfers/session on VanLAN.

    Returns:
        dict name -> {"median_s", "per_session", "completed",
        "aborted", "per_second"} pooled over trips.
    """
    variants = variants or standard_tcp_variants()
    results = {}
    for name, config in variants.items():
        durations = []
        sessions = []
        completed = aborted = 0
        elapsed = 0.0
        for trip in trips:
            sim, duration = vanlan_protocol(testbed, trip, config=config,
                                            seed=seed + trip)
            workload = _run_tcp(sim, duration)
            durations.extend(r.duration for r in workload.completed)
            sessions.append(workload.transfers_per_session())
            completed += len(workload.completed)
            aborted += len(workload.aborted)
            elapsed += duration - 2.0 - WARMUP_S
        durations.sort()
        results[name] = {
            "median_s": durations[len(durations) // 2] if durations
            else float("inf"),
            "per_session": (sum(sessions) / len(sessions)
                            if sessions else 0.0),
            "completed": completed,
            "aborted": aborted,
            "per_second": completed / elapsed if elapsed > 0 else 0.0,
        }
    return results


def tcp_dieselnet(testbed, days=(0,), variants=None, seed=0,
                  n_tours=1):
    """Figure 10: TCP transfers/second on DieselNet (trace-driven).

    Returns:
        dict name -> {"per_second", "completed", "aborted",
        "median_s"} pooled over profiling days.
    """
    if variants is None:
        base = ViFiConfig()
        variants = {"BRR": base.brr_variant(), "ViFi": base}
    results = {}
    for name, config in variants.items():
        completed = aborted = 0
        durations = []
        elapsed = 0.0
        for day in days:
            log = testbed.generate_beacon_log(day, n_tours=n_tours)
            rngs = RngRegistry(seed).spawn("tcp-dn", name, day)
            sim, duration = dieselnet_protocol(log, rngs, config=config,
                                               seed=seed + day)
            workload = _run_tcp(sim, duration)
            completed += len(workload.completed)
            aborted += len(workload.aborted)
            durations.extend(r.duration for r in workload.completed)
            elapsed += duration - 2.0 - WARMUP_S
        durations.sort()
        results[name] = {
            "per_second": completed / elapsed if elapsed > 0 else 0.0,
            "completed": completed,
            "aborted": aborted,
            "median_s": durations[len(durations) // 2] if durations
            else float("inf"),
        }
    return results
