"""Methodology validation (Section 5.1).

"We validate our trace-driven simulation method by collecting the same
measurements from VanLAN and comparing its results to the deployment
... We find that the simulation results match the deployment results.
For instance, the VoIP session lengths in the simulations are within
five seconds of the session lengths observed for the deployed
prototype."

Here: run a VanLAN trip twice — once over the live radio model (the
"deployment") and once trace-driven from the beacon log of the same
trip — and compare VoIP session medians.
"""

import statistics

from repro.apps.voip import VoipStream
from repro.apps.workload import FlowRouter
from repro.core.protocol import ViFiConfig
from repro.experiments.common import (
    WARMUP_S,
    dieselnet_protocol,
    vanlan_protocol,
)
from repro.sim.rng import RngRegistry

__all__ = ["validate_trace_methodology"]


def _voip_median(sim, duration):
    router = FlowRouter(sim)
    stream = VoipStream(sim, router)
    stream.start(WARMUP_S)
    stream.stop(duration - 2.0)
    sim.run(until=duration)
    sessions = stream.session_lengths()
    return statistics.median(sessions) if sessions else 0.0


def validate_trace_methodology(testbed, trips, config=None, seed=0):
    """Deployment vs trace-driven VoIP session medians per trip.

    Returns:
        List of dicts with ``trip``, ``deployment_s``, ``trace_s`` and
        ``gap_s`` entries.
    """
    config = config or ViFiConfig()
    rows = []
    for trip in trips:
        sim, duration = vanlan_protocol(testbed, trip, config=config,
                                        seed=seed + trip)
        deployment_median = _voip_median(sim, duration)

        trace = testbed.generate_probe_trace(trip)
        log = testbed.beacon_log_from_trace(trace)
        rngs = RngRegistry(seed).spawn("validation", trip)
        sim2, duration2 = dieselnet_protocol(log, rngs, config=config,
                                             seed=seed + trip)
        trace_median = _voip_median(sim2, duration2)
        rows.append({
            "trip": trip,
            "deployment_s": deployment_median,
            "trace_s": trace_median,
            "gap_s": abs(deployment_median - trace_median),
        })
    return rows
