"""Packet-level logs and coordination statistics (Table 1).

Every source transmission, overhearing event, relay decision and
delivery is recorded here by the protocol engines and the medium
observer.  From these logs we derive:

* Table 1's per-direction coordination statistics (rows A1-C4);
* the medium-usage efficiency of Figure 12 (application packets
  delivered per transmission on the vehicle-BS channel);
* the PerfectRelay oracle estimate (Section 5.4), which reuses the
  same logs.

Definitions follow Section 5.5 exactly: the *false positive* rate is
"relayed packets that are already present at the destination divided by
the number of successful source transmissions" (it can exceed 100%),
and the *false negative* rate is "the number of times no auxiliary
relays a failed transmission divided by the number of failed source
transmissions".
"""

import statistics
from dataclasses import dataclass, field

from repro.net.packet import Direction

__all__ = ["CoordinationReport", "PacketRecord", "TxRecord", "ViFiStats"]


@dataclass
class TxRecord:
    """One *source* transmission (original or source retransmission)."""

    tx_id: int
    pkt_key: tuple
    direction: Direction
    time: float
    src: int
    dst: int
    aux_designated: tuple
    heard_by_dst: bool = False
    heard_by_aux: set = field(default_factory=set)
    relays: list = field(default_factory=list)  # aux ids that relayed


@dataclass
class PacketRecord:
    """Per-packet (per pkt_key) fate across all transmissions."""

    pkt_key: tuple
    direction: Direction
    created_at: float
    size_bytes: int = 0
    source_tx_count: int = 0
    first_dst_receive: float | None = None
    delivered: bool = False
    acked_at_src: bool = False
    relay_count: int = 0
    relay_delivered: int = 0
    aux_heard_ack: set = field(default_factory=set)
    salvaged: bool = False
    given_up: bool = False


class ViFiStats:
    """Collector for all packet-level protocol events."""

    def __init__(self):
        self.tx_records = {}
        self.packet_records = {}
        self.relay_decisions = []  # (pkt_key, aux_id, probability, relayed)
        self.salvage_requests = 0
        self.salvaged_packets = 0
        self.anchor_changes = 0

    # ------------------------------------------------------------------
    # Event ingestion (called by nodes and the medium observer)
    # ------------------------------------------------------------------

    def packet_record(self, pkt_key, direction, created_at, size_bytes=0):
        record = self.packet_records.get(pkt_key)
        if record is None:
            record = PacketRecord(pkt_key, direction, created_at,
                                  size_bytes=size_bytes)
            self.packet_records[pkt_key] = record
        return record

    def on_source_tx(self, tx_id, pkt_key, direction, time, src, dst,
                     aux_designated):
        self.tx_records[tx_id] = TxRecord(
            tx_id=tx_id,
            pkt_key=pkt_key,
            direction=direction,
            time=time,
            src=src,
            dst=dst,
            aux_designated=tuple(aux_designated),
        )
        record = self.packet_record(pkt_key, direction, time)
        record.source_tx_count += 1

    def on_dst_receive(self, tx_id, pkt_key, time, via_relay):
        record = self.packet_records.get(pkt_key)
        if record is not None:
            if record.first_dst_receive is None:
                record.first_dst_receive = time
            record.delivered = True
            if via_relay:
                record.relay_delivered += 1
        if not via_relay and tx_id in self.tx_records:
            self.tx_records[tx_id].heard_by_dst = True

    def on_aux_overhear(self, tx_id, aux_id):
        tx = self.tx_records.get(tx_id)
        if tx is not None and aux_id in tx.aux_designated:
            tx.heard_by_aux.add(aux_id)

    def on_aux_heard_ack(self, pkt_key, aux_id):
        record = self.packet_records.get(pkt_key)
        if record is not None:
            record.aux_heard_ack.add(aux_id)

    def on_relay_decision(self, pkt_key, aux_id, probability, relayed,
                          trigger_tx_id=None):
        self.relay_decisions.append((pkt_key, aux_id, probability, relayed))
        if relayed:
            record = self.packet_records.get(pkt_key)
            if record is not None:
                record.relay_count += 1
            if trigger_tx_id is not None:
                tx = self.tx_records.get(trigger_tx_id)
                if tx is not None:
                    tx.relays.append(aux_id)

    def on_src_ack(self, pkt_key):
        record = self.packet_records.get(pkt_key)
        if record is not None:
            record.acked_at_src = True

    def on_give_up(self, pkt_key):
        record = self.packet_records.get(pkt_key)
        if record is not None:
            record.given_up = True

    def on_salvage(self, n_packets):
        self.salvage_requests += 1
        self.salvaged_packets += n_packets

    def on_anchor_change(self):
        self.anchor_changes += 1

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------

    def _txs(self, direction):
        return [t for t in self.tx_records.values()
                if t.direction == direction]

    def coordination_report(self, direction):
        """The Table 1 rows for one direction."""
        txs = self._txs(direction)
        if not txs:
            return CoordinationReport(direction=direction)

        successful = [t for t in txs if t.heard_by_dst]
        failed = [t for t in txs if not t.heard_by_dst]

        # B2: relays already at the destination / successful src txs.
        false_positive_relays = sum(len(t.relays) for t in successful)
        fp_rate = (false_positive_relays / len(successful)
                   if successful else 0.0)
        fp_events = [t for t in successful if t.relays]
        fp_relays_per_event = (
            statistics.mean(len(t.relays) for t in fp_events)
            if fp_events else 0.0
        )

        # C3: of the failed transmissions that at least one auxiliary
        # overheard (row C2's population), how many drew zero relays.
        # The paper's 65%-relayed inference (C2 x (1 - C3)) pins this
        # conditioning.
        heard = [t for t in failed if t.heard_by_aux]
        no_relay_heard = [t for t in heard if not t.relays]
        fn_rate = len(no_relay_heard) / len(heard) if heard else 0.0

        packets = [p for p in self.packet_records.values()
                   if p.direction == direction]
        relayed_copies = sum(p.relay_count for p in packets)
        relayed_delivered = sum(p.relay_delivered for p in packets)

        return CoordinationReport(
            direction=direction,
            n_source_tx=len(txs),
            median_aux=statistics.median(
                len(t.aux_designated) for t in txs
            ),
            mean_aux_heard=statistics.mean(
                len(t.heard_by_aux) for t in txs
            ),
            mean_aux_heard_no_ack=statistics.mean(
                len(t.heard_by_aux
                    - self.packet_records[t.pkt_key].aux_heard_ack)
                if t.pkt_key in self.packet_records else len(t.heard_by_aux)
                for t in txs
            ),
            src_tx_success_rate=len(successful) / len(txs),
            false_positive_rate=fp_rate,
            relays_per_false_positive=fp_relays_per_event,
            src_tx_failure_rate=len(failed) / len(txs),
            failed_overheard_rate=(
                len(heard) / len(failed) if failed else 0.0
            ),
            false_negative_rate=fn_rate,
            relay_delivery_rate=(
                relayed_delivered / relayed_copies if relayed_copies else 0.0
            ),
        )

    def efficiency(self, direction, wireless_data_tx):
        """Application packets delivered per wireless data transmission.

        Args:
            direction: which direction to account.
            wireless_data_tx: number of data-frame transmissions on the
                vehicle-BS channel attributable to this direction
                (source transmissions incl. retransmissions, plus
                relayed copies for downstream; upstream relays ride the
                backplane and do not count).
        """
        delivered = sum(
            1 for p in self.packet_records.values()
            if p.direction == direction and p.delivered
        )
        if wireless_data_tx <= 0:
            return 0.0
        return delivered / wireless_data_tx


@dataclass
class CoordinationReport:
    """Table 1, one column (direction).

    Row mapping: A1 ``median_aux``; A2 ``mean_aux_heard``; A3
    ``mean_aux_heard_no_ack``; B1 ``src_tx_success_rate``; B2
    ``false_positive_rate``; B3 ``relays_per_false_positive``; C1
    ``src_tx_failure_rate``; C2 ``failed_overheard_rate``; C3
    ``false_negative_rate``; C4 ``relay_delivery_rate``.
    """

    direction: Direction = Direction.UPSTREAM
    n_source_tx: int = 0
    median_aux: float = 0.0
    mean_aux_heard: float = 0.0
    mean_aux_heard_no_ack: float = 0.0
    src_tx_success_rate: float = 0.0
    false_positive_rate: float = 0.0
    relays_per_false_positive: float = 0.0
    src_tx_failure_rate: float = 0.0
    failed_overheard_rate: float = 0.0
    false_negative_rate: float = 0.0
    relay_delivery_rate: float = 0.0

    def rows(self):
        """(label, value) pairs in the paper's Table 1 order."""
        return [
            ("A1 median auxiliary BSes", self.median_aux),
            ("A2 avg aux hearing source tx", self.mean_aux_heard),
            ("A3 avg aux hearing tx but not ack",
             self.mean_aux_heard_no_ack),
            ("B1 source tx reaching dst", self.src_tx_success_rate),
            ("B2 false positive relays / successful tx",
             self.false_positive_rate),
            ("B3 avg relays per false-positive event",
             self.relays_per_false_positive),
            ("C1 source tx not reaching dst", self.src_tx_failure_rate),
            ("C2 failed tx overheard by >=1 aux",
             self.failed_overheard_rate),
            ("C3 failed tx with zero relays (false negatives)",
             self.false_negative_rate),
            ("C4 relayed packets reaching dst", self.relay_delivery_rate),
        ]
