"""The PerfectRelay oracle (Section 5.4).

"In the PerfectRelay protocol, exactly one basestation relays only if
the intended destination did not hear the packet.  We estimate its
efficiency using packet-level logs of ViFi."

Per the paper's estimation rules:

* **Upstream**: a packet is considered delivered if at least one BS
  (anchor or auxiliary) heard any of its source transmissions; relays
  ride the backplane, so the wireless transmission count is just the
  source's.
* **Downstream**: when at least one auxiliary relayed the packet in the
  ViFi run, PerfectRelay's single relay is assumed to have the same
  outcome as ViFi's relaying; when no auxiliary relayed (but at least
  one overheard), the relaying is assumed successful.  The wireless
  transmission count charges the source transmissions plus exactly one
  relay per packet that needed one.
"""

from repro.net.packet import Direction

__all__ = ["perfect_relay_efficiency"]


def _tx_by_packet(stats, direction):
    """Group source-transmission records by packet key."""
    grouped = {}
    for tx in stats.tx_records.values():
        if tx.direction == direction:
            grouped.setdefault(tx.pkt_key, []).append(tx)
    return grouped


def perfect_relay_efficiency(stats, direction):
    """Estimate PerfectRelay's delivery efficiency from ViFi logs.

    Args:
        stats: the :class:`~repro.core.stats.ViFiStats` of a ViFi run.
        direction: :class:`~repro.net.packet.Direction` to account.

    Returns:
        ``(efficiency, delivered, wireless_tx)`` — application packets
        delivered per wireless data transmission under the oracle, plus
        the numerator and denominator.
    """
    grouped = _tx_by_packet(stats, direction)
    delivered = 0
    wireless_tx = 0
    for pkt_key, txs in grouped.items():
        record = stats.packet_records.get(pkt_key)
        source_tx = len(txs)
        wireless_tx += source_tx
        heard_direct = any(t.heard_by_dst for t in txs)
        heard_by_any_aux = any(t.heard_by_aux for t in txs)
        if direction is Direction.UPSTREAM:
            # Backplane relays are free on the wireless medium.
            if heard_direct or heard_by_any_aux:
                delivered += 1
            continue
        # Downstream: charge one relay when the oracle needs one.
        if heard_direct:
            delivered += 1
            continue
        if not heard_by_any_aux:
            continue  # nobody could have relayed
        wireless_tx += 1
        vifi_relayed = record is not None and record.relay_count > 0
        if vifi_relayed:
            if record.relay_delivered > 0:
                delivered += 1
        else:
            # ViFi chose not to relay; the paper assumes the oracle's
            # relay would have succeeded.
            delivered += 1
    efficiency = delivered / wireless_tx if wireless_tx else 0.0
    return efficiency, delivered, wireless_tx
